"""Tests for the declarative scenario specs (``repro.scenario.spec``).

Pins down the satellite guarantees of the scenario API:

* ``spec -> dict/JSON -> spec`` is the identity (hypothesis-checked across
  the whole spec space),
* unknown keys and unknown enumeration values raise
  :class:`~repro.scenario.spec.ScenarioSpecError` with a did-you-mean hint,
* bad backend names surface the *registries'* did-you-mean errors
  (:class:`~repro.core.engine_api.UnknownEngineError` /
  :class:`~repro.distributed.network_api.UnknownNetworkError`), and
* materialization is deterministic in the spec alone.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine_api import UnknownEngineError
from repro.distributed.network_api import UnknownNetworkError
from repro.graph.generators import erdos_renyi_graph, random_graph_family
from repro.scenario import (
    BackendSpec,
    GraphSpec,
    ScenarioSpec,
    ScenarioSpecError,
    UnknownSinkError,
    WorkloadSpec,
)
from repro.workloads.sequences import mixed_churn_sequence

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def graph_specs(draw):
    family = draw(st.sampled_from(("erdos_renyi", "sparse", "star", "path", "near_regular")))
    params = {}
    if family == "erdos_renyi" and draw(st.booleans()):
        params["edge_probability"] = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
    return GraphSpec(
        family=family,
        nodes=draw(st.integers(min_value=4, max_value=60)),
        seed=draw(SEEDS),
        params=params,
    )


@st.composite
def workload_specs(draw):
    kind = draw(
        st.sampled_from(
            (
                "mixed_churn",
                "edge_churn",
                "node_churn",
                "build",
                "teardown",
                "sliding_window",
                "adaptive_adversary",
            )
        )
    )
    sized = kind in WorkloadSpec._SIZED_KINDS
    params = {}
    if kind == "sliding_window":
        params = {
            "num_nodes": draw(st.integers(min_value=2, max_value=80)),
            "window_size": draw(st.integers(min_value=1, max_value=40)),
        }
    return WorkloadSpec(
        kind=kind,
        num_changes=draw(st.integers(min_value=1, max_value=60)) if sized else 0,
        seed=draw(SEEDS),
        params=params,
    )


@st.composite
def scheduler_records(draw):
    kind = draw(st.sampled_from(("fixed", "random", "adversarial")))
    if kind == "fixed":
        return {"kind": kind, "delay_value": draw(st.floats(0.1, 5.0, allow_nan=False))}
    if kind == "random":
        return {"kind": kind, "seed": draw(SEEDS)}
    return {
        "kind": kind,
        "seed": draw(SEEDS),
        "slow_fraction": draw(st.floats(0.0, 1.0, allow_nan=False)),
        "slow_factor": draw(st.floats(1.0, 50.0, allow_nan=False)),
    }


@st.composite
def scenario_specs(draw):
    workload = draw(workload_specs())
    runner = draw(st.sampled_from(("sequential", "protocol")))
    protocol = draw(st.sampled_from(("buffered", "direct", "async-direct")))
    scheduler = None
    if runner == "protocol" and protocol == "async-direct" and draw(st.booleans()):
        scheduler = draw(scheduler_records())
    backend = BackendSpec(
        runner=runner,
        engine=draw(st.sampled_from(("template", "fast", "fast-csr"))),
        network=draw(st.sampled_from(("dict", "fast"))),
        protocol=protocol,
        scheduler=scheduler,
    )
    batch_size = 0
    if runner == "sequential" and not workload.is_dynamic:
        batch_size = draw(st.integers(min_value=0, max_value=6))
    sinks = tuple(draw(st.sets(st.sampled_from(("summary", "jsonl:out.jsonl")), max_size=2)))
    return ScenarioSpec(
        name=draw(st.text(alphabet="abcdefg-", max_size=10)),
        seed=draw(SEEDS),
        graph=None if workload.kind == "sliding_window" else draw(graph_specs()),
        workload=workload,
        backend=backend,
        batch_size=batch_size,
        sinks=sinks,
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario_specs())
    def test_json_round_trip_is_identity(self, spec: ScenarioSpec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            name="file-trip",
            seed=9,
            graph=GraphSpec(family="sparse", nodes=12, seed=4),
            workload=WorkloadSpec(kind="node_churn", num_changes=7, seed=5),
            backend=BackendSpec(runner="protocol", network="fast", protocol="direct"),
            sinks=("summary",),
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_trace_workload_round_trips(self, tmp_path):
        from repro.workloads.trace import save_trace

        graph = erdos_renyi_graph(10, 0.3, seed=1)
        changes = mixed_churn_sequence(graph, 12, seed=2)
        trace_path = tmp_path / "trace.json"
        save_trace(trace_path, changes, graph)
        spec = ScenarioSpec(
            graph=None, workload=WorkloadSpec(kind="trace", path=str(trace_path))
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        loaded_graph, loaded_changes = spec.materialize()
        assert loaded_changes == changes
        assert set(loaded_graph.edges()) == set(graph.edges())

    def test_defaults_decode_from_minimal_record(self):
        spec = ScenarioSpec.from_dict({"workload": {"num_changes": 10}})
        assert spec.graph == GraphSpec()
        assert spec.backend == BackendSpec()
        assert spec.workload.num_changes == 10

    def test_fast_csr_backend_round_trips_and_validates(self):
        spec = ScenarioSpec(
            name="csr-trip",
            workload=WorkloadSpec(kind="mixed_churn", num_changes=5),
            backend=BackendSpec(engine="fast-csr"),
        )
        spec.validate()
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()).backend.engine == "fast-csr"


class TestShippedSpecFiles:
    def test_example_spec_files_load_and_validate(self):
        from pathlib import Path

        spec_dir = Path(__file__).resolve().parent.parent / "examples" / "scenario_specs"
        files = sorted(spec_dir.glob("*.json"))
        assert files, "examples/scenario_specs/ must ship at least one spec"
        for path in files:
            spec = ScenarioSpec.load(path)
            assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestMaterialization:
    def test_deterministic_in_the_spec_alone(self):
        spec = ScenarioSpec(
            graph=GraphSpec(family="erdos_renyi", nodes=18, seed=3),
            workload=WorkloadSpec(kind="mixed_churn", num_changes=25, seed=4),
        )
        graph_a, changes_a = spec.materialize()
        graph_b, changes_b = spec.materialize()
        assert changes_a == changes_b
        assert set(graph_a.edges()) == set(graph_b.edges())

    def test_matches_the_raw_generators(self):
        spec = ScenarioSpec(
            graph=GraphSpec(family="near_regular", nodes=14, seed=6),
            workload=WorkloadSpec(kind="mixed_churn", num_changes=20, seed=7),
        )
        graph, changes = spec.materialize()
        reference_graph = random_graph_family("near_regular", 14, seed=6)
        assert set(graph.edges()) == set(reference_graph.edges())
        assert changes == mixed_churn_sequence(reference_graph, 20, seed=7)

    def test_graph_params_override_the_family_defaults(self):
        spec = GraphSpec(
            family="erdos_renyi", nodes=30, seed=2, params={"edge_probability": 0.5}
        )
        assert set(spec.build().edges()) == set(erdos_renyi_graph(30, 0.5, seed=2).edges())

    def test_build_workload_starts_from_the_empty_graph(self):
        spec = ScenarioSpec(
            graph=GraphSpec(family="path", nodes=6, seed=0),
            workload=WorkloadSpec(kind="build", seed=1),
        )
        initial, changes = spec.materialize()
        assert initial.num_nodes() == 0
        assert len(changes) == 6 + 5  # node insertions + path edges


class TestStrictDecoding:
    def test_unknown_top_level_key_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'workload'"):
            ScenarioSpec.from_dict({"wrkload": {}})

    @pytest.mark.parametrize(
        "record, fragment",
        [
            ({"graph": {"famly": "star"}}, "family"),
            ({"workload": {"num_changes": 3, "sed": 1}}, "seed"),
            ({"backend": {"runer": "protocol"}}, "runner"),
        ],
    )
    def test_unknown_nested_keys_have_did_you_mean(self, record, fragment):
        with pytest.raises(ScenarioSpecError, match=f"did you mean '{fragment}'"):
            ScenarioSpec.from_dict(record)

    def test_unknown_format_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unsupported scenario format"):
            ScenarioSpec.from_dict({"format": "repro-scenario-v0"})

    def test_unknown_family_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'erdos_renyi'"):
            GraphSpec(family="erdos_reny").validate()

    def test_unknown_workload_kind_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'mixed_churn'"):
            WorkloadSpec(kind="mixed_chrun", num_changes=5).validate()

    def test_unknown_runner_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'sequential'"):
            BackendSpec(runner="sequental").validate()

    def test_bad_engine_name_raises_the_registry_error(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'fast'"):
            BackendSpec(engine="fsat").validate()

    def test_near_miss_of_the_csr_engine_has_did_you_mean(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'fast-csr'"):
            BackendSpec(engine="fast-cs").validate()

    def test_bad_network_name_raises_the_registry_error(self):
        with pytest.raises(UnknownNetworkError, match="did you mean 'dict'"):
            BackendSpec(runner="protocol", network="dcit").validate()

    def test_bad_protocol_name_raises_the_registry_error(self):
        with pytest.raises(UnknownNetworkError, match="did you mean 'buffered'"):
            BackendSpec(runner="protocol", protocol="bufered").validate()

    def test_bad_sink_name_has_did_you_mean(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(kind="mixed_churn", num_changes=5), sinks=("sumary",)
        )
        with pytest.raises(UnknownSinkError, match="did you mean 'summary'"):
            spec.validate()

    def test_bad_adversary_kind_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'adaptive_adversary'"):
            WorkloadSpec(kind="adaptive_adversry", num_changes=5).validate()

    def test_bad_scheduler_kind_raises_the_registry_error(self):
        from repro.distributed.scheduler import UnknownSchedulerError

        with pytest.raises(UnknownSchedulerError, match="did you mean 'adversarial'"):
            BackendSpec(
                runner="protocol",
                protocol="async-direct",
                scheduler={"kind": "adverserial"},
            ).validate()

    def test_bad_scheduler_param_has_did_you_mean(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'slow_fraction'"):
            BackendSpec(
                runner="protocol",
                protocol="async-direct",
                scheduler={"kind": "adversarial", "slow_fractoin": 0.5},
            ).validate()

    def test_out_of_range_scheduler_param_rejected(self):
        with pytest.raises(ScenarioSpecError, match="slow_factor"):
            BackendSpec(
                runner="protocol",
                protocol="async-direct",
                scheduler={"kind": "adversarial", "slow_factor": 0.5},
            ).validate()


class TestValidation:
    def test_churn_needs_positive_num_changes(self):
        with pytest.raises(ScenarioSpecError, match="num_changes > 0"):
            WorkloadSpec(kind="edge_churn", num_changes=0).validate()

    def test_derived_kinds_reject_num_changes(self):
        with pytest.raises(ScenarioSpecError, match="derives its length"):
            WorkloadSpec(kind="build", num_changes=10).validate()

    def test_trace_needs_a_path(self):
        with pytest.raises(ScenarioSpecError, match="needs a path"):
            WorkloadSpec(kind="trace").validate()

    def test_non_trace_rejects_a_path(self):
        with pytest.raises(ScenarioSpecError, match="takes no path"):
            WorkloadSpec(kind="mixed_churn", num_changes=3, path="x.json").validate()

    def test_batching_needs_the_sequential_runner(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(kind="mixed_churn", num_changes=5),
            backend=BackendSpec(runner="protocol"),
            batch_size=4,
        )
        with pytest.raises(ScenarioSpecError, match="sequential"):
            spec.validate()

    def test_graphless_spec_needs_a_trace_workload(self):
        spec = ScenarioSpec(
            graph=None, workload=WorkloadSpec(kind="mixed_churn", num_changes=5)
        )
        with pytest.raises(ScenarioSpecError, match="needs a graph"):
            spec.validate()

    def test_params_on_nonparametric_family_rejected(self):
        with pytest.raises(ScenarioSpecError, match="takes no params"):
            GraphSpec(family="star", params={"radius": 0.5}).validate()

    def test_unknown_graph_param_rejected(self):
        with pytest.raises(ScenarioSpecError, match="edge_probability"):
            GraphSpec(family="erdos_renyi", params={"probability": 0.5}).validate()

    def test_bad_workload_params_fail_at_materialization(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                kind="edge_churn", num_changes=5, params={"insert_prob": 0.9}
            )
        )
        with pytest.raises(ScenarioSpecError, match="bad params"):
            spec.materialize()

    def test_scheduler_needs_the_async_protocol(self):
        with pytest.raises(ScenarioSpecError, match="async-direct"):
            BackendSpec(
                runner="protocol",
                protocol="buffered",
                scheduler={"kind": "adversarial"},
            ).validate()
        with pytest.raises(ScenarioSpecError, match="async-direct"):
            BackendSpec(scheduler={"kind": "fixed"}).validate()

    def test_sliding_window_needs_its_params_and_no_graph(self):
        with pytest.raises(ScenarioSpecError, match="num_nodes"):
            WorkloadSpec(kind="sliding_window", num_changes=10).validate()
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                kind="sliding_window",
                num_changes=10,
                params={"num_nodes": 12, "window_size": 4},
            )
        )
        with pytest.raises(ScenarioSpecError, match="graph to null"):
            spec.validate()

    def test_adaptive_rejects_params_and_batching(self):
        with pytest.raises(ScenarioSpecError, match="takes no params"):
            WorkloadSpec(
                kind="adaptive_adversary", num_changes=5, params={"graceful": True}
            ).validate()
        spec = ScenarioSpec(
            workload=WorkloadSpec(kind="adaptive_adversary", num_changes=5),
            batch_size=3,
        )
        with pytest.raises(ScenarioSpecError, match="batch_size"):
            spec.validate()

    def test_sliding_window_materializes_from_its_own_node_set(self):
        from repro.workloads.sequences import sliding_window_sequence

        spec = ScenarioSpec(
            graph=None,
            workload=WorkloadSpec(
                kind="sliding_window",
                num_changes=20,
                seed=3,
                params={"num_nodes": 15, "window_size": 6},
            ),
        )
        graph, changes = spec.materialize()
        assert graph.num_nodes() == 15
        assert graph.num_edges() == 0
        assert changes == sliding_window_sequence(15, 6, 20, seed=3)

    def test_with_backend_builds_validated_variants(self):
        spec = ScenarioSpec(workload=WorkloadSpec(kind="mixed_churn", num_changes=5))
        fast = spec.with_backend(engine="fast")
        assert fast.backend.engine == "fast"
        assert spec.backend.engine == "template"  # original untouched
        with pytest.raises(UnknownEngineError):
            spec.with_backend(engine="no-such-engine")
