"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph import generators


@pytest.fixture
def triangle() -> DynamicGraph:
    """The triangle K_3."""
    return generators.complete_graph(3)


@pytest.fixture
def small_path() -> DynamicGraph:
    """A path on five nodes."""
    return generators.path_graph(5)


@pytest.fixture
def small_star() -> DynamicGraph:
    """A star with six leaves."""
    return generators.star_graph(6)


@pytest.fixture
def small_random_graph() -> DynamicGraph:
    """A fixed Erdos-Renyi graph used by many integration tests."""
    return generators.erdos_renyi_graph(20, 0.2, seed=7)


@pytest.fixture
def medium_random_graph() -> DynamicGraph:
    """A slightly larger Erdos-Renyi graph for sequence tests."""
    return generators.erdos_renyi_graph(40, 0.12, seed=11)


@pytest.fixture
def three_paths_graph() -> DynamicGraph:
    """Six disjoint 3-edge paths (the matching example graph)."""
    return generators.disjoint_paths_graph(6, edges_per_path=3)


@pytest.fixture(params=[0, 1, 2, 3])
def any_seed(request) -> int:
    """A small collection of seeds for tests parameterized over randomness."""
    return request.param
