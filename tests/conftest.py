"""Shared fixtures, markers and tier options for the test suite.

Tiers
-----
* **tier-1** (default ``pytest``): everything unmarked -- fast, runs on every
  push and is the bar the driver holds every PR to.
* ``-m``/``--run-slow``: tests marked ``slow`` (long sweeps).
* ``--run-conformance``: tests marked ``conformance`` -- the full
  differential engine-conformance suite (50+ seeded sequences of 200+
  changes each); run on a schedule in CI and before touching engine code.
"""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph import generators


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-conformance",
        action="store_true",
        default=False,
        help="run the differential engine-conformance suite (marked 'conformance')",
    )
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked 'slow'",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "conformance: differential engine-conformance suite (off by default)"
    )
    config.addinivalue_line("markers", "slow: long-running test (off by default)")


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    skip_conformance = pytest.mark.skip(reason="needs --run-conformance")
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if item.get_closest_marker("conformance") and not config.getoption("--run-conformance"):
            item.add_marker(skip_conformance)
        if item.get_closest_marker("slow") and not config.getoption("--run-slow"):
            item.add_marker(skip_slow)


@pytest.fixture
def triangle() -> DynamicGraph:
    """The triangle K_3."""
    return generators.complete_graph(3)


@pytest.fixture
def small_path() -> DynamicGraph:
    """A path on five nodes."""
    return generators.path_graph(5)


@pytest.fixture
def small_star() -> DynamicGraph:
    """A star with six leaves."""
    return generators.star_graph(6)


@pytest.fixture
def small_random_graph() -> DynamicGraph:
    """A fixed Erdos-Renyi graph used by many integration tests."""
    return generators.erdos_renyi_graph(20, 0.2, seed=7)


@pytest.fixture
def medium_random_graph() -> DynamicGraph:
    """A slightly larger Erdos-Renyi graph for sequence tests."""
    return generators.erdos_renyi_graph(40, 0.12, seed=11)


@pytest.fixture
def three_paths_graph() -> DynamicGraph:
    """Six disjoint 3-edge paths (the matching example graph)."""
    return generators.disjoint_paths_graph(6, edges_per_path=3)


@pytest.fixture(params=[0, 1, 2, 3])
def any_seed(request) -> int:
    """A small collection of seeds for tests parameterized over randomness."""
    return request.param
