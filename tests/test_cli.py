"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        # A bare invocation (no command, no --list-* flag) still exits.
        with pytest.raises(SystemExit):
            main([])

    def test_defaults(self):
        arguments = build_parser().parse_args(["churn"])
        assert arguments.family == "erdos_renyi"
        assert arguments.nodes == 40
        assert arguments.structure == "mis"

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--family", "hypercube"])

    def test_network_choices_come_from_the_registry(self):
        arguments = build_parser().parse_args(["protocol", "--network", "fast"])
        assert arguments.network == "fast"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["protocol", "--network", "no-such-core"])


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        output = capsys.readouterr().out
        assert "erdos_renyi" in output
        assert "star" in output

    def test_churn_mis(self, capsys):
        exit_code = main(["churn", "--nodes", "20", "--changes", "30", "--seed", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Theorem 1" in output
        assert "final MIS size" in output

    def test_churn_matching(self, capsys):
        exit_code = main(
            ["churn", "--structure", "matching", "--nodes", "14", "--changes", "20", "--seed", "2"]
        )
        assert exit_code == 0
        assert "matching" in capsys.readouterr().out

    def test_churn_clustering(self, capsys):
        exit_code = main(
            [
                "churn",
                "--structure",
                "clustering",
                "--nodes",
                "15",
                "--changes",
                "20",
                "--seed",
                "4",
            ]
        )
        assert exit_code == 0
        assert "clusters" in capsys.readouterr().out

    @pytest.mark.parametrize("protocol", ["buffered", "direct", "async"])
    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_protocol_commands(self, protocol, network, capsys):
        exit_code = main(
            [
                "protocol",
                "--protocol",
                protocol,
                "--network",
                network,
                "--nodes",
                "18",
                "--changes",
                "25",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mean broadcasts" in output
        assert "ALL" in output

    def test_protocol_with_recompute_comparison(self, capsys):
        exit_code = main(
            [
                "protocol",
                "--protocol",
                "buffered",
                "--nodes",
                "18",
                "--changes",
                "20",
                "--seed",
                "6",
                "--compare-recompute",
            ]
        )
        assert exit_code == 0
        assert "Luby recompute" in capsys.readouterr().out

    def test_save_and_replay_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "workload.json"
        assert (
            main(
                [
                    "churn",
                    "--nodes",
                    "15",
                    "--changes",
                    "20",
                    "--seed",
                    "8",
                    "--save-trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert trace_path.exists()
        first_output = capsys.readouterr().out
        assert main(["churn", "--load-trace", str(trace_path), "--seed", "8"]) == 0
        second_output = capsys.readouterr().out
        # Same workload, same seed: the summary numbers coincide.
        assert first_output.splitlines()[-3:] == second_output.splitlines()[-3:]

    def test_load_trace_without_graph_fails(self, tmp_path):
        import json

        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"format": "repro-trace-v1", "changes": []}))
        with pytest.raises(SystemExit):
            main(["churn", "--load-trace", str(path)])

    def test_list_engines_and_networks(self, capsys):
        assert main(["--list-engines", "--list-networks"]) == 0
        output = capsys.readouterr().out
        assert "template" in output and "fast" in output
        assert "fast-csr" in output  # the CSR-wave variant rides the registry
        assert "TemplateEngine" in output and "FastEngine" in output
        assert "native" in output  # batch capability flag
        assert "buffered" in output and "async-direct" in output

    def test_churn_accepts_the_fast_csr_engine(self, capsys):
        assert (
            main(["churn", "--nodes", "12", "--changes", "20", "--engine", "fast-csr"])
            == 0
        )
        assert "fast-csr" in capsys.readouterr().out

    def test_run_scenario_file(self, tmp_path, capsys):
        from repro.scenario import ScenarioSpec, WorkloadSpec

        path = tmp_path / "spec.json"
        ScenarioSpec(
            name="cli-run", workload=WorkloadSpec(kind="mixed_churn", num_changes=15)
        ).save(path)
        assert main(["run", "--scenario", str(path), "--engine", "fast"]) == 0
        output = capsys.readouterr().out
        assert "cli-run" in output
        assert "engine=fast" in output
        assert "final MIS size" in output

    def test_run_scenario_protocol_override(self, tmp_path, capsys):
        from repro.scenario import BackendSpec, ScenarioSpec, WorkloadSpec

        path = tmp_path / "spec.json"
        ScenarioSpec(
            workload=WorkloadSpec(kind="mixed_churn", num_changes=12),
            backend=BackendSpec(runner="protocol"),
        ).save(path)
        assert main(["run", "--scenario", str(path), "--network", "fast"]) == 0
        assert "network=fast" in capsys.readouterr().out

    def test_list_sinks(self, capsys):
        assert main(["--list-sinks"]) == 0
        output = capsys.readouterr().out
        assert "summary" in output
        assert "jsonl" in output
        assert "repro.scenario.sinks" in output

    def test_list_schedulers(self, capsys):
        assert main(["--list-schedulers"]) == 0
        output = capsys.readouterr().out
        assert "fixed" in output and "random" in output and "adversarial" in output
        assert "AdversarialDelayScheduler" in output
        assert "channel-deterministic" in output
        # fixed/adversarial support exact cross-backend async resume; random not.
        assert "slow_fraction" in output

    def test_list_flags_reject_commands(self):
        with pytest.raises(SystemExit):
            main(["--list-schedulers", "churn"])

    def test_serve_parser_defaults(self):
        arguments = build_parser().parse_args(["serve", "--spool", "/tmp/spool"])
        assert arguments.bind == "tcp:127.0.0.1:0"
        assert arguments.shards == 2
        assert arguments.max_live == 64
        with pytest.raises(SystemExit):  # --spool is required
            build_parser().parse_args(["serve"])

    def test_client_parser_requires_connect(self):
        arguments = build_parser().parse_args(
            ["client", "ping", "--connect", "tcp:127.0.0.1:1"]
        )
        assert arguments.op == "ping"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "ping"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "warp", "--connect", "tcp:h:1"])

    def test_client_session_ops_need_session_flag(self):
        with pytest.raises(SystemExit, match="--session"):
            main(["client", "apply", "--connect", "tcp:127.0.0.1:1"])

    def test_client_unreachable_daemon_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot reach daemon"):
            main(["client", "ping", "--connect", "tcp:127.0.0.1:1"])

    def test_run_writes_checkpoints_and_resumes(self, tmp_path, capsys):
        from repro.scenario import BackendSpec, ScenarioSpec, WorkloadSpec

        spec_path = tmp_path / "spec.json"
        checkpoint_path = tmp_path / "checkpoint.json"
        ScenarioSpec(
            name="cli-checkpoint",
            workload=WorkloadSpec(kind="mixed_churn", num_changes=24),
            backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast"),
        ).save(spec_path)
        assert (
            main(
                [
                    "run",
                    "--scenario",
                    str(spec_path),
                    "--checkpoint-every",
                    "10",
                    "--checkpoint-path",
                    str(checkpoint_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "checkpoint written" in output
        assert checkpoint_path.exists()
        # The file holds the last written checkpoint (position 20 of 24):
        # resuming it finishes the workload, optionally on another backend.
        assert main(["run", "--resume-from", str(checkpoint_path), "--network", "fast"]) == 0
        output = capsys.readouterr().out
        assert "resuming from" in output
        assert "network=fast" in output

    def test_run_checkpoint_flags_must_pair(self, tmp_path):
        with pytest.raises(SystemExit, match="go together"):
            main(["run", "--scenario", "x.json", "--checkpoint-every", "5"])

    def test_run_needs_scenario_xor_resume(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["run"])

    def test_resume_rejects_protocol_switch(self, tmp_path):
        from repro.scenario import (
            BackendSpec,
            ScenarioSpec,
            Session,
            WorkloadSpec,
            save_checkpoint,
        )

        spec = ScenarioSpec(
            workload=WorkloadSpec(kind="mixed_churn", num_changes=10),
            backend=BackendSpec(runner="protocol", protocol="buffered"),
        )
        session = Session(spec)
        session.step()
        path = tmp_path / "cp.json"
        save_checkpoint(path, session.checkpoint())
        with pytest.raises(SystemExit, match="per-protocol"):
            main(["run", "--resume-from", str(path), "--protocol", "direct"])

    def test_list_flags_reject_a_command(self):
        with pytest.raises(SystemExit):
            main(["--list-engines", "churn"])

    def test_run_rejects_network_override_on_sequential_spec(self, tmp_path):
        from repro.scenario import ScenarioSpec, WorkloadSpec

        path = tmp_path / "seq.json"
        ScenarioSpec(workload=WorkloadSpec(kind="mixed_churn", num_changes=5)).save(path)
        with pytest.raises(SystemExit, match="protocol-runner"):
            main(["run", "--scenario", str(path), "--network", "fast"])

    def test_run_scenario_rejects_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"format": "repro-scenario-v1", "wrkload": {}}')
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", str(path)])
        assert "workload" in str(excinfo.value)  # did-you-mean hint

    def test_churn_save_scenario_roundtrips_through_run(self, tmp_path, capsys):
        spec_path = tmp_path / "churn.json"
        assert (
            main(
                [
                    "churn",
                    "--nodes",
                    "15",
                    "--changes",
                    "20",
                    "--seed",
                    "8",
                    "--save-scenario",
                    str(spec_path),
                ]
            )
            == 0
        )
        churn_output = capsys.readouterr().out
        assert spec_path.exists()
        assert main(["run", "--scenario", str(spec_path)]) == 0
        run_output = capsys.readouterr().out
        # The replayed scenario lands on the identical final MIS.
        (churn_mis_line,) = [li for li in churn_output.splitlines() if "final MIS size" in li]
        (run_mis_line,) = [li for li in run_output.splitlines() if "final MIS size" in li]
        assert churn_mis_line.split()[-1] == run_mis_line.split()[-1]

    def test_lowerbound(self, capsys):
        exit_code = main(["lowerbound", "--side-size", "6", "--seeds", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "deterministic greedy" in output
        assert "randomized" in output

    def test_history(self, capsys):
        exit_code = main(
            ["history", "--nodes", "10", "--changes", "10", "--samples", "10", "--seed", "7"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "identical output per seed" in output
        assert "yes" in output
