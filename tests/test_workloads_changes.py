"""Unit tests for the topology-change event types."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.workloads.changes import (
    CHANGE_KINDS,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    apply_change_to_graph,
    inverse_change,
    validate_change,
)


class TestValidation:
    def test_valid_edge_insertion(self, small_path):
        validate_change(small_path, EdgeInsertion(0, 2))

    def test_edge_insertion_missing_node(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, EdgeInsertion(0, 99))

    def test_edge_insertion_self_loop(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, EdgeInsertion(0, 0))

    def test_edge_insertion_duplicate(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, EdgeInsertion(0, 1))

    def test_edge_deletion_missing_edge(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, EdgeDeletion(0, 3))

    def test_node_insertion_existing_node(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, NodeInsertion(0))

    def test_node_insertion_unknown_neighbor(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, NodeInsertion("x", (0, 99)))

    def test_node_insertion_duplicate_neighbors(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, NodeInsertion("x", (0, 0)))

    def test_node_insertion_self_neighbor(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, NodeInsertion("x", ("x",)))

    def test_node_unmuting_validated_like_insertion(self, small_path):
        validate_change(small_path, NodeUnmuting("x", (0, 1)))
        with pytest.raises(GraphError):
            validate_change(small_path, NodeUnmuting(0))

    def test_node_deletion_missing_node(self, small_path):
        with pytest.raises(GraphError):
            validate_change(small_path, NodeDeletion("missing"))

    def test_unknown_change_type(self, small_path):
        with pytest.raises(TypeError):
            validate_change(small_path, object())


class TestApplication:
    def test_apply_each_kind(self, small_path):
        graph = small_path.copy()
        apply_change_to_graph(graph, EdgeInsertion(0, 2))
        assert graph.has_edge(0, 2)
        apply_change_to_graph(graph, EdgeDeletion(0, 1))
        assert not graph.has_edge(0, 1)
        apply_change_to_graph(graph, NodeInsertion("x", (0, 4)))
        assert graph.degree("x") == 2
        apply_change_to_graph(graph, NodeUnmuting("y", ("x",)))
        assert graph.has_edge("x", "y")
        apply_change_to_graph(graph, NodeDeletion(4))
        assert not graph.has_node(4)

    def test_apply_validates_first(self, small_path):
        graph = small_path.copy()
        with pytest.raises(GraphError):
            apply_change_to_graph(graph, EdgeInsertion(0, 1))

    def test_change_kinds_constant(self):
        assert EdgeInsertion(0, 1).kind in CHANGE_KINDS
        assert NodeUnmuting("x").kind in CHANGE_KINDS
        assert len(CHANGE_KINDS) == 5


class TestInverse:
    def test_edge_changes_invert(self, small_path):
        graph = small_path.copy()
        change = EdgeInsertion(0, 2)
        inverse = inverse_change(graph, change)
        apply_change_to_graph(graph, change)
        apply_change_to_graph(graph, inverse)
        assert graph == small_path

    def test_node_deletion_inverts_with_neighbors(self, small_star):
        graph = small_star.copy()
        change = NodeDeletion(0)
        inverse = inverse_change(graph, change)
        apply_change_to_graph(graph, change)
        apply_change_to_graph(graph, inverse)
        assert graph == small_star

    def test_node_insertion_inverts(self):
        graph = DynamicGraph(nodes=[1])
        change = NodeInsertion(2, (1,))
        inverse = inverse_change(graph, change)
        apply_change_to_graph(graph, change)
        apply_change_to_graph(graph, inverse)
        assert graph == DynamicGraph(nodes=[1])

    def test_inverse_of_unknown_type_raises(self, small_path):
        with pytest.raises(TypeError):
            inverse_change(small_path, object())


class TestDataclassBehaviour:
    def test_changes_are_frozen(self):
        change = EdgeInsertion(1, 2)
        with pytest.raises(AttributeError):
            change.u = 5

    def test_endpoints_helper(self):
        assert EdgeInsertion(3, 4).endpoints() == (3, 4)
        assert EdgeDeletion(4, 3).endpoints() == (4, 3)

    def test_graceful_flag_defaults(self):
        assert EdgeDeletion(0, 1).graceful is True
        assert NodeDeletion(0).graceful is True
        assert NodeDeletion(0, graceful=False).graceful is False
