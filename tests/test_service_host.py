"""SessionHost: lifecycle, LRU eviction, spool rehydration, crash safety.

The host is the process-agnostic core of one shard worker
(:mod:`repro.service.host`); these tests drive it in-process.  The headline
guarantees under test:

* a session evicted to a JSON spool checkpoint and rehydrated on demand --
  on the same backend or the shard's preferred opposite one -- produces
  outputs identical to a never-evicted run (the differential section reuses
  :func:`~repro.testing.protocol_differential.replay_resume_differential`,
  whose checkpoint->JSON->resume path is exactly the spool's);
* ``save_checkpoint`` fsyncs before its atomic rename, so a crashed daemon
  can never leave a truncated-but-renamed spool file.
"""

from __future__ import annotations

import os

import pytest

from repro.scenario.checkpoint_io import load_checkpoint, save_checkpoint
from repro.scenario.session import Session
from repro.scenario.spec import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec
from repro.service.host import (
    BadRequestError,
    HostConfig,
    SessionExistsError,
    SessionHost,
    UnknownSessionError,
)


def _spec(name="host-test", *, nodes=14, changes=16, seed=3, runner="sequential",
          engine="template", network="dict", batch_size=0):
    backend = (
        BackendSpec(runner="sequential", engine=engine)
        if runner == "sequential"
        else BackendSpec(runner="protocol", protocol="buffered", network=network)
    )
    return ScenarioSpec(
        name=name,
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=nodes, seed=seed),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=changes, seed=seed + 1),
        backend=backend,
        batch_size=batch_size,
    )


def _host(tmp_path, **overrides):
    config = {"spool_dir": str(tmp_path / "spool"), "max_live": 8}
    config.update(overrides)
    return SessionHost(HostConfig(**config))


class TestLifecycle:
    def test_create_apply_query_close(self, tmp_path):
        host = _host(tmp_path)
        status = host.handle("create", {"session": "s1", "spec": _spec().to_dict()})
        assert status["live"] and status["position"] == 0
        status = host.handle("apply", {"session": "s1", "steps": 5})
        assert status["position"] == 5 and status["applied"] == 5
        result = host.handle("query", {"session": "s1", "what": "mis"})
        assert result["mis"] and result["position"] == 5
        states = host.handle("query", {"session": "s1", "what": "states"})["states"]
        assert {label for label, in_mis in states if in_mis} == set(result["mis"])
        metrics = host.handle("query", {"session": "s1", "what": "metrics"})["metrics"]
        assert "mean_adjustments" in metrics
        assert host.handle("close", {"session": "s1"})["closed"]
        with pytest.raises(UnknownSessionError):
            host.handle("query", {"session": "s1"})

    def test_apply_stops_at_workload_end(self, tmp_path):
        host = _host(tmp_path)
        host.handle("create", {"session": "s1", "spec": _spec(changes=6).to_dict()})
        status = host.handle("apply", {"session": "s1", "steps": 99})
        assert status["applied"] == 6 and status["done"]

    def test_batched_spec_applies_batch_units(self, tmp_path):
        """With ``batch_size`` set, one unit is one vectorized batch."""
        host = _host(tmp_path)
        spec = _spec(changes=12, batch_size=4).to_dict()
        host.handle("create", {"session": "b", "spec": spec})
        status = host.handle("apply_batch", {"session": "b", "steps": 2})
        assert status["position"] == 8 and status["applied"] == 2

    def test_errors_carry_wire_kinds(self, tmp_path):
        host = _host(tmp_path)
        spec = _spec().to_dict()
        host.handle("create", {"session": "dup", "spec": spec})
        with pytest.raises(SessionExistsError):
            host.handle("create", {"session": "dup", "spec": spec})
        with pytest.raises(UnknownSessionError):
            host.handle("apply", {"session": "ghost"})
        with pytest.raises(BadRequestError):
            host.handle("apply", {"session": "dup", "steps": 0})
        with pytest.raises(BadRequestError):
            host.handle("query", {"session": "dup", "what": "everything"})
        with pytest.raises(BadRequestError):
            host.handle("apply", {"session": "../escape"})
        with pytest.raises(BadRequestError):
            host.handle("nope", {})
        assert host.handle_safely("nope", {})["kind"] == "bad-request"
        assert host.handle_safely("create", {"session": "bad", "spec": {"runner": "x"}})[
            "kind"
        ] in ("spec-error", "bad-request")

    def test_apply_batch_requires_steps(self, tmp_path):
        host = _host(tmp_path)
        host.handle("create", {"session": "s", "spec": _spec().to_dict()})
        with pytest.raises(BadRequestError, match="apply_batch"):
            host.handle("apply_batch", {"session": "s"})


class TestEviction:
    def test_lru_eviction_past_capacity(self, tmp_path):
        host = _host(tmp_path, max_live=2)
        spec = _spec().to_dict()
        for name in ("a", "b", "c"):
            host.handle("create", {"session": name, "spec": spec})
        rows = {row["session"]: row for row in host.handle("list", {})}
        # "a" was the least recently used when "c" arrived.
        assert not rows["a"]["live"] and rows["a"]["spooled"]
        assert rows["b"]["live"] and rows["c"]["live"]
        # Touching "b" then creating "d" evicts "c", not "b".
        host.handle("query", {"session": "b"})
        host.handle("create", {"session": "d", "spec": spec})
        rows = {row["session"]: row for row in host.handle("list", {})}
        assert rows["b"]["live"] and not rows["c"]["live"]

    def test_rehydration_is_transparent(self, tmp_path):
        host = _host(tmp_path, max_live=1)
        spec = _spec().to_dict()
        host.handle("create", {"session": "a", "spec": spec})
        host.handle("apply", {"session": "a", "steps": 7})
        host.handle("create", {"session": "b", "spec": spec})  # evicts a
        status = host.handle("apply", {"session": "a", "steps": 2})  # rehydrates a
        assert status["position"] == 9
        assert host.handle("stats", {})["rehydrations"] == 1

    def test_drain_spools_everything(self, tmp_path):
        host = _host(tmp_path)
        spec = _spec().to_dict()
        for name in ("a", "b"):
            host.handle("create", {"session": name, "spec": spec})
        report = host.handle("drain", {})
        assert report["drained"] == ["a", "b"]
        assert sorted(path.name for path in (tmp_path / "spool").iterdir()) == [
            "a.ckpt.json",
            "b.ckpt.json",
        ]
        assert all(not row["live"] for row in host.handle("list", {}))

    def test_adoption_resumes_spooled_sessions(self, tmp_path):
        first = _host(tmp_path)
        first.handle("create", {"session": "a", "spec": _spec().to_dict()})
        first.handle("apply", {"session": "a", "steps": 4})
        first.handle("drain", {})
        second = _host(tmp_path)
        assert second.adopt_spool() == ["a"]
        assert second.handle("query", {"session": "a"})["position"] == 4

    def test_close_deletes_the_spool_file(self, tmp_path):
        host = _host(tmp_path)
        host.handle("create", {"session": "a", "spec": _spec().to_dict()})
        host.handle("evict", {"session": "a"})
        assert (tmp_path / "spool" / "a.ckpt.json").exists()
        host.handle("close", {"session": "a"})
        assert not (tmp_path / "spool" / "a.ckpt.json").exists()


class TestEvictRehydrateDifferential:
    """Evicted-and-rehydrated == never-evicted, same and opposite backend."""

    @pytest.mark.parametrize("engine", [None, "fast"])
    def test_sequential_interleaved_evictions(self, tmp_path, engine):
        """Evict after every apply window; outputs stay lockstep-equal to an
        uninterrupted session (optionally rehydrating on the other engine)."""
        spec = _spec(changes=18, engine="template")
        host = _host(tmp_path, engine=engine)
        host.handle("create", {"session": "s", "spec": spec.to_dict()})
        reference = Session(spec)
        position = 0
        for window in (5, 4, 6, 3):
            host.handle("evict", {"session": "s"})
            status = host.handle("apply", {"session": "s", "steps": window})
            for _ in range(window):
                if reference.step() is None:
                    break
            position = reference.position
            assert status["position"] == position
            hosted = host.handle("query", {"session": "s", "what": "states"})["states"]
            expected = sorted(
                ([node, in_mis] for node, in_mis in reference.states().items()),
                key=repr,
            )
            assert hosted == expected

    @pytest.mark.parametrize("network", [None, "fast"])
    def test_protocol_interleaved_evictions(self, tmp_path, network):
        spec = _spec(changes=14, runner="protocol", network="dict")
        host = _host(tmp_path, network=network)
        host.handle("create", {"session": "p", "spec": spec.to_dict()})
        reference = Session(spec)
        for window in (4, 5, 5):
            host.handle("evict", {"session": "p"})
            host.handle("apply", {"session": "p", "steps": window})
            for _ in range(window):
                reference.step()
            hosted = host.handle("query", {"session": "p", "what": "mis"})["mis"]
            assert set(hosted) == set(reference.mis())

    @pytest.mark.parametrize("networks", [("fast", "fast"), ("dict", "fast")])
    def test_spool_path_via_resume_differential_harness(self, networks):
        """The spool's exact restore discipline, checked by the conformance
        harness itself: checkpoint mid-run through the JSON codec (the spool
        file format) and resume -- same backend and cross-backend -- asserting
        per-change metrics, round traces and outputs against an uninterrupted
        run.  The eviction positions stand in for idle-eviction points."""
        from repro.testing.protocol_differential import replay_resume_differential

        scenario = _spec(
            name="spool-differential", changes=16, runner="protocol",
            network=networks[0],
        )
        result = replay_resume_differential(scenario, positions=(3, 9), networks=networks)
        assert result.networks == networks
        assert result.num_changes == 16


class TestSaveCheckpointDurability:
    """The spool must never see a truncated-but-renamed checkpoint."""

    def test_fsync_happens_before_rename(self, tmp_path, monkeypatch):
        session = Session(_spec(changes=6))
        session.step()
        calls = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            calls.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            calls.append(("replace", str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        target = tmp_path / "spool.ckpt.json"
        save_checkpoint(target, session.checkpoint())
        kinds = [call[0] for call in calls]
        assert kinds.index("fsync") < kinds.index("replace")
        assert load_checkpoint(target).position == session.position

    def test_failed_rename_leaves_no_temp_and_keeps_target(self, tmp_path, monkeypatch):
        session = Session(_spec(changes=6))
        target = tmp_path / "spool.ckpt.json"
        save_checkpoint(target, session.checkpoint())
        before = target.read_text(encoding="utf-8")
        session.step()

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(target, session.checkpoint())
        monkeypatch.undo()
        # The old checkpoint survives untouched; the temp file is cleaned up.
        assert target.read_text(encoding="utf-8") == before
        assert [path.name for path in tmp_path.iterdir()] == [target.name]
