"""Unit tests for the line-graph reduction."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph, GraphError, canonical_edge
from repro.graph.line_graph import LineGraphView, line_graph_of
from repro.graph.validation import check_graph_consistency


class TestStaticConstruction:
    def test_line_graph_of_path(self):
        path = generators.path_graph(4)
        line = line_graph_of(path)
        assert line.num_nodes() == 3
        assert line.num_edges() == 2
        assert line.has_edge((0, 1), (1, 2))
        assert not line.has_edge((0, 1), (2, 3))

    def test_line_graph_of_triangle_is_triangle(self):
        triangle = generators.complete_graph(3)
        line = line_graph_of(triangle)
        assert line.num_nodes() == 3
        assert line.num_edges() == 3

    def test_line_graph_of_star_is_clique(self):
        star = generators.star_graph(5)
        line = line_graph_of(star)
        assert line.num_nodes() == 5
        assert line.num_edges() == 10  # K_5

    def test_line_graph_edge_count_formula(self):
        graph = generators.erdos_renyi_graph(15, 0.3, seed=4)
        line = line_graph_of(graph)
        expected_edges = sum(
            graph.degree(node) * (graph.degree(node) - 1) // 2 for node in graph.nodes()
        )
        assert line.num_nodes() == graph.num_edges()
        assert line.num_edges() == expected_edges
        check_graph_consistency(line)

    def test_empty_graph(self):
        assert line_graph_of(DynamicGraph()).num_nodes() == 0


class TestIncrementalView:
    def test_view_matches_batch_construction_under_churn(self):
        base = generators.erdos_renyi_graph(12, 0.3, seed=3)
        view = LineGraphView(base)
        assert view.line_graph == line_graph_of(base)

        view.add_node(100)
        view.add_edge(100, 0)
        view.add_edge(100, 1)
        existing_edge = view.base_graph.edges()[0]
        view.remove_edge(*existing_edge)
        view.add_node_with_edges(101, [100, 2])
        view.remove_node(3)
        assert view.line_graph == line_graph_of(view.base_graph)

    def test_add_edge_returns_single_derived_change(self):
        view = LineGraphView(generators.path_graph(3))
        changes = view.add_edge(0, 2)
        assert len(changes) == 1
        operation, node, neighbors = changes[0]
        assert operation == "add_node"
        assert node == canonical_edge(0, 2)
        assert set(neighbors) == {canonical_edge(0, 1), canonical_edge(1, 2)}

    def test_remove_edge_returns_single_derived_change(self):
        view = LineGraphView(generators.path_graph(3))
        changes = view.remove_edge(1, 2)
        assert changes == [("remove_node", canonical_edge(1, 2))]
        assert not view.base_graph.has_edge(1, 2)

    def test_remove_node_produces_one_change_per_incident_edge(self):
        view = LineGraphView(generators.star_graph(4))
        changes = view.remove_node(0)
        assert len(changes) == 4
        assert all(change[0] == "remove_node" for change in changes)
        assert view.base_graph.num_edges() == 0

    def test_add_isolated_node_produces_no_derived_change(self):
        view = LineGraphView()
        assert view.add_node("a") == []
        assert view.line_graph.num_nodes() == 0

    def test_remove_missing_edge_raises(self):
        view = LineGraphView(generators.path_graph(3))
        with pytest.raises(GraphError):
            view.remove_edge(0, 2)

    def test_edge_node_is_canonical(self):
        view = LineGraphView()
        assert view.edge_node(5, 2) == (2, 5)

    def test_base_graph_is_a_copy(self):
        base = generators.path_graph(3)
        view = LineGraphView(base)
        view.remove_edge(0, 1)
        assert base.has_edge(0, 1)
