"""The incremental CSR mirror: unit mechanics + decode-equality properties.

The mirror (:class:`repro.core.csr.CSRMirror`) is only correct if, whenever
its rows are read, they decode to *exactly* the engine's ragged adjacency --
through arbitrary interleaved churn, label re-interning onto recycled
free-list ids, in-place patches, tail relocations, and compacting rebuilds.
The hypothesis property here drives exactly that churn (same recycled-label
scripts as ``test_properties_hypothesis``) and checks full decode equality
of adjacency, priorities and states after every change, with tiny
slack/rebuild parameters so compaction happens constantly instead of never.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dynamic_mis import DynamicMIS
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    apply_change_to_graph,
)

np = pytest.importorskip("numpy")

from repro.core.csr import CSRMirror  # noqa: E402  (needs numpy)
from repro.parallel.kernels import (  # noqa: E402
    DESIRED_IN,
    DESIRED_OUT,
    DESIRED_UNCERTAIN,
)

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_mirror_matches_engine(engine) -> None:
    """Full decode equality: adjacency rows, priority plane, state plane."""
    mirror = engine.csr_mirror
    capacity = engine.capacity()
    mirror.prepare(engine._adj, capacity)
    mirror.check_layout(capacity)
    assert mirror.decode(capacity) == [list(row) for row in engine._adj]
    planes = engine.csr_planes()
    assert planes["prio"].tolist() == engine._prio
    assert planes["state"].tolist() == list(engine._state)
    for label, nid in engine.interned_items():
        assert planes["lengths"][nid] == engine.degree(label)


# ----------------------------------------------------------------------
# Unit mechanics (direct CSRMirror, no engine)
# ----------------------------------------------------------------------
class _Rows:
    """Minimal ragged-adjacency stand-in: a list of int64 arrays."""

    def __init__(self, rows: List[List[int]]) -> None:
        self.rows = [np.asarray(row, dtype=np.int64) for row in rows]

    def __getitem__(self, nid: int) -> np.ndarray:
        return self.rows[nid]

    def __len__(self) -> int:
        return len(self.rows)

    def set(self, nid: int, row: List[int]) -> None:
        self.rows[nid] = np.asarray(row, dtype=np.int64)


def test_patch_in_place_within_slack() -> None:
    rows = _Rows([[1, 2], [0], [0]])
    mirror = CSRMirror(min_slack=4)
    mirror.prepare(rows, 3)
    assert mirror.rebuilds == 1  # fresh mirrors bootstrap with one rebuild
    rows.set(0, [1, 2, 3])  # grows but fits the slack
    mirror.mark(0)
    mirror.prepare(rows, 3)
    assert mirror.decode(3) == [[1, 2, 3], [0], [0]]
    assert mirror.relocations == 0 and mirror.dead == 0


def test_outgrown_row_relocates_to_the_tail() -> None:
    rows = _Rows([[1], [0]])
    mirror = CSRMirror(min_slack=1)
    mirror.prepare(rows, 2)
    old_start = int(mirror.starts[0])
    rows.set(0, [1, 2, 3, 4, 5])  # far past cap = 2
    mirror.mark(0)
    mirror.prepare(rows, 2)
    assert mirror.decode(2) == [[1, 2, 3, 4, 5], [0]]
    assert mirror.relocations == 1
    assert int(mirror.starts[0]) != old_start
    assert mirror.dead > 0  # the abandoned slab is accounted
    mirror.check_layout(2)


def test_dead_space_triggers_compacting_rebuild() -> None:
    rows = _Rows([[], []])
    mirror = CSRMirror(min_slack=0, rebuild_floor=1)
    mirror.prepare(rows, 2)
    generation = mirror.generation
    grown: List[int] = []
    for step in range(1, 30):
        grown.append(step)
        rows.set(0, list(grown))  # relentless growth => repeated relocation
        mirror.mark(0)
        mirror.prepare(rows, 2)
        assert mirror.decode(2) == [grown, []]
        mirror.check_layout(2)
    assert mirror.rebuilds > 1, "dead space never triggered compaction"
    assert mirror.generation > generation
    assert mirror.dead * 2 <= mirror.tail + 1  # compaction kept waste bounded


def test_prepare_patches_only_requested_rows() -> None:
    rows = _Rows([[1], [0], []])
    mirror = CSRMirror()
    mirror.prepare(rows, 3)
    rows.set(0, [1, 2])
    rows.set(1, [0, 2])
    mirror.mark(0)
    mirror.mark(1)
    before = mirror.patched_rows
    mirror.prepare(rows, 3, rows=np.asarray([0], dtype=np.int64))
    assert mirror.patched_rows == before + 1  # row 1 stays dirty
    assert mirror.dirty_count() == 1
    assert mirror.row(0).tolist() == [1, 2]
    mirror.prepare(rows, 3)
    assert mirror.dirty_count() == 0
    assert mirror.decode(3) == [[1, 2], [0, 2], []]


def test_desired_codes_matches_serial_semantics() -> None:
    # 0 -- 1 -- 2 chain; priorities 0 < 1 < 2, node 0 in the MIS.
    rows = _Rows([[1], [0, 2], [1]])
    mirror = CSRMirror()
    mirror.prepare(rows, 3)
    prio = np.asarray([0.0, 1.0, 2.0])
    state = np.asarray([1, 0, 0], dtype=np.uint8)
    codes = mirror.desired_codes(np.arange(3, dtype=np.int64), state, prio)
    # 0: no earlier in-MIS neighbor -> IN; 1: blocked by 0 -> OUT;
    # 2: neighbor 1 is out -> IN.
    assert codes.tolist() == [DESIRED_IN, DESIRED_OUT, DESIRED_IN]
    # An exact priority tie against an in-MIS neighbor must escape serially,
    # and an earlier in-MIS neighbor must dominate a simultaneous tie.
    tie_prio = np.asarray([1.0, 1.0, 1.0])
    codes = mirror.desired_codes(np.arange(3, dtype=np.int64), state, tie_prio)
    assert codes.tolist() == [DESIRED_IN, DESIRED_UNCERTAIN, DESIRED_IN]
    both = _Rows([[1], [0, 2], [1]])
    blocked_and_tied = CSRMirror()
    blocked_and_tied.prepare(both, 3)
    mixed_prio = np.asarray([0.0, 1.0, 1.0])
    mixed_state = np.asarray([1, 0, 1], dtype=np.uint8)
    codes = blocked_and_tied.desired_codes(
        np.asarray([1], dtype=np.int64), mixed_state, mixed_prio
    )
    assert codes.tolist() == [DESIRED_OUT]


def test_later_frontier_breaks_ties_with_full_keys() -> None:
    rows = _Rows([[1, 2], [], []])
    mirror = CSRMirror()
    mirror.prepare(rows, 3)
    prio = np.asarray([1.0, 1.0, 2.0])
    keys = [(1.0, 0), (1.0, 1), (2.0, 0)]  # node 1 ties node 0, later by key
    frontier = mirror.later_frontier(np.asarray([0], dtype=np.int64), prio, keys)
    assert frontier.tolist() == [1, 2]
    keys = [(1.0, 1), (1.0, 0), (2.0, 0)]  # now node 1 is *earlier* by key
    frontier = mirror.later_frontier(np.asarray([0], dtype=np.int64), prio, keys)
    assert frontier.tolist() == [2]


# ----------------------------------------------------------------------
# Property: decode equality through interleaved churn (satellite)
# ----------------------------------------------------------------------
@st.composite
def interleaved_churn_scripts(draw) -> Tuple[int, List]:
    """Valid-by-construction churn over a small recycled label pool.

    Deleting a label and re-inserting it later lands on a different free-list
    id, so the mirror's recycled rows are exercised constantly.
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    pool = [f"r{i}" for i in range(6)]
    working = DynamicGraph()
    script: List = []
    num_steps = draw(st.integers(min_value=1, max_value=24))
    for _ in range(num_steps):
        present = sorted(working.nodes(), key=repr)
        absent = [label for label in pool if not working.has_node(label)]
        options = []
        if absent:
            options.append("insert_node")
        if present:
            options.append("delete_node")
        missing_edges = [
            (u, v)
            for i, u in enumerate(present)
            for v in present[i + 1 :]
            if not working.has_edge(u, v)
        ]
        if missing_edges:
            options.append("insert_edge")
        if working.num_edges() > 0:
            options.append("delete_edge")
        action = draw(st.sampled_from(options))
        if action == "insert_node":
            label = draw(st.sampled_from(absent))
            neighbors = (
                tuple(draw(st.lists(st.sampled_from(present), unique=True))) if present else ()
            )
            change = NodeInsertion(label, neighbors)
        elif action == "delete_node":
            change = NodeDeletion(draw(st.sampled_from(present)), graceful=draw(st.booleans()))
        elif action == "insert_edge":
            change = EdgeInsertion(*draw(st.sampled_from(missing_edges)))
        else:
            change = EdgeDeletion(*draw(st.sampled_from(working.edges())))
        apply_change_to_graph(working, change)
        script.append(change)
    return seed, script


@COMMON_SETTINGS
@given(interleaved_churn_scripts())
def test_mirror_decodes_exactly_after_every_change(script_case) -> None:
    seed, script = script_case
    maintainer = DynamicMIS(seed=seed, engine="fast-csr")
    engine = maintainer.engine
    assert engine.csr_mirror is not None
    for change in script:
        maintainer.apply(change)
        _assert_mirror_matches_engine(engine)
        engine.check_interning_invariants()  # includes its own decode check
    maintainer.verify()


@COMMON_SETTINGS
@given(interleaved_churn_scripts())
def test_mirror_decodes_exactly_under_forced_compaction(script_case) -> None:
    """Zero slack + floor-1 rebuilds: every regrowth relocates, waste compacts."""
    seed, script = script_case
    maintainer = DynamicMIS(seed=seed, engine="fast-csr")
    engine = maintainer.engine
    engine._csr = CSRMirror(min_slack=0, rebuild_floor=1)
    engine._csr_mark = engine._csr.mark  # the engine hoists the bound add
    for change in script:
        maintainer.apply(change)
        _assert_mirror_matches_engine(engine)
    maintainer.verify()


@COMMON_SETTINGS
@given(interleaved_churn_scripts())
def test_mirror_decodes_exactly_after_batched_apply(script_case) -> None:
    """The whole script as one atomic batch, CSR wave forced on every level."""
    import repro.core.fast_engine as fast_engine

    seed, script = script_case
    maintainer = DynamicMIS(seed=seed, engine="fast-csr")
    original = fast_engine._CSR_LEVEL_THRESHOLD
    fast_engine._CSR_LEVEL_THRESHOLD = 1
    try:
        maintainer.engine.apply_batch(script)
    finally:
        fast_engine._CSR_LEVEL_THRESHOLD = original
    _assert_mirror_matches_engine(maintainer.engine)
    maintainer.verify()


def test_snapshot_restore_resets_the_mirror() -> None:
    maintainer = DynamicMIS(seed=3, engine="fast-csr")
    engine = maintainer.engine
    maintainer.apply(NodeInsertion("a", ()))
    maintainer.apply(NodeInsertion("b", ("a",)))
    rewind = engine.snapshot()
    maintainer.apply(NodeDeletion("a"))
    engine.restore(rewind)
    _assert_mirror_matches_engine(engine)
    assert maintainer.states() == {"a": True, "b": False} or maintainer.states() == {
        "a": False,
        "b": True,
    }


# ----------------------------------------------------------------------
# The incremental priority mirror (satellite: no per-batch O(n) copy)
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(interleaved_churn_scripts())
def test_priority_mirror_tracks_prio_incrementally(script_case) -> None:
    seed, script = script_case
    for name in ("fast", "fast-csr"):
        maintainer = DynamicMIS(seed=seed, engine=name)
        engine = maintainer.engine
        for change in script:
            maintainer.apply(change)
            capacity = engine.capacity()
            assert len(engine._prio_np) >= capacity
            assert engine._prio_np[:capacity].tolist() == engine._prio


def test_priority_mirror_survives_restore() -> None:
    maintainer = DynamicMIS(seed=9, engine="fast")
    engine = maintainer.engine
    maintainer.apply(NodeInsertion("a", ()))
    maintainer.apply(NodeInsertion("b", ("a",)))
    rewind = engine.snapshot()
    maintainer.apply(NodeDeletion("b"))
    engine.restore(rewind)
    capacity = engine.capacity()
    assert engine._prio_np[:capacity].tolist() == engine._prio
