"""Unit tests for the formal engine contract and backend registry.

Covers :mod:`repro.core.engine_api`: registry registration/lookup semantics,
did-you-mean errors, the three accepted ``DynamicMIS(engine=...)`` spec forms
(name / class / instance), live ``ENGINE_NAMES`` derivation, and the
``snapshot()``/``restore()`` pair on both built-in backends (including
cross-backend restores, which the batched differential harness relies on).
"""

from __future__ import annotations

import pytest

import repro
from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSnapshot,
    MISEngine,
    UnknownEngineError,
    available_engines,
    create_engine,
    engine_spec_name,
    get_engine_factory,
    register_engine,
    unregister_engine,
)
from repro.core.fast_engine import FastEngine
from repro.core.template import TemplateEngine
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.workloads.sequences import mixed_churn_sequence


@pytest.fixture
def scratch_engine_name():
    """A registry slot that is guaranteed to be cleaned up after the test."""
    name = "scratch-test-engine"
    unregister_engine(name)
    yield name
    unregister_engine(name)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_are_registered(self):
        assert "template" in available_engines()
        assert "fast" in available_engines()

    def test_engine_names_derive_from_registry(self, scratch_engine_name):
        import repro.core
        import repro.core.dynamic_mis as dynamic_mis_module

        register_engine(scratch_engine_name, TemplateEngine)
        assert scratch_engine_name in available_engines()
        # The package-level and module-level ENGINE_NAMES are live views.
        assert scratch_engine_name in repro.ENGINE_NAMES
        assert scratch_engine_name in repro.core.ENGINE_NAMES
        assert scratch_engine_name in dynamic_mis_module.ENGINE_NAMES
        unregister_engine(scratch_engine_name)
        assert scratch_engine_name not in repro.ENGINE_NAMES

    def test_duplicate_registration_raises_without_overwrite(self, scratch_engine_name):
        register_engine(scratch_engine_name, TemplateEngine)
        with pytest.raises(ValueError, match="already registered"):
            register_engine(scratch_engine_name, FastEngine)
        register_engine(scratch_engine_name, FastEngine, overwrite=True)
        assert get_engine_factory(scratch_engine_name) is FastEngine

    def test_invalid_registrations_rejected(self):
        with pytest.raises(ValueError):
            register_engine("", TemplateEngine)
        with pytest.raises(TypeError):
            register_engine("not-callable", object())

    def test_unknown_engine_has_did_you_mean_hint(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'fast'"):
            get_engine_factory("fsat")
        with pytest.raises(UnknownEngineError, match="did you mean 'template'"):
            DynamicMIS(engine="templte")

    def test_unknown_engine_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            DynamicMIS(engine="turbo")


# ----------------------------------------------------------------------
# create_engine / DynamicMIS engine specs
# ----------------------------------------------------------------------
class TestEngineSpecs:
    def test_dynamic_mis_accepts_engine_class(self):
        graph = path_graph(5)
        by_class = DynamicMIS(seed=3, initial_graph=graph, engine=FastEngine)
        by_name = DynamicMIS(seed=3, initial_graph=graph, engine="fast")
        assert by_class.mis() == by_name.mis()
        assert isinstance(by_class.engine, FastEngine)

    def test_dynamic_mis_accepts_prebuilt_instance(self):
        engine = TemplateEngine(seed=5, initial_graph=path_graph(4))
        maintainer = DynamicMIS(engine=engine)
        assert maintainer.engine is engine
        maintainer.insert_node("x", (0,))
        maintainer.verify()

    def test_prebuilt_instance_rejects_conflicting_arguments(self):
        engine = TemplateEngine(seed=5)
        with pytest.raises(ValueError, match="pre-built engine"):
            DynamicMIS(engine=engine, initial_graph=path_graph(3))
        with pytest.raises(ValueError, match="pre-built engine"):
            DynamicMIS(engine=engine, seed=7)  # would silently lose the seed
        with pytest.raises(ValueError):
            create_engine(engine, initial_graph=path_graph(3))

    def test_create_engine_rejects_non_engine_results(self):
        with pytest.raises(TypeError, match="not a MISEngine"):
            create_engine(lambda priorities=None, initial_graph=None: object())
        with pytest.raises(TypeError, match="registered name"):
            create_engine(42)

    def test_engine_spec_name_forms(self):
        assert engine_spec_name("fast") == "fast"
        assert engine_spec_name(FastEngine) == "fastengine"
        assert engine_spec_name(TemplateEngine(seed=0)) == "templateengine"
        assert DynamicMIS(engine=FastEngine).engine_name == "fastengine"

    def test_both_builtins_are_misengines(self):
        assert isinstance(create_engine("template"), MISEngine)
        assert isinstance(create_engine("fast"), MISEngine)


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ["template", "fast"])
class TestSnapshotRestore:
    def _churned(self, engine_name):
        graph = erdos_renyi_graph(18, 0.2, seed=9)
        maintainer = DynamicMIS(seed=9, initial_graph=graph, engine=engine_name)
        maintainer.apply_sequence(mixed_churn_sequence(graph, 25, seed=10))
        return maintainer

    def test_restore_rewinds_observable_state(self, engine_name):
        maintainer = self._churned(engine_name)
        snap = maintainer.engine.snapshot()
        assert isinstance(snap, EngineSnapshot)
        states_then = maintainer.states()
        keys_then = {n: maintainer.priorities.key(n) for n in maintainer.graph.nodes()}
        maintainer.apply_sequence(
            mixed_churn_sequence(maintainer.graph.copy(), 20, seed=11)
        )
        maintainer.engine.restore(snap)
        maintainer.verify()
        assert maintainer.states() == states_then
        assert {n: maintainer.priorities.key(n) for n in maintainer.graph.nodes()} == keys_then
        # The rewound engine evolves exactly like an engine that never diverged.
        replay = DynamicMIS(seed=9, initial_graph=maintainer.graph.copy(), engine=engine_name)
        follow_up = mixed_churn_sequence(maintainer.graph.copy(), 15, seed=12)
        maintainer.apply_sequence(follow_up)
        replay.apply_sequence(follow_up)
        assert maintainer.states() == replay.states()

    def test_cross_backend_restore(self, engine_name):
        """A snapshot taken from one backend restores into the other."""
        maintainer = self._churned(engine_name)
        snap = maintainer.engine.snapshot()
        other_name = "fast" if engine_name == "template" else "template"
        other = DynamicMIS(seed=9, engine=other_name)
        other.engine.restore(snap)
        other.verify()
        assert other.states() == maintainer.states()
        assert other.graph.num_edges() == maintainer.graph.num_edges()

    def test_restore_keeps_interning_sound(self, engine_name):
        maintainer = self._churned(engine_name)
        snap = maintainer.engine.snapshot()
        maintainer.engine.restore(snap)
        if isinstance(maintainer.engine, FastEngine):
            maintainer.engine.check_interning_invariants()
        report = maintainer.engine.apply_batch(
            mixed_churn_sequence(maintainer.graph.copy(), 10, seed=13)
        )
        assert isinstance(report, BatchUpdateReport)
        maintainer.verify()
