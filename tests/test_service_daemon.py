"""The service daemon: sharded socket server, client, SIGTERM drain/resume.

Two layers of tests:

* **in-process** -- a :class:`~repro.service.daemon.MISService` (real shard
  worker processes, real sockets on an ephemeral port) driven through
  :class:`~repro.service.client.ServiceClient`;
* **subprocess** -- the ISSUE's lifecycle acceptance bar: ``repro-mis
  serve`` spawned as a real process, 50 concurrent sessions across 2 shard
  workers with a ``--max-live`` low enough to force evictions mid-run,
  outputs identical to never-evicted in-process reference runs, and
  SIGTERM -> restart -> resume exact.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenario.session import Session
from repro.scenario.spec import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec
from repro.service import (
    MISService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    shard_for,
)
from repro.service import protocol as wire

REPO_ROOT = Path(__file__).resolve().parent.parent


def _spec(name, *, seed, runner="sequential", nodes=10, changes=10):
    backend = (
        BackendSpec(runner="sequential", engine="template")
        if runner == "sequential"
        else BackendSpec(runner="protocol", protocol="buffered")
    )
    return ScenarioSpec(
        name=name,
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=nodes, seed=seed),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=changes, seed=seed + 1),
        backend=backend,
    )


def _service(tmp_path, **overrides):
    config = {
        "spool_dir": str(tmp_path / "spool"),
        "bind": "tcp:127.0.0.1:0",
        "shards": 2,
        "max_live": 8,
    }
    config.update(overrides)
    return MISService(ServiceConfig(**config))


class TestInProcessDaemon:
    def test_ping_create_apply_query_across_shards(self, tmp_path):
        spec = _spec("daemon-test", seed=5).to_dict()
        with _service(tmp_path) as service, ServiceClient(service.address) as client:
            info = client.ping()
            assert info["service"] == "repro-mis" and info["shards"] == 2
            names = [f"s{index}" for index in range(6)]
            assert len({shard_for(name, 2) for name in names}) == 2
            for name in names:
                client.create(name, spec)
            stats = client.stats()
            assert stats["sessions"] == 6
            assert all(shard["sessions"] >= 1 for shard in stats["per_shard"])
            assert client.apply("s0", steps=4)["position"] == 4
            assert client.apply_batch("s1", steps=3)["position"] == 3
            assert client.query("s0", "mis")["mis"]
            assert len(client.list_sessions()) == 6

    def test_error_kinds_cross_the_wire(self, tmp_path):
        spec = _spec("daemon-err", seed=6).to_dict()
        with _service(tmp_path) as service, ServiceClient(service.address) as client:
            client.create("a", spec)
            with pytest.raises(ServiceClientError) as caught:
                client.create("a", spec)
            assert caught.value.kind == "session-exists"
            with pytest.raises(ServiceClientError) as caught:
                client.query("ghost")
            assert caught.value.kind == "unknown-session"
            with pytest.raises(ServiceClientError) as caught:
                client.request("create", session="b", spec={"backend": {"runner": "warp"}})
            assert caught.value.kind == "spec-error"
            with pytest.raises(ServiceClientError) as caught:
                client.request("teleport", session="a")
            assert caught.value.kind == "bad-request"
            with pytest.raises(ServiceClientError) as caught:
                client.request("apply")  # no session parameter
            assert caught.value.kind == "bad-request"

    def test_malformed_json_line_is_rejected(self, tmp_path):
        with _service(tmp_path) as service:
            family, location = wire.parse_address(service.address)
            with socket.create_connection(location, timeout=10) as raw:
                raw.sendall(b"this is not json\n")
                response = wire.decode_message(raw.makefile("rb").readline())
        assert response["ok"] is False and response["kind"] == "bad-request"

    @pytest.mark.skipif(not hasattr(socket, "AF_UNIX"), reason="needs unix sockets")
    def test_unix_socket_address(self, tmp_path):
        bind = f"unix:{tmp_path / 'svc.sock'}"
        with _service(tmp_path, bind=bind, shards=1) as service:
            assert service.address == bind
            with ServiceClient(bind) as client:
                assert client.ping()["shards"] == 1
        assert not (tmp_path / "svc.sock").exists()  # cleaned up on stop

    def test_shutdown_op_sets_the_event(self, tmp_path):
        with _service(tmp_path, shards=1) as service:
            with ServiceClient(service.address) as client:
                assert client.shutdown()["shutting_down"] is True
            assert service.shutdown_requested.wait(timeout=5)

    def test_stop_drains_and_restart_resumes(self, tmp_path):
        spec = _spec("daemon-resume", seed=7)
        with _service(tmp_path) as service, ServiceClient(service.address) as client:
            client.create("r1", spec.to_dict())
            client.apply("r1", steps=6)
        # context exit == stop(drain=True); same spool, fresh daemon
        with _service(tmp_path) as service, ServiceClient(service.address) as client:
            rows = client.list_sessions()
            assert [(row["session"], row["live"]) for row in rows] == [("r1", False)]
            assert client.query("r1")["position"] == 6
            final = client.apply("r1", steps=99)
            assert final["done"]
            resumed = set(client.query("r1", "mis")["mis"])
        reference = Session(spec)
        reference.run(verify=False)
        assert resumed == set(reference.mis())


class TestServeSubprocessSmoke:
    """The lifecycle acceptance bar, against the real ``repro-mis serve``."""

    NUM_SESSIONS = 50
    MAX_LIVE = 5  # far below 50/2 per shard: evictions are guaranteed mid-run

    def _spawn(self, spool):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--spool", str(spool),
                "--shards", "2",
                "--max-live", str(self.MAX_LIVE),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        banner = process.stdout.readline()
        assert banner.startswith("listening on "), banner
        return process, banner.split()[-1]

    def test_fifty_sessions_two_shards_sigterm_restart_exact(self, tmp_path):
        spool = tmp_path / "spool"
        variants = [
            _spec(f"variant-{index}", seed=20 + index,
                  runner="protocol" if index % 2 else "sequential")
            for index in range(5)
        ]
        names = [f"w{index:02d}" for index in range(self.NUM_SESSIONS)]
        assert len({shard_for(name, 2) for name in names}) == 2
        first_stretch = {name: 3 + index % 4 for index, name in enumerate(names)}

        process, address = self._spawn(spool)
        try:
            with ServiceClient(address) as client:
                for index, name in enumerate(names):
                    client.create(name, variants[index % 5].to_dict())
                    client.apply_batch(name, steps=first_stretch[name])
                stats = client.stats()
                assert stats["sessions"] == self.NUM_SESSIONS
                assert all(shard["sessions"] > 0 for shard in stats["per_shard"])
                # max-live forced spool evictions while all 50 stayed usable.
                assert stats["evictions"] > 0
                assert stats["live"] <= 2 * self.MAX_LIVE
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert f"drained {2 * self.MAX_LIVE} session(s)" in output or "drained" in output
        assert len(list(spool.glob("*.ckpt.json"))) == self.NUM_SESSIONS

        # Restart on the same spool: every session resumes exactly where
        # SIGTERM left it and finishes identical to a never-evicted run.
        references = []
        for variant in variants:
            session = Session(variant)
            session.run(verify=False)
            references.append(
                sorted(([node, in_mis] for node, in_mis in session.states().items()),
                       key=repr)
            )
        process, address = self._spawn(spool)
        try:
            with ServiceClient(address) as client:
                for index, name in enumerate(names):
                    status = client.query(name)
                    assert status["position"] == first_stretch[name], name
                    client.apply_batch(name, steps=99)
                    states = client.query(name, "states")["states"]
                    assert states == references[index % 5], name
                client.shutdown()
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.communicate()
        assert process.returncode == 0
