"""Tests for Algorithm 2 (the constant-broadcast protocol) on the synchronous simulator."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)
from repro.workloads.sequences import edge_churn_sequence, mixed_churn_sequence


class TestBootstrap:
    def test_initial_output_is_random_greedy(self, small_random_graph):
        network = BufferedMISNetwork(seed=3, initial_graph=small_random_graph)
        network.verify()
        assert network.mis() == greedy_mis(network.graph, network.priorities)

    def test_nodes_know_their_neighborhood(self, small_random_graph):
        network = BufferedMISNetwork(seed=3, initial_graph=small_random_graph)
        for node in small_random_graph.nodes():
            runtime = network.node_runtime(node)
            assert runtime.neighbors == set(small_random_graph.neighbors(node))
            assert set(runtime.neighbor_keys) == runtime.neighbors
            assert set(runtime.neighbor_states) == runtime.neighbors


class TestSingleChanges:
    def test_edge_insertion_costs_constant_broadcasts(self, small_random_graph):
        network = BufferedMISNetwork(seed=5, initial_graph=small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        missing = [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v)
        ]
        metrics = network.apply(EdgeInsertion(*missing[0]))
        network.verify()
        assert metrics.change_kind == "edge_insertion"
        # Two ID broadcasts plus at most three per influenced node.
        assert metrics.broadcasts >= 2
        assert metrics.broadcasts <= 2 + 3 * max(1, metrics.adjustments + 5)

    def test_edge_deletion(self, small_random_graph):
        network = BufferedMISNetwork(seed=6, initial_graph=small_random_graph)
        edge = network.graph.edges()[0]
        metrics = network.apply(EdgeDeletion(*edge))
        network.verify()
        assert metrics.change_kind == "edge_deletion"

    def test_abrupt_edge_deletion(self, small_random_graph):
        network = BufferedMISNetwork(seed=6, initial_graph=small_random_graph)
        edge = network.graph.edges()[1]
        network.apply(EdgeDeletion(*edge, graceful=False))
        network.verify()

    def test_node_insertion_with_neighbors(self, small_random_graph):
        network = BufferedMISNetwork(seed=7, initial_graph=small_random_graph)
        neighbors = tuple(sorted(small_random_graph.nodes())[:4])
        metrics = network.apply(NodeInsertion("new", neighbors))
        network.verify()
        # Discovery costs 1 + d broadcasts; the repair costs O(1) more.
        assert metrics.broadcasts >= 1 + len(neighbors)
        assert network.graph.has_node("new")

    def test_isolated_node_insertion_joins_mis(self):
        network = BufferedMISNetwork(seed=8, initial_graph=generators.empty_graph(3))
        network.apply(NodeInsertion("lonely"))
        network.verify()
        assert "lonely" in network.mis()

    def test_node_unmuting_costs_constant_broadcasts(self, small_random_graph):
        network = BufferedMISNetwork(seed=9, initial_graph=small_random_graph)
        neighbors = tuple(sorted(small_random_graph.nodes())[:5])
        metrics = network.apply(NodeUnmuting("ghost", neighbors))
        network.verify()
        # No introduction storm: the unmuted node already knows its neighbors.
        assert metrics.broadcasts <= 2 + 3 * (metrics.adjustments + 3)

    def test_graceful_mis_node_deletion(self):
        network = BufferedMISNetwork(seed=10, initial_graph=generators.star_graph(6))
        target = next(iter(network.mis()))
        metrics = network.apply(NodeDeletion(target, graceful=True))
        network.verify()
        assert not network.graph.has_node(target)
        assert metrics.change_kind == "node_deletion"

    def test_graceful_non_mis_node_deletion_is_silent(self, small_random_graph):
        network = BufferedMISNetwork(seed=11, initial_graph=small_random_graph)
        non_mis = sorted(set(small_random_graph.nodes()) - network.mis(), key=repr)
        metrics = network.apply(NodeDeletion(non_mis[0], graceful=True))
        network.verify()
        assert metrics.broadcasts == 0
        assert metrics.adjustments == 0

    def test_abrupt_mis_node_deletion(self):
        network = BufferedMISNetwork(seed=12, initial_graph=generators.star_graph(8))
        target = next(iter(network.mis()))
        network.apply(NodeDeletion(target, graceful=False))
        network.verify()

    def test_abrupt_non_mis_node_deletion(self, small_random_graph):
        network = BufferedMISNetwork(seed=13, initial_graph=small_random_graph)
        non_mis = sorted(set(small_random_graph.nodes()) - network.mis(), key=repr)
        metrics = network.apply(NodeDeletion(non_mis[0], graceful=False))
        network.verify()
        assert metrics.adjustments == 0


class TestSequences:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_long_mixed_churn_tracks_oracle(self, seed, small_random_graph):
        network = BufferedMISNetwork(seed=seed, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 80, seed=seed + 20):
            network.apply(change)
            network.verify()
        check_maximal_independent_set(network.graph, network.mis())

    def test_edge_churn_constant_broadcasts_on_average(self, medium_random_graph):
        network = BufferedMISNetwork(seed=2, initial_graph=medium_random_graph)
        network.apply_sequence(edge_churn_sequence(medium_random_graph, 150, seed=3))
        network.verify()
        summary = network.metrics.summary()
        # The paper's bound is a constant independent of n; allow generous slack.
        assert summary["mean_broadcasts"] < 15
        assert summary["mean_rounds"] < 12
        assert summary["mean_adjustments"] <= 2.0

    def test_metrics_are_recorded_per_change(self, small_random_graph):
        network = BufferedMISNetwork(seed=4, initial_graph=small_random_graph)
        changes = edge_churn_sequence(small_random_graph, 25, seed=5)
        records = network.apply_sequence(changes)
        assert len(records) == 25
        assert network.metrics.num_changes == 25

    def test_every_node_ends_in_an_output_state(self, small_random_graph):
        from repro.distributed.node import NodeState

        network = BufferedMISNetwork(seed=5, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 40, seed=6):
            network.apply(change)
            for node in network.graph.nodes():
                assert network.node_runtime(node).state in (NodeState.M, NodeState.M_BAR)
