"""Protocol differential conformance: fast network cores must equal the dict cores.

The id-interned simulators of :mod:`repro.distributed.fast_network`
re-implement the synchronous controller, both protocol state machines and
the asynchronous event loop from scratch, so -- exactly like the engine
backends -- they are only acceptable if they are *observably identical* to
the dict/set simulators:
:func:`repro.testing.protocol_differential.replay_protocol_differential`
checks per change every complexity metric (rounds, broadcasts, bits, state
changes, adjustments, adjusted-node sets), the round-by-round traces and
the full output maps.

The tier-1 subset replays 25 seeded sequences per acceptance bar; the
``conformance``-marked sweep (nightly, ``--run-conformance``) runs longer
sequences, denser graphs and all three protocols.  A lying-backend test
pins down that the harness detects divergence and emits the divergence
dumps CI uploads as failure artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.rng import spawn_seeds
from repro.distributed.fast_network import FastBufferedMISNetwork
from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec
from repro.testing.differential import ConformanceMismatch, conformance_workload
from repro.testing.protocol_differential import (
    replay_protocol_differential,
    replay_resume_differential,
)

MASTER_SEED = 20260731
#: >= 25 seeds in tier-1: the acceptance bar for the fast network core.
PROTOCOL_SUITE_SEEDS = spawn_seeds(MASTER_SEED, 25)

SPEC_DIR = Path(__file__).resolve().parent.parent.parent / "examples" / "scenario_specs"


def _resume_scenario(protocol: str, seed: int, num_changes: int = 30) -> ScenarioSpec:
    """One protocol scenario for the checkpoint/resume differentials."""
    backend = BackendSpec(runner="protocol", protocol=protocol, engine="fast")
    if protocol == "async-direct":
        # Exact async resume needs a channel-deterministic scheduler with
        # distinct per-channel delays; the spec pins one down.
        backend = BackendSpec(
            runner="protocol",
            protocol=protocol,
            engine="fast",
            scheduler={"kind": "adversarial", "seed": seed + 1},
        )
    return ScenarioSpec(
        name=f"resume-{protocol}",
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=16, seed=seed + 2),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=num_changes, seed=seed + 3),
        backend=backend,
    )


# ----------------------------------------------------------------------
# Tier-1: dict vs fast over 25 seeded sequences (round-identical)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", PROTOCOL_SUITE_SEEDS)
def test_buffered_replay_dict_vs_fast(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=30, start_nodes=16)
    result = replay_protocol_differential(graph, changes, seed=seed, protocol="buffered")
    assert result.num_changes == 30
    assert result.networks == ("dict", "fast")


@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 1, 5))
def test_direct_replay_dict_vs_fast(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=30, start_nodes=16)
    result = replay_protocol_differential(graph, changes, seed=seed, protocol="direct")
    assert result.networks == ("dict", "fast")


@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 2, 3))
def test_async_replay_dict_vs_fast(seed: int) -> None:
    """Asynchronous runs agree metric-for-metric under a channel-deterministic scheduler."""
    graph, changes = conformance_workload(seed, num_changes=25, start_nodes=14)
    result = replay_protocol_differential(graph, changes, seed=seed, protocol="async-direct")
    assert result.networks == ("dict", "fast")


@pytest.mark.parametrize("protocol", ["buffered", "direct"])
def test_protocol_replay_from_scenario(protocol: str) -> None:
    """A declarative scenario drives the conformance run: the spec fixes the
    workload, the protocol and the verification reference, so "same
    scenario, two network backends" holds by construction -- and matches the
    hand-built replay of the same inputs exactly."""
    from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec

    spec = ScenarioSpec(
        name="conformance-protocol",
        seed=13,
        graph=GraphSpec(family="erdos_renyi", nodes=16, seed=6),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=25, seed=7),
        backend=BackendSpec(runner="protocol", protocol=protocol, engine="fast"),
    )
    by_spec = replay_protocol_differential(scenario=spec)
    assert by_spec.protocol == protocol
    graph, changes = spec.materialize()
    by_hand = replay_protocol_differential(
        graph, changes, seed=13, protocol=protocol, reference_engine="fast"
    )
    assert by_spec == by_hand  # unchanged results vs the pre-scenario harness
    # Explicit protocol/reference_engine alongside scenario= are rejected
    # (they would be silently overridden by the spec's backend otherwise).
    with pytest.raises(ValueError, match="not both"):
        replay_protocol_differential(scenario=spec, protocol=protocol)


@pytest.mark.parametrize("protocol", ["buffered", "direct"])
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 7, 4))
def test_unmuting_and_graceful_deletions_replay(protocol: str, seed: int) -> None:
    """Unmuting (pre-known IDs) and graceful deletions are not generated by the
    churn workload, so they get a dedicated hand-built replay."""
    from repro.graph.generators import erdos_renyi_graph
    from repro.workloads.changes import NodeDeletion, NodeUnmuting

    graph = erdos_renyi_graph(16, 0.25, seed=seed)
    nodes = sorted(graph.nodes())
    changes = [
        NodeDeletion(nodes[0], graceful=True),
        NodeUnmuting(nodes[0], tuple(nodes[2:6])),
        NodeDeletion(nodes[1], graceful=False),
        NodeUnmuting(nodes[1], ()),
        NodeUnmuting("ghost", tuple(nodes[3:9])),
        NodeDeletion("ghost", graceful=True),
    ]
    replay_protocol_differential(graph, changes, seed=seed, protocol=protocol)


def test_buffered_replay_from_empty_graph() -> None:
    """Build-up from nothing exercises discovery seeding on every insertion."""
    from repro.graph.generators import disjoint_paths_graph
    from repro.workloads.sequences import build_sequence, teardown_sequence

    target = disjoint_paths_graph(4, edges_per_path=3)
    changes = build_sequence(target, seed=5) + teardown_sequence(target, seed=6)
    result = replay_protocol_differential(None, changes, seed=11, protocol="buffered")
    assert result.final_num_nodes == 0


# ----------------------------------------------------------------------
# Tier-1: checkpoint on dict, resume on fast -- equal to uninterrupted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["buffered", "direct", "async-direct"])
def test_cross_backend_resume_equals_uninterrupted(protocol: str) -> None:
    """The acceptance bar of the checkpointable-state tentpole: checkpoint
    mid-run on ``network="dict"`` (through the JSON codec, the CLI's file
    path), resume on ``network="fast"``, and the remaining run is equal to
    an uninterrupted one -- outputs, per-change metrics, round traces and
    the accumulated record list -- at several checkpoint positions."""
    result = replay_resume_differential(
        _resume_scenario(protocol, seed=31), positions=(0, 7, 21, 30)
    )
    assert result.networks == ("dict", "fast")
    assert result.num_changes == 30


def test_cross_backend_resume_fast_to_dict() -> None:
    """The reverse direction: fast-core checkpoints restore on the dict core."""
    result = replay_resume_differential(
        _resume_scenario("buffered", seed=32), positions=(13,), networks=("fast", "dict")
    )
    assert result.networks == ("fast", "dict")


def test_adaptive_resume_differential() -> None:
    """Adaptive-adversary scenarios resume exactly too: the checkpoint carries
    the adversary's RNG state, so the resumed deletion stream is identical."""
    scenario = ScenarioSpec(
        name="resume-adaptive",
        seed=33,
        graph=GraphSpec(family="erdos_renyi", nodes=18, seed=5),
        workload=WorkloadSpec(kind="adaptive_adversary", num_changes=14, seed=6),
        backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast"),
    )
    result = replay_resume_differential(scenario, positions=(0, 6, 13))
    assert result.num_changes == 14


# ----------------------------------------------------------------------
# Tier-1: conformance runs driven from shipped spec JSON files
# ----------------------------------------------------------------------
def test_sliding_window_spec_file_drives_the_differential() -> None:
    """A shipped spec file is the conformance input: the sliding-window
    workload (spec-expressible as of this tentpole) replays identically on
    both network cores, straight from ``examples/scenario_specs/``."""
    spec = ScenarioSpec.load(SPEC_DIR / "sliding_window.json")
    result = replay_protocol_differential(scenario=spec)
    assert result.protocol == "buffered"
    assert result.num_changes == 60


def test_async_differentials_reject_non_deterministic_schedulers() -> None:
    """The channel-determinism precondition guards *cross-backend*
    differentials: the two cores enumerate receivers in different orders, so
    a 'random'-scheduler spec (or a scheduler-less async spec, which
    defaults to it) would report false protocol divergence.  Same-backend
    resumes are exempt -- see the random-scheduler resume tests below."""
    scenario = _resume_scenario("async-direct", seed=34).with_backend(
        scheduler={"kind": "random", "seed": 1}
    )
    with pytest.raises(ValueError, match="channel-deterministic"):
        replay_protocol_differential(scenario=scenario)
    # The default networks pair is ("dict", "fast"): cross-backend.
    with pytest.raises(ValueError, match="channel-deterministic"):
        replay_resume_differential(scenario, positions=(3,))
    scheduler_less = _resume_scenario("async-direct", seed=34).with_backend(scheduler=None)
    with pytest.raises(ValueError, match="channel-deterministic"):
        replay_resume_differential(scheduler_less, positions=(3,))


@pytest.mark.parametrize("network", ["dict", "fast"])
def test_same_backend_async_resume_with_random_scheduler(network: str) -> None:
    """The headline fix of the exact-resume tentpole: the random scheduler's
    RNG stream rides in the snapshot, so a same-backend resume is exact for
    *every* scheduler kind -- checked at several checkpoint positions,
    through the JSON codec, via delta checkpoints (the uninterrupted run
    records a journal)."""
    scenario = _resume_scenario("async-direct", seed=35).with_backend(
        scheduler={"kind": "random", "seed": 2}
    )
    result = replay_resume_differential(
        scenario, positions=(0, 9, 23), networks=(network, network)
    )
    assert result.num_changes == 30
    assert result.positions == (0, 9, 23)


def test_same_backend_async_resume_with_default_scheduler() -> None:
    """A scheduler-less async spec (implicit random scheduler) also resumes
    exactly on the same backend."""
    scenario = _resume_scenario("async-direct", seed=36).with_backend(scheduler=None)
    result = replay_resume_differential(
        scenario, positions=(11,), networks=("fast", "fast")
    )
    assert result.networks == ("fast", "fast")


def test_adversary_async_spec_file_resumes_across_backends() -> None:
    """The shipped adaptive + async + adversarial-scheduler spec checkpoints
    and resumes across backends (the full tentpole surface in one file)."""
    spec = ScenarioSpec.load(SPEC_DIR / "adversary_async.json")
    result = replay_resume_differential(spec, positions=(9,))
    assert result.protocol == "async-direct"
    assert result.num_changes == 25


# ----------------------------------------------------------------------
# The harness must catch divergence, not vacuously pass
# ----------------------------------------------------------------------
def _lying_fast_step(monkeypatch: pytest.MonkeyPatch) -> None:
    """Make the fast buffered core under-report its state changes."""
    honest = FastBufferedMISNetwork._node_step

    def lying_step(self, nid, inbox, round_no):
        outgoing, changed = honest(self, nid, inbox, round_no)
        if changed:
            # Under-report the state change: the metrics diverge immediately.
            return outgoing, False
        return outgoing, changed

    monkeypatch.setattr(FastBufferedMISNetwork, "_node_step", lying_step)


def test_harness_detects_a_lying_network(monkeypatch: pytest.MonkeyPatch) -> None:
    _lying_fast_step(monkeypatch)
    graph, changes = conformance_workload(7, num_changes=30, start_nodes=16)
    with pytest.raises(ConformanceMismatch):
        replay_protocol_differential(graph, changes, seed=7, protocol="buffered")


def test_divergence_dump_is_written(monkeypatch: pytest.MonkeyPatch, tmp_path) -> None:
    """On mismatch the harness writes a JSON dump naming the divergent field."""
    _lying_fast_step(monkeypatch)
    graph, changes = conformance_workload(7, num_changes=30, start_nodes=16)
    with pytest.raises(ConformanceMismatch):
        replay_protocol_differential(
            graph, changes, seed=7, protocol="buffered", dump_dir=tmp_path
        )
    dumps = list(tmp_path.glob("divergence_buffered_*.json"))
    assert dumps, "no divergence dump written"
    document = json.loads(dumps[0].read_text())
    assert document["networks"] == ["dict", "fast"]
    assert "state_changes" in document["detail"]
    assert set(document["backends"]) == {"dict", "fast"}
    assert "last_change_trace" in document["backends"]["fast"]


def test_resume_divergence_dump_is_written(
    monkeypatch: pytest.MonkeyPatch, tmp_path
) -> None:
    """Failed resume differentials dump through the same artifact mechanism
    (CI uploads ``resume_divergence_*.json`` next to the replay dumps)."""
    _lying_fast_step(monkeypatch)
    with pytest.raises(ConformanceMismatch):
        replay_resume_differential(
            _resume_scenario("buffered", seed=31), positions=(7,), dump_dir=tmp_path
        )
    dumps = [
        path
        for path in tmp_path.glob("resume_divergence_pos7_buffered_*.json")
        if not path.name.endswith("_journal.json")
    ]
    assert dumps, "no resume divergence dump written"
    document = json.loads(dumps[0].read_text())
    assert document["networks"] == ["dict", "fast"]
    assert set(document["backends"]) == {"dict", "fast"}
    # The dump embeds the scenario spec and points at a sibling delta
    # checkpoint of the reference run -- `repro-mis bisect --from-dump`
    # rebuilds the whole investigation from these two files.
    assert ScenarioSpec.from_dict(document["scenario"]).backend.protocol == "buffered"
    journal_path = tmp_path / document["journal_checkpoint"]
    assert journal_path.exists()
    from repro.scenario import load_checkpoint

    assert load_checkpoint(journal_path).journal is not None


def test_divergence_dump_dir_from_environment(
    monkeypatch: pytest.MonkeyPatch, tmp_path
) -> None:
    from repro.testing.protocol_differential import DUMP_DIR_ENV

    _lying_fast_step(monkeypatch)
    monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path / "artifacts"))
    graph, changes = conformance_workload(7, num_changes=30, start_nodes=16)
    with pytest.raises(ConformanceMismatch):
        replay_protocol_differential(graph, changes, seed=7, protocol="buffered")
    assert list((tmp_path / "artifacts").glob("divergence_*.json"))


# ----------------------------------------------------------------------
# Full sweep (scheduled; --run-conformance)
# ----------------------------------------------------------------------
@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 3, 40))
def test_full_buffered_conformance(seed: int) -> None:
    """40 seeded sequences x 120 changes, adversarial bursts included."""
    graph, changes = conformance_workload(seed, num_changes=120, start_nodes=24)
    result = replay_protocol_differential(graph, changes, seed=seed, protocol="buffered")
    assert result.num_changes == 120


@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 4, 10))
def test_full_direct_conformance(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=100, start_nodes=22)
    replay_protocol_differential(graph, changes, seed=seed, protocol="direct")


@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 5, 10))
def test_full_async_conformance(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=80, start_nodes=20)
    replay_protocol_differential(graph, changes, seed=seed, protocol="async-direct")


@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 6, 8))
def test_full_buffered_conformance_dense(seed: int) -> None:
    graph, changes = conformance_workload(
        seed, num_changes=80, start_nodes=20, edge_probability=0.3, burst_length=10
    )
    replay_protocol_differential(graph, changes, seed=seed, protocol="buffered")


@pytest.mark.conformance
@pytest.mark.parametrize("protocol", ["buffered", "direct", "async-direct"])
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 8, 6))
def test_full_resume_conformance(protocol: str, seed: int) -> None:
    """Nightly sweep: longer workloads, denser checkpoint-position grids,
    both resume directions."""
    scenario = _resume_scenario(protocol, seed=seed, num_changes=80)
    replay_resume_differential(scenario, positions=(0, 11, 40, 79))
    replay_resume_differential(scenario, positions=(27,), networks=("fast", "dict"))
