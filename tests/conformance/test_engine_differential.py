"""Differential conformance: the fast engine must equal the template engine.

The array-backed ``FastEngine`` re-implements the whole hot path (interning,
adjacency, propagation) and is only acceptable if its observable behavior is
*identical* to the reference ``TemplateEngine`` for every change of every
sequence: same MIS sets, same per-change adjustment counts and statistics,
same correlation-clustering views.

The full suite (marked ``conformance``, enabled with ``--run-conformance``)
replays 50 seeded sequences of 200+ changes each, every one interleaving
mixed edge/node churn with adversarial deletion bursts that target the
engines' actual current MIS.  A small smoke subset runs unmarked in tier-1
so engine regressions surface on every push.
"""

from __future__ import annotations

import pytest

from repro.core.rng import spawn_seeds
from repro.graph.generators import disjoint_paths_graph, star_graph
from repro.scenario import GraphSpec, ScenarioSpec, WorkloadSpec
from repro.testing.differential import (
    ConformanceMismatch,
    adversarial_burst_sequence,
    conformance_workload,
    replay_differential,
)
from repro.core.dynamic_mis import DynamicMIS
from repro.workloads.sequences import (
    build_sequence,
    edge_churn_sequence,
    node_churn_sequence,
    teardown_sequence,
)

MASTER_SEED = 20260729
FULL_SUITE_SEEDS = spawn_seeds(MASTER_SEED, 50)
SMOKE_SEEDS = FULL_SUITE_SEEDS[:3]


# ----------------------------------------------------------------------
# Tier-1 smoke subset (runs on every push)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_smoke_mixed_churn_with_bursts(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=80, start_nodes=20)
    result = replay_differential(graph, changes, seed=seed)
    assert result.num_changes == 80
    assert result.engines == ("template", "fast")


def test_smoke_build_then_teardown() -> None:
    target = disjoint_paths_graph(4, edges_per_path=3)
    changes = build_sequence(target, seed=5) + teardown_sequence(target, seed=6)
    result = replay_differential(None, changes, seed=11)
    assert result.final_num_nodes == 0


def test_smoke_pure_edge_churn_from_scenario() -> None:
    # Rebuilt on the declarative scenario API: the spec materializes the
    # exact workload the hand-built version used (star_graph(8) is the
    # "star" family on 9 nodes), so both backends replay the same scenario
    # by construction.
    spec = ScenarioSpec(
        name="conformance-edge-churn",
        seed=3,
        graph=GraphSpec(family="star", nodes=9, seed=3),
        workload=WorkloadSpec(kind="edge_churn", num_changes=60, seed=3),
    )
    by_spec = replay_differential(scenario=spec)
    graph = star_graph(8)
    changes = edge_churn_sequence(graph, 60, seed=3)
    by_hand = replay_differential(graph, changes, seed=3)
    assert by_spec == by_hand  # unchanged results vs the pre-scenario harness


def test_scenario_conflicts_with_explicit_inputs() -> None:
    spec = ScenarioSpec(workload=WorkloadSpec(kind="mixed_churn", num_changes=5))
    with pytest.raises(ValueError, match="not both"):
        replay_differential(star_graph(4), [], seed=1, scenario=spec)
    # An explicit seed alone is also rejected (it would be silently ignored).
    with pytest.raises(ValueError, match="not both"):
        replay_differential(seed=1, scenario=spec)


def test_smoke_pure_node_churn_reuses_labels() -> None:
    graph = star_graph(6)
    changes = node_churn_sequence(graph, 60, seed=4, insert_probability=0.5)
    replay_differential(graph, changes, seed=4)


def test_adversarial_bursts_alone_agree() -> None:
    graph = disjoint_paths_graph(6, edges_per_path=3)
    tracker = DynamicMIS(seed=9, initial_graph=graph, engine="template")
    burst = adversarial_burst_sequence(tracker, 12, seed=9)
    assert burst, "burst generation produced no deletions"
    replay_differential(graph, burst, seed=9)


def test_harness_detects_a_lying_engine(monkeypatch: pytest.MonkeyPatch) -> None:
    """The harness must catch divergence, not vacuously pass.

    Sabotage the fast engine's reported MIS (drop one member) and check the
    replay raises :class:`ConformanceMismatch` instead of succeeding.
    """
    from repro.core.fast_engine import FastEngine

    graph, changes = conformance_workload(1234, num_changes=20, start_nodes=16)
    honest_mis = FastEngine.mis

    def lying_mis(self):
        result = honest_mis(self)
        if result:
            result.pop()
        return result

    monkeypatch.setattr(FastEngine, "mis", lying_mis)
    with pytest.raises(ConformanceMismatch):
        replay_differential(graph, changes, seed=1234)


# ----------------------------------------------------------------------
# Full suite (scheduled; --run-conformance)
# ----------------------------------------------------------------------
@pytest.mark.conformance
@pytest.mark.parametrize("seed", FULL_SUITE_SEEDS)
def test_full_conformance_sequence(seed: int) -> None:
    """50 seeded sequences x 200+ changes, adversarial bursts included."""
    graph, changes = conformance_workload(seed, num_changes=200, start_nodes=30)
    assert len(changes) >= 200
    result = replay_differential(
        graph,
        changes,
        seed=seed,
        check_clustering=True,
        check_influenced_membership=True,
    )
    assert result.num_changes >= 200


@pytest.mark.conformance
@pytest.mark.parametrize("seed", FULL_SUITE_SEEDS[:10])
def test_full_conformance_dense_graphs(seed: int) -> None:
    """Denser instances stress multi-level propagation chains."""
    graph, changes = conformance_workload(
        seed, num_changes=200, start_nodes=24, edge_probability=0.3, burst_length=10
    )
    replay_differential(graph, changes, seed=seed)
