"""CSR-wave differential conformance + the compiled-backend (FFI) slot.

Three gates in one file:

1. **Forced-on replays** -- with ``_CSR_LEVEL_THRESHOLD`` monkeypatched to 1
   every repair level of the ``fast-csr`` backend evaluates through the
   :class:`repro.core.csr.CSRMirror` gather kernels, and both replay
   harnesses must still find it bit-identical to the template (counters,
   influenced sets, MIS, clustering).  Conformance-scale workloads never
   reach the production threshold of 32, so without the forced threshold the
   vectorized path would go untested.
2. **The threshold/fallback matrix** -- CSR off below the threshold, off
   under a huge threshold, off without numpy; each case must both *pass the
   replay* and *provably not run the kernels* (call counter).
3. **The FFI slot** -- a toy external backend that computes every read view
   purely from the frozen :meth:`~repro.core.fast_engine.FastEngine.
   csr_planes` buffer layout (the memory a Rust/Cython backend would mmap),
   registered through the public registry alone and gated by the same
   replays.  A layout-freeze test pins the dtypes so a compiled consumer
   cannot be broken silently.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

import pytest

from repro.core import fast_engine
from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSnapshot,
    MISEngine,
    register_engine,
    unregister_engine,
)
from repro.core.fast_engine import FastEngine
from repro.core.rng import spawn_seeds
from repro.testing.differential import (
    conformance_workload,
    replay_batch_differential,
    replay_differential,
)

Node = Hashable

MASTER_SEED = 20260807
CSR_SUITE_SEEDS = spawn_seeds(MASTER_SEED, 10)


def _counting_desired_codes(monkeypatch: pytest.MonkeyPatch):
    """Wrap the mirror's vectorized level kernel with a call counter."""
    from repro.core.csr import CSRMirror

    calls = {"count": 0}
    original = CSRMirror.desired_codes

    def counted(self, frontier, state, prio):
        calls["count"] += 1
        return original(self, frontier, state, prio)

    monkeypatch.setattr(CSRMirror, "desired_codes", counted)
    return calls


def _force_csr_on(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setattr(fast_engine, "_CSR_LEVEL_THRESHOLD", 1)


# ----------------------------------------------------------------------
# Tier-1: forced-on CSR wave vs template over seeded sequences
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CSR_SUITE_SEEDS)
def test_forced_csr_batched_replay(seed: int, monkeypatch: pytest.MonkeyPatch) -> None:
    if fast_engine._np is None:
        pytest.skip("numpy not available")
    _force_csr_on(monkeypatch)
    calls = _counting_desired_codes(monkeypatch)
    graph, changes = conformance_workload(seed, num_changes=40, start_nodes=18)
    result = replay_batch_differential(
        graph, changes, seed=seed, engines=("template", "fast-csr"), max_batch=8
    )
    assert result.engines == ("template", "fast-csr")
    assert calls["count"] > 0, "the CSR level kernel never ran"


@pytest.mark.parametrize("seed", CSR_SUITE_SEEDS[:5])
def test_forced_csr_single_change_replay(
    seed: int, monkeypatch: pytest.MonkeyPatch
) -> None:
    """Single-change replay: the mirror shadows every mutation path exactly.

    (The per-change path never batches levels, so the win is the decode
    checks inside ``check_interning_invariants`` running all through the
    replay -- any missed dirty-mark diverges the mirror and fails here.)
    """
    if fast_engine._np is None:
        pytest.skip("numpy not available")
    _force_csr_on(monkeypatch)
    graph, changes = conformance_workload(seed, num_changes=40, start_nodes=18)
    result = replay_differential(
        graph, changes, seed=seed, engines=("template", "fast-csr", "fast")
    )
    assert result.engines == ("template", "fast-csr", "fast")


def test_forced_csr_replay_with_node_churn(monkeypatch: pytest.MonkeyPatch) -> None:
    """Label deletion + re-interning onto recycled ids, CSR forced on."""
    from repro.graph.generators import star_graph
    from repro.workloads.sequences import node_churn_sequence

    if fast_engine._np is None:
        pytest.skip("numpy not available")
    _force_csr_on(monkeypatch)
    graph = star_graph(6)
    changes = node_churn_sequence(graph, 60, seed=4, insert_probability=0.5)
    replay_batch_differential(
        graph, changes, seed=4, engines=("template", "fast-csr"), max_batch=6
    )


def test_natural_large_level_engages_csr(monkeypatch: pytest.MonkeyPatch) -> None:
    """A 100-flip level crosses the production threshold organically."""
    from repro.core.priorities import RandomPriorityAssigner
    from repro.graph.dynamic_graph import DynamicGraph
    from repro.workloads.changes import NodeInsertion

    if fast_engine._np is None:
        pytest.skip("numpy not available")
    leaves = list(range(100))
    found = None
    for seed in range(2000):
        assigner = RandomPriorityAssigner(seed)
        newcomer_key = assigner.assign("x")
        if all(newcomer_key < assigner.assign(leaf) for leaf in leaves):
            found = seed
            break
    assert found is not None, "no seed makes 'x' earliest; widen the search"

    graph = DynamicGraph(nodes=leaves)
    batch = [NodeInsertion("x", tuple(leaves))]
    calls = _counting_desired_codes(monkeypatch)
    template = DynamicMIS(seed=found, initial_graph=graph, engine="template")
    csr = DynamicMIS(seed=found, initial_graph=graph, engine="fast-csr")
    report_t = template.apply_batch(batch)
    report_c = csr.apply_batch(batch)
    assert calls["count"] > 0, "a 100-node level should engage the CSR kernels"
    assert template.mis() == csr.mis() == {"x"}
    assert report_t.num_adjustments == report_c.num_adjustments == 101
    assert report_t.num_levels == report_c.num_levels == 2
    assert report_t.update_work == report_c.update_work
    assert report_t.influenced_set == report_c.influenced_set
    template.verify()
    csr.verify()


# ----------------------------------------------------------------------
# Threshold / fallback matrix
# ----------------------------------------------------------------------
def test_below_threshold_levels_never_touch_the_kernels(
    monkeypatch: pytest.MonkeyPatch,
) -> None:
    """Conformance-scale frontiers sit below the production threshold."""
    if fast_engine._np is None:
        pytest.skip("numpy not available")
    calls = _counting_desired_codes(monkeypatch)
    graph, changes = conformance_workload(13, num_changes=40, start_nodes=16)
    replay_batch_differential(
        graph, changes, seed=13, engines=("template", "fast-csr"), max_batch=8
    )
    assert calls["count"] == 0, "small levels must stay on the serial walk"


def test_huge_threshold_forces_csr_off(monkeypatch: pytest.MonkeyPatch) -> None:
    if fast_engine._np is None:
        pytest.skip("numpy not available")
    monkeypatch.setattr(fast_engine, "_CSR_LEVEL_THRESHOLD", 10**9)
    calls = _counting_desired_codes(monkeypatch)
    graph, changes = conformance_workload(14, num_changes=40, start_nodes=16)
    replay_batch_differential(
        graph, changes, seed=14, engines=("template", "fast-csr"), max_batch=8
    )
    assert calls["count"] == 0


def test_numpy_absent_fast_csr_degrades_to_plain_wave(
    monkeypatch: pytest.MonkeyPatch,
) -> None:
    """Without numpy the ``fast-csr`` backend is exactly the fast engine."""
    monkeypatch.setattr(fast_engine, "_np", None)
    monkeypatch.setattr(fast_engine, "_EMPTY_IDS", None)
    graph, changes = conformance_workload(15, num_changes=30, start_nodes=14)
    replay_batch_differential(
        graph, changes, seed=15, engines=("template", "fast-csr"), max_batch=8
    )
    engine = FastEngine(csr=True)
    assert engine.csr_mirror is None
    with pytest.raises(RuntimeError, match="no CSR mirror"):
        engine.csr_planes()


# ----------------------------------------------------------------------
# The compiled-backend slot: a toy FFI engine over the frozen planes
# ----------------------------------------------------------------------
class PlaneReaderEngine(MISEngine):
    """Toy external backend: every read view decoded from the CSR planes.

    The write path delegates to an inner ``csr=True`` fast engine (reports
    and maintenance are the host's job either way); every *query* --
    ``mis``/``states``/``in_mis``/``clustering``/``verify`` -- is computed
    exclusively from the :meth:`FastEngine.csr_planes` buffers plus the
    public ``interned_items()`` label map, i.e. from exactly the memory a
    compiled (Rust/Cython/C) kernel would receive.  Running it through the
    replay harnesses therefore machine-checks that the frozen plane layout
    *alone* carries enough information to reproduce the template engine's
    outputs -- the recipe an actual FFI backend follows, per
    ``RecomputeReferenceEngine`` in ``test_batch_differential.py``.

    Exact float priority ties are resolved through the host-side full keys
    (``priorities.key``), the same escape hatch the worker kernels and the
    mirror kernels use -- an FFI backend must keep that discipline.
    """

    def __init__(self, priorities=None, initial_graph=None) -> None:
        self._inner = FastEngine(
            priorities=priorities, initial_graph=initial_graph, csr=True
        )
        if self._inner.csr_mirror is None:  # pragma: no cover - numpy gate
            raise RuntimeError("PlaneReaderEngine needs numpy")

    # -- delegated topology changes (report source) ---------------------
    def insert_edge(self, u, v):
        return self._inner.insert_edge(u, v)

    def delete_edge(self, u, v):
        return self._inner.delete_edge(u, v)

    def insert_node(self, node, neighbors=()):
        return self._inner.insert_node(node, neighbors)

    def delete_node(self, node):
        return self._inner.delete_node(node)

    def apply_batch(self, changes: Sequence) -> BatchUpdateReport:
        return self._inner.apply_batch(changes)

    @property
    def graph(self):
        return self._inner.graph

    @property
    def priorities(self):
        return self._inner.priorities

    def restore(self, snapshot: EngineSnapshot) -> None:
        self._inner.restore(snapshot)

    # -- read views decoded from the frozen planes ----------------------
    def _decoded(self):
        planes = self._inner.csr_planes()
        label_of = {nid: label for label, nid in self._inner.interned_items()}
        return planes, label_of

    def mis(self) -> Set[Node]:
        planes, label_of = self._decoded()
        state = planes["state"]
        return {label for nid, label in label_of.items() if state[nid]}

    def states(self) -> Dict[Node, bool]:
        planes, label_of = self._decoded()
        state = planes["state"]
        return {label: bool(state[nid]) for nid, label in label_of.items()}

    def in_mis(self, node) -> bool:
        return self.states()[node]

    def _earlier_by_planes(self, planes, label_of, a: int, b: int) -> bool:
        pa, pb = planes["prio"][a], planes["prio"][b]
        if pa != pb:
            return bool(pa < pb)
        key = self.priorities.key
        return key(label_of[a]) < key(label_of[b])

    def clustering(self) -> Dict[Node, Node]:
        planes, label_of = self._decoded()
        starts, lengths = planes["starts"], planes["lengths"]
        indices, state = planes["indices"], planes["state"]
        centers: Dict[Node, Node] = {}
        for nid, label in label_of.items():
            if state[nid]:
                centers[label] = label
                continue
            best = -1
            for pos in range(int(starts[nid]), int(starts[nid]) + int(lengths[nid])):
                m = int(indices[pos])
                if state[m] and (
                    best < 0 or self._earlier_by_planes(planes, label_of, m, best)
                ):
                    best = m
            centers[label] = label_of[best] if best >= 0 else None
        return centers

    def verify(self) -> None:
        """Re-check the MIS invariant at every live id, from the planes."""
        self._inner.verify()
        planes, label_of = self._decoded()
        starts, lengths = planes["starts"], planes["lengths"]
        indices, state = planes["indices"], planes["state"]
        for nid, label in label_of.items():
            blocked = False
            for pos in range(int(starts[nid]), int(starts[nid]) + int(lengths[nid])):
                m = int(indices[pos])
                if state[m] and self._earlier_by_planes(planes, label_of, m, nid):
                    blocked = True
                    break
            if bool(state[nid]) == blocked:
                raise AssertionError(
                    f"plane-decoded invariant violated at {label!r}"
                )


@pytest.fixture
def plane_backend():
    if fast_engine._np is None:
        pytest.skip("numpy not available")
    name = "plane-reader-test"
    unregister_engine(name)
    register_engine(name, PlaneReaderEngine)
    yield name
    unregister_engine(name)


def test_ffi_slot_backend_passes_replay_differential(plane_backend) -> None:
    graph, changes = conformance_workload(41, num_changes=40, start_nodes=16)
    result = replay_differential(
        graph, changes, seed=41, engines=("template", plane_backend)
    )
    assert result.engines == ("template", "plane-reader-test")


def test_ffi_slot_backend_passes_batched_replay(
    plane_backend, monkeypatch: pytest.MonkeyPatch
) -> None:
    _force_csr_on(monkeypatch)  # decode pressure on the vectorized wave too
    graph, changes = conformance_workload(42, num_changes=30, start_nodes=14)
    replay_batch_differential(
        graph, changes, seed=42, engines=("template", plane_backend), max_batch=8
    )


def test_plane_layout_is_frozen() -> None:
    """Pin the FFI contract: names, dtypes, and slab geometry invariants."""
    np = pytest.importorskip("numpy")
    from repro.workloads.changes import EdgeInsertion, NodeInsertion

    maintainer = DynamicMIS(seed=7, engine="fast-csr")
    engine = maintainer.engine
    for label in "abcdef":
        maintainer.apply(NodeInsertion(label, ()))
    maintainer.apply(EdgeInsertion("a", "b"))
    maintainer.apply(EdgeInsertion("b", "c"))
    planes = engine.csr_planes()
    assert set(planes) == {"starts", "lengths", "caps", "indices", "prio", "state"}
    for name in ("starts", "lengths", "caps", "indices"):
        assert planes[name].dtype == np.int64, name
        assert planes[name].itemsize == 8
    assert planes["prio"].dtype == np.float64 and planes["prio"].itemsize == 8
    assert planes["state"].dtype == np.uint8 and planes["state"].itemsize == 1
    capacity = engine.capacity()
    for name in ("starts", "lengths", "caps", "prio", "state"):
        assert len(planes[name]) == capacity, name
    assert bool((planes["caps"] >= planes["lengths"]).all())
    # Row decode: id slices reproduce the (id-translated) neighbor sets.
    id_of = dict(engine.interned_items())
    row_b = planes["indices"][
        planes["starts"][id_of["b"]] : planes["starts"][id_of["b"]]
        + planes["lengths"][id_of["b"]]
    ]
    assert set(row_b.tolist()) == {id_of["a"], id_of["c"]}
    # Rebuilds bump the generation counter (FFI consumers re-fetch pointers).
    generation = engine.csr_mirror.generation
    engine.csr_mirror.invalidate()
    engine.csr_planes()
    assert engine.csr_mirror.generation == generation + 1
