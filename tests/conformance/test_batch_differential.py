"""Batched differential conformance: fast-engine batches must equal template batches.

The fast engine's native :meth:`~repro.core.fast_engine.FastEngine.apply_batch`
(flat-array graph deltas + one vectorized repair wave) re-implements the
batched Section 6 extension from scratch, so -- exactly like the single-change
path -- it is only acceptable if it is report-for-report identical to the
template's batch apply.  :func:`repro.testing.differential.replay_batch_differential`
checks per batch: every cost counter of
:data:`~repro.core.engine_api.BATCH_REPORT_FIELDS`, influenced-set and
seed-node membership, MIS sets, clustering views, and (via engine
``snapshot()``/``restore()``) that batched application agrees with
one-at-a-time application of the same changes.

The file also registers a toy third backend -- a recompute-based
``RecomputeReferenceEngine`` -- through the *public* registry alone and runs
it through both replay harnesses, demonstrating (and pinning down) that new
backends need zero edits to ``dynamic_mis.py`` or any other core module.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Set

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSnapshot,
    MISEngine,
    register_engine,
    unregister_engine,
)
from repro.core.greedy import greedy_mis_states
from repro.core.rng import spawn_seeds
from repro.core.template import TemplateEngine
from repro.graph.generators import disjoint_paths_graph, star_graph
from repro.testing.differential import (
    ConformanceMismatch,
    conformance_workload,
    replay_batch_differential,
    split_into_batches,
)
from repro.workloads.sequences import edge_churn_sequence, node_churn_sequence

Node = Hashable

MASTER_SEED = 20260730
# >= 25 seeds in tier-1: the acceptance bar for the native fast batch path.
BATCH_SUITE_SEEDS = spawn_seeds(MASTER_SEED, 25)


# ----------------------------------------------------------------------
# Tier-1: template vs fast over 25 seeded batched sequences
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", BATCH_SUITE_SEEDS)
def test_batched_replay_template_vs_fast(seed: int) -> None:
    graph, changes = conformance_workload(seed, num_changes=40, start_nodes=18)
    result = replay_batch_differential(graph, changes, seed=seed, max_batch=8)
    assert result.num_changes == 40
    assert result.engines == ("template", "fast")


def test_batched_replay_pure_edge_churn() -> None:
    graph = star_graph(8)
    changes = edge_churn_sequence(graph, 60, seed=3)
    replay_batch_differential(graph, changes, seed=3, max_batch=12)


def test_batched_replay_node_churn_reuses_labels() -> None:
    graph = star_graph(6)
    changes = node_churn_sequence(graph, 60, seed=4, insert_probability=0.5)
    replay_batch_differential(graph, changes, seed=4, max_batch=6)


def test_split_into_batches_partitions_the_sequence() -> None:
    graph, changes = conformance_workload(7, num_changes=30, start_nodes=12)
    batches = split_into_batches(changes, seed=7, max_batch=5)
    flattened = [change for batch in batches for change in batch]
    assert flattened == list(changes)
    assert all(1 <= len(batch) <= 5 for batch in batches)


def _counting_frontier(monkeypatch: pytest.MonkeyPatch):
    """Wrap the fast engine's vectorized frontier with a call counter."""
    from repro.core.fast_engine import FastEngine

    calls = {"count": 0}
    original = FastEngine._batch_frontier

    def counted(self, flipped_arr, prio_np):
        calls["count"] += 1
        return original(self, flipped_arr, prio_np)

    monkeypatch.setattr(FastEngine, "_batch_frontier", counted)
    return calls


def test_batched_replay_forced_through_vectorized_frontier(
    monkeypatch: pytest.MonkeyPatch,
) -> None:
    """Full batched replay with the numpy-mask frontier forced on every level.

    The production threshold only engages the vectorized path on levels with
    >= 64 flips, which conformance-scale workloads never reach; dropping the
    threshold to 1 sends *every* level through `_batch_frontier`, so the
    whole replay (counters, influenced sets, MIS, clustering) machine-checks
    the vectorized path against the template.
    """
    from repro.core import fast_engine

    if fast_engine._np is None:
        pytest.skip("numpy not available")
    monkeypatch.setattr(fast_engine, "_VECTOR_LEVEL_THRESHOLD", 1)
    calls = _counting_frontier(monkeypatch)
    graph, changes = conformance_workload(77, num_changes=60, start_nodes=20)
    replay_batch_differential(graph, changes, seed=77, max_batch=8)
    assert calls["count"] > 0, "the vectorized frontier never ran"


def test_natural_large_wave_uses_vectorized_frontier(
    monkeypatch: pytest.MonkeyPatch,
) -> None:
    """A 100-flip repair level crosses the threshold organically.

    100 isolated nodes are all in the MIS; inserting a node adjacent to all
    of them under a seed where the newcomer is *earliest* makes it join and
    evicts every neighbor in one level -- well above the 64-flip threshold.
    """
    from repro.core import fast_engine
    from repro.core.priorities import RandomPriorityAssigner
    from repro.graph.dynamic_graph import DynamicGraph
    from repro.workloads.changes import NodeInsertion

    leaves = list(range(100))
    found = None
    for seed in range(2000):
        assigner = RandomPriorityAssigner(seed)
        newcomer_key = assigner.assign("x")
        if all(newcomer_key < assigner.assign(leaf) for leaf in leaves):
            found = seed
            break
    assert found is not None, "no seed makes 'x' earliest; widen the search"

    graph = DynamicGraph(nodes=leaves)
    batch = [NodeInsertion("x", tuple(leaves))]
    template = DynamicMIS(seed=found, initial_graph=graph, engine="template")
    fast = DynamicMIS(seed=found, initial_graph=graph, engine="fast")
    calls = _counting_frontier(monkeypatch)
    report_t = template.apply_batch(batch)
    report_f = fast.apply_batch(batch)
    if fast_engine._np is not None:
        assert calls["count"] > 0, "100-flip level should vectorize"
    # x joins the MIS and evicts all 100 leaves, in both engines.
    assert template.mis() == fast.mis() == {"x"}
    assert report_t.num_adjustments == report_f.num_adjustments == 101
    assert report_t.num_levels == report_f.num_levels == 2
    assert report_t.influenced_set == report_f.influenced_set
    assert report_t.update_work == report_f.update_work
    template.verify()
    fast.verify()


def test_batched_harness_detects_a_lying_engine(monkeypatch: pytest.MonkeyPatch) -> None:
    """The batched harness must catch divergence, not vacuously pass."""
    from repro.core.fast_engine import FastEngine

    graph, changes = conformance_workload(99, num_changes=24, start_nodes=14)
    honest = FastEngine.apply_batch

    def lying_apply_batch(self, batch):
        report = honest(self, batch)
        report.num_adjustments += 1
        return report

    monkeypatch.setattr(FastEngine, "apply_batch", lying_apply_batch)
    with pytest.raises(ConformanceMismatch):
        replay_batch_differential(graph, changes, seed=99)


# ----------------------------------------------------------------------
# A toy third backend through the public registry (zero core edits)
# ----------------------------------------------------------------------
class RecomputeReferenceEngine(MISEngine):
    """Recompute-based backend: reports from the shared template machinery,
    read views from a from-scratch greedy recompute on every query.

    The point is differential: if the incremental maintenance of the inner
    template ever diverged from the from-scratch greedy MIS of the current
    graph, this backend's ``mis()``/``states()``/``clustering()`` would
    disagree with the template column of the replay and the harness would
    flag it.  It exists only in this test module and reaches the maintainers
    purely through :func:`repro.core.engine_api.register_engine`.
    """

    def __init__(self, priorities=None, initial_graph=None) -> None:
        self._inner = TemplateEngine(priorities=priorities, initial_graph=initial_graph)

    # -- delegated topology changes (report source) ---------------------
    def insert_edge(self, u, v):
        return self._inner.insert_edge(u, v)

    def delete_edge(self, u, v):
        return self._inner.delete_edge(u, v)

    def insert_node(self, node, neighbors=()):
        return self._inner.insert_node(node, neighbors)

    def delete_node(self, node):
        return self._inner.delete_node(node)

    def apply_batch(self, changes: Sequence) -> BatchUpdateReport:
        return self._inner.apply_batch(changes)

    # -- recomputed read views ------------------------------------------
    @property
    def graph(self):
        return self._inner.graph

    @property
    def priorities(self):
        return self._inner.priorities

    def _recomputed(self) -> Dict[Node, bool]:
        return greedy_mis_states(self.graph, self.priorities)

    def mis(self) -> Set[Node]:
        return {node for node, in_mis in self._recomputed().items() if in_mis}

    def states(self) -> Dict[Node, bool]:
        return self._recomputed()

    def in_mis(self, node) -> bool:
        return self._recomputed()[node]

    def clustering(self) -> Dict[Node, Node]:
        states = self._recomputed()
        centers: Dict[Node, Node] = {}
        for node in self.graph.nodes():
            if states[node]:
                centers[node] = node
            else:
                centers[node] = self.priorities.earliest(
                    other for other in self.graph.iter_neighbors(node) if states[other]
                )
        return centers

    def verify(self) -> None:
        self._inner.verify()

    def restore(self, snapshot: EngineSnapshot) -> None:
        self._inner.restore(snapshot)


@pytest.fixture
def recompute_backend():
    name = "recompute-test"
    unregister_engine(name)
    register_engine(name, RecomputeReferenceEngine)
    yield name
    unregister_engine(name)


def test_third_backend_passes_replay_differential(recompute_backend) -> None:
    """Acceptance: a registered toy backend passes the single-change replay."""
    from repro.testing.differential import replay_differential

    graph, changes = conformance_workload(31, num_changes=40, start_nodes=16)
    result = replay_differential(
        graph, changes, seed=31, engines=("template", recompute_backend, "fast")
    )
    assert result.engines == ("template", "recompute-test", "fast")


def test_third_backend_passes_batched_replay(recompute_backend) -> None:
    graph, changes = conformance_workload(32, num_changes=30, start_nodes=14)
    replay_batch_differential(
        graph, changes, seed=32, engines=("template", recompute_backend)
    )


def test_third_backend_selectable_via_cli_choices(recompute_backend) -> None:
    """The CLI sources --engine choices live from the registry."""
    from repro.cli import build_parser

    arguments = build_parser().parse_args(
        ["churn", "--nodes", "8", "--changes", "5", "--engine", recompute_backend]
    )
    assert arguments.engine == recompute_backend


# ----------------------------------------------------------------------
# Full suite (scheduled; --run-conformance)
# ----------------------------------------------------------------------
@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 1, 50))
def test_full_batched_conformance(seed: int) -> None:
    """50 seeded batched sequences x 150 changes, adversarial bursts included."""
    graph, changes = conformance_workload(seed, num_changes=150, start_nodes=26)
    result = replay_batch_differential(graph, changes, seed=seed, max_batch=12)
    assert result.num_changes == 150


@pytest.mark.conformance
@pytest.mark.parametrize("seed", spawn_seeds(MASTER_SEED + 2, 10))
def test_full_batched_conformance_dense(seed: int) -> None:
    graph, changes = conformance_workload(
        seed, num_changes=120, start_nodes=22, edge_probability=0.3, burst_length=10
    )
    replay_batch_differential(graph, changes, seed=seed, max_batch=10)


@pytest.mark.conformance
def test_batched_teardown_to_empty() -> None:
    target = disjoint_paths_graph(5, edges_per_path=3)
    from repro.workloads.sequences import build_sequence, teardown_sequence

    changes = build_sequence(target, seed=5) + teardown_sequence(target, seed=6)
    result = replay_batch_differential(None, changes, seed=11, max_batch=7)
    assert result.final_num_nodes == 0
