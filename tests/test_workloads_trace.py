"""Tests for workload/graph serialization (trace recording and replay)."""

from __future__ import annotations

import json

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)
from repro.workloads.sequences import mixed_churn_sequence
from repro.workloads.trace import (
    TraceFormatError,
    decode_change,
    decode_graph,
    decode_node,
    decode_trace,
    encode_change,
    encode_graph,
    encode_node,
    encode_trace,
    load_trace,
    save_trace,
)


class TestNodeEncoding:
    @pytest.mark.parametrize("node", [0, 17, "sensor3", 2.5, ("a", 1), ((0, 1), 2)])
    def test_round_trip(self, node):
        assert decode_node(encode_node(node)) == node

    def test_encoded_nodes_are_json_compatible(self):
        json.dumps(encode_node(((1, 2), "x")))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_node(object())

    def test_bad_encodings_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_node([1, 2])
        with pytest.raises(TraceFormatError):
            decode_node({"wrong": []})


class TestChangeEncoding:
    @pytest.mark.parametrize(
        "change",
        [
            EdgeInsertion(1, 2),
            EdgeDeletion("a", "b", graceful=False),
            NodeInsertion("x", (1, 2)),
            NodeUnmuting("ghost", ()),
            NodeDeletion((0, 1), graceful=True),
        ],
    )
    def test_round_trip(self, change):
        assert decode_change(encode_change(change)) == change

    def test_encoded_changes_are_json_compatible(self, small_random_graph):
        for change in mixed_churn_sequence(small_random_graph, 30, seed=1):
            json.dumps(encode_change(change))

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_change({"kind": "teleportation"})
        with pytest.raises(TraceFormatError):
            decode_change({"not_a_kind": 1})

    def test_unknown_change_object_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_change("not a change")


class TestGraphEncoding:
    def test_round_trip(self, small_random_graph):
        assert decode_graph(encode_graph(small_random_graph)) == small_random_graph

    def test_round_trip_with_tuple_nodes(self):
        graph = DynamicGraph(nodes=[(0, 1), (1, 2)], edges=[((0, 1), (1, 2))])
        assert decode_graph(encode_graph(graph)) == graph

    def test_malformed_graph_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_graph({"nodes": [1]})


class TestTraceRoundTrip:
    def test_encode_decode(self, small_random_graph):
        changes = mixed_churn_sequence(small_random_graph, 25, seed=2)
        record = encode_trace(changes, small_random_graph, metadata={"seed": 2})
        decoded = decode_trace(record)
        assert decoded["changes"] == changes
        assert decoded["initial_graph"] == small_random_graph
        assert decoded["metadata"] == {"seed": 2}

    def test_trace_without_graph(self):
        record = encode_trace([NodeInsertion("a")])
        decoded = decode_trace(record)
        assert decoded["initial_graph"] is None
        assert decoded["metadata"] == {}

    def test_wrong_format_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_trace({"format": "something-else"})
        with pytest.raises(TraceFormatError):
            decode_trace("not a dict")

    def test_save_and_load_file(self, tmp_path, small_random_graph):
        changes = mixed_churn_sequence(small_random_graph, 20, seed=3)
        path = tmp_path / "trace.json"
        save_trace(path, changes, small_random_graph, metadata={"purpose": "test"})
        loaded = load_trace(path)
        assert loaded["changes"] == changes
        assert loaded["initial_graph"] == small_random_graph
        assert loaded["metadata"]["purpose"] == "test"

    def test_replaying_a_saved_trace_reproduces_the_run(self, tmp_path, small_random_graph):
        changes = mixed_churn_sequence(small_random_graph, 40, seed=4)
        path = tmp_path / "workload.json"
        save_trace(path, changes, small_random_graph)

        original = DynamicMIS(seed=9, initial_graph=small_random_graph)
        original.apply_sequence(changes)

        loaded = load_trace(path)
        replayed = DynamicMIS(seed=9, initial_graph=loaded["initial_graph"])
        replayed.apply_sequence(loaded["changes"])

        assert replayed.mis() == original.mis()
        assert replayed.graph == original.graph
