"""Unit tests for the adversarial sequence constructions."""

from __future__ import annotations

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.adversary import (
    AdaptiveAdversary,
    adaptive_mis_deletion_adversary,
    bipartite_lower_bound_instance,
    lower_bound_sequence_for,
    side_deletion_sequence,
    star_construction_history,
    three_paths_construction_history,
)
from repro.workloads.changes import NodeDeletion
from repro.workloads.sequences import replay_on_graph


class TestLowerBoundInstance:
    def test_instance_structure(self):
        graph, left, right = bipartite_lower_bound_instance(5)
        assert graph.num_nodes() == 10
        assert graph.num_edges() == 25
        assert len(left) == len(right) == 5
        assert not set(left) & set(right)

    def test_side_deletion_sequence(self):
        sequence = side_deletion_sequence([3, 1, 2], graceful=False)
        assert [change.node for change in sequence] == [3, 1, 2]
        assert all(isinstance(change, NodeDeletion) for change in sequence)
        assert all(not change.graceful for change in sequence)

    def test_lower_bound_targets_the_mis_side(self):
        graph, left, right = bipartite_lower_bound_instance(4)
        sequence = lower_bound_sequence_for(set(left), left, right)
        assert [change.node for change in sequence] == left
        sequence = lower_bound_sequence_for(set(right), left, right)
        assert [change.node for change in sequence] == right

    def test_lower_bound_rejects_foreign_mis(self):
        _, left, right = bipartite_lower_bound_instance(3)
        with pytest.raises(ValueError):
            lower_bound_sequence_for({"zzz"}, left, right)


class TestExampleHistories:
    def test_star_history_builds_star(self):
        history = star_construction_history(7, seed=2)
        graph = replay_on_graph(DynamicGraph(), history)
        assert graph.num_nodes() == 8
        assert graph.degree(0) == 7

    def test_three_paths_history_builds_paths(self):
        history = three_paths_construction_history(4, seed=3)
        graph = replay_on_graph(DynamicGraph(), history)
        assert graph.num_nodes() == 16
        assert graph.num_edges() == 12
        assert len(graph.connected_components()) == 4


class TestAdaptiveAdversary:
    def test_adversary_always_deletes_mis_nodes(self, small_random_graph):
        maintainer = DynamicMIS(seed=5, initial_graph=small_random_graph)
        adversary = adaptive_mis_deletion_adversary(maintainer.mis, num_deletions=8, rng_seed=1)
        assert isinstance(adversary, AdaptiveAdversary)
        deletions = 0
        for change in adversary:
            assert change.node in maintainer.mis()
            report = maintainer.apply(change)
            # Deleting an MIS node is exactly the case that forces work.
            assert report.influenced_size >= 1
            deletions += 1
        assert deletions == 8

    def test_adversary_stops_when_mis_is_empty(self):
        maintainer = DynamicMIS(seed=1)
        maintainer.insert_node("only")
        adversary = adaptive_mis_deletion_adversary(maintainer.mis, num_deletions=5, rng_seed=2)
        changes = []
        for change in adversary:
            changes.append(change)
            maintainer.apply(change)
        assert len(changes) == 1
