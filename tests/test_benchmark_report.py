"""Unit tests for the benchmark trajectory report (``benchmarks/report.py``).

The report script lives outside the package (benchmarks are not shipped), so
it is loaded by path here.  The tests pin down the metric classification
(timings lower-is-better, speedups higher-is-better), the positional pairing
of series entries, and the pass/fail decision around the threshold.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"

spec = importlib.util.spec_from_file_location("benchmark_report", REPORT_PATH)
report = importlib.util.module_from_spec(spec)
sys.modules["benchmark_report"] = report  # dataclasses resolve annotations here
spec.loader.exec_module(report)


def document(series):
    return {"benchmark": "demo", "created_unix": 1, "results": {"series": series}}


def test_iter_metrics_tracks_timings_and_speedups_only():
    doc = {
        "per_change_us": 5.0,
        "total_s": 1.25,
        "speedup": 10.0,
        "final_mis_size": 137,  # informational -> ignored
        "master_seed": 42,  # informational -> ignored
        "created_unix": 1785298585,  # not a timing despite being a number
    }
    metrics = {path: (key, value) for path, key, value in report.iter_metrics(doc)}
    assert set(metrics) == {"per_change_us", "total_s", "speedup"}


def test_timing_regression_is_positive_and_speedup_gain_is_negative():
    baseline = document([{"n": 500, "fast_per_batch_us": 100.0, "speedup": 10.0}])
    current = document([{"n": 500, "fast_per_batch_us": 150.0, "speedup": 20.0}])
    deltas = {d.path: d for d in report.compare_documents("demo", current, baseline)}
    assert deltas["series[0].fast_per_batch_us"].relative_regression == pytest.approx(0.5)
    assert deltas["series[0].speedup"].relative_regression == pytest.approx(-1.0)


def test_speedup_drop_counts_as_regression():
    baseline = document([{"speedup": 10.0}])
    current = document([{"speedup": 6.0}])
    (delta,) = report.compare_documents("demo", current, baseline)
    assert delta.higher_is_better
    assert delta.relative_regression == pytest.approx(0.4)


def test_run_report_fails_on_large_regression(tmp_path, monkeypatch):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "demo.json").write_text(
        json.dumps(document([{"per_batch_us": 200.0}]))
    )
    monkeypatch.setattr(
        report, "load_baseline", lambda path, ref: document([{"per_batch_us": 100.0}])
    )
    monkeypatch.setattr(report, "baseline_ref_exists", lambda ref: True)
    monkeypatch.setattr(report, "REPO_ROOT", tmp_path)
    assert report.run_report(results_dir=results_dir, threshold=0.30) == 1
    # A generous threshold tolerates the same delta.
    assert report.run_report(results_dir=results_dir, threshold=2.0) == 0


def test_run_report_tolerates_missing_baseline(tmp_path, monkeypatch):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "fresh.json").write_text(json.dumps(document([{"per_batch_us": 1.0}])))
    monkeypatch.setattr(report, "load_baseline", lambda path, ref: None)
    monkeypatch.setattr(report, "baseline_ref_exists", lambda ref: True)
    monkeypatch.setattr(report, "REPO_ROOT", tmp_path)
    assert report.run_report(results_dir=results_dir) == 0


def test_run_report_skips_cleanly_without_the_baseline_ref(tmp_path, monkeypatch, capsys):
    """First-commit / shallow checkouts must degrade to a skip, not a failure.

    An empty ``git init`` repository has no ``HEAD`` commit, which is exactly
    the state of a brand-new project (or a shallow CI checkout that did not
    fetch the baseline ref): the report must explain and exit 0.
    """
    import subprocess

    subprocess.run(["git", "init", "--quiet", str(tmp_path)], check=True)
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "demo.json").write_text(json.dumps(document([{"per_batch_us": 1.0}])))
    monkeypatch.setattr(report, "REPO_ROOT", tmp_path)
    assert report.run_report(against="HEAD", results_dir=results_dir) == 0
    assert "skipping the trajectory comparison" in capsys.readouterr().out


def test_run_report_skips_cleanly_when_git_is_unavailable(tmp_path, monkeypatch, capsys):
    def no_git(*args, **kwargs):
        raise FileNotFoundError("git not installed")

    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "demo.json").write_text(json.dumps(document([{"per_batch_us": 1.0}])))
    monkeypatch.setattr(report.subprocess, "run", no_git)
    assert report.run_report(against="HEAD", results_dir=results_dir) == 0
    assert "skipping the trajectory comparison" in capsys.readouterr().out


def test_baseline_ref_exists_distinguishes_real_and_missing_refs():
    assert report.baseline_ref_exists("HEAD")
    assert not report.baseline_ref_exists("no-such-ref-anywhere")


def test_report_runs_against_the_real_repository():
    """End-to-end: the script exits 0 or 1 against the actual git history."""
    assert report.run_report(against="HEAD") in (0, 1)
