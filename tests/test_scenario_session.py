"""Tests for the streaming :class:`~repro.scenario.session.Session` runner.

The load-bearing guarantee here is the checkpoint/resume differential: a
session interrupted at *any* point and resumed in a fresh process-state must
land on exactly the outputs and statistics of an uninterrupted run, on every
engine backend and even when resuming on a *different* backend (the
snapshot is label-level).  The rest pins down the runner surface: sequential
vs protocol sessions, batched application, observers/sinks and the
``spec x backend`` grid helper.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.scenario import (
    BackendSpec,
    CallbackSink,
    CheckpointUnsupportedError,
    GraphSpec,
    JsonlSink,
    ScenarioSpec,
    Session,
    SummarySink,
    WorkloadSpec,
    run_scenario,
    run_scenario_grid,
)


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="session-test",
        seed=5,
        graph=GraphSpec(family="erdos_renyi", nodes=18, seed=1),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=40, seed=2),
        backend=BackendSpec(runner="sequential", engine="template"),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSequentialSession:
    def test_matches_a_hand_driven_maintainer(self):
        spec = small_spec()
        session = Session(spec)
        result = session.run()

        graph, changes = spec.materialize()
        maintainer = DynamicMIS(seed=spec.seed, initial_graph=graph, engine="template")
        maintainer.apply_sequence(changes)
        assert session.states() == maintainer.states()
        assert session.mis() == maintainer.mis()
        assert (
            session.maintainer.statistics.adjustments == maintainer.statistics.adjustments
        )
        assert result.num_changes == len(changes)
        assert result.verified
        assert result.final_mis_size == len(maintainer.mis())

    def test_streaming_iteration_yields_one_record_per_change(self):
        session = Session(small_spec())
        records = list(session)
        assert len(records) == session.num_changes
        assert session.done
        assert session.step() is None

    def test_batched_session_matches_manual_batches(self):
        spec = small_spec(batch_size=7)
        session = Session(spec)
        session.run()

        graph, changes = spec.materialize()
        maintainer = DynamicMIS(seed=spec.seed, initial_graph=graph, engine="template")
        for start in range(0, len(changes), 7):
            maintainer.apply_batch(changes[start : start + 7])
        assert session.states() == maintainer.states()
        assert (
            session.maintainer.statistics.batch_sizes == maintainer.statistics.batch_sizes
        )

    def test_result_per_change_us_is_consistent(self):
        result = run_scenario(small_spec())
        assert result.per_change_us == pytest.approx(
            result.elapsed_s / result.num_changes * 1e6
        )
        document = result.to_dict()
        assert document["num_changes"] == result.num_changes
        json.dumps(document)  # JSON-ready


class TestProtocolSession:
    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_runs_and_verifies(self, network):
        spec = small_spec(
            backend=BackendSpec(
                runner="protocol", protocol="buffered", network=network, engine="fast"
            )
        )
        result = run_scenario(spec)
        assert result.runner == "protocol"
        assert result.num_changes == 40
        assert "mean_broadcasts" in result.summary

    def test_networks_agree_on_the_same_scenario(self):
        spec = small_spec(
            backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast")
        )
        sessions = []
        for network in ("dict", "fast"):
            session = Session(spec.with_backend(network=network))
            session.run()
            sessions.append(session)
        assert sessions[0].states() == sessions[1].states()

    def test_checkpoint_unsupported(self):
        session = Session(
            small_spec(backend=BackendSpec(runner="protocol", protocol="buffered"))
        )
        with pytest.raises(CheckpointUnsupportedError, match="protocol sessions"):
            session.checkpoint()


class TestCheckpointResume:
    @pytest.mark.parametrize("engine", ["template", "fast"])
    @pytest.mark.parametrize("stop_at", [0, 1, 13, 39, 40])
    def test_resumed_run_equals_uninterrupted_run(self, engine, stop_at):
        spec = small_spec(backend=BackendSpec(runner="sequential", engine=engine))
        uninterrupted = Session(spec)
        full_result = uninterrupted.run()

        interrupted = Session(spec)
        for _ in range(stop_at):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.position == stop_at
        assert checkpoint.remaining_changes == 40 - stop_at
        del interrupted  # the resumed session rebuilds everything from the checkpoint

        resumed = Session.resume(checkpoint)
        resumed_result = resumed.run()

        assert resumed.states() == uninterrupted.states()
        assert resumed.mis() == uninterrupted.mis()
        stats, full_stats = resumed.maintainer.statistics, uninterrupted.maintainer.statistics
        assert stats.adjustments == full_stats.adjustments
        assert stats.influenced_sizes == full_stats.influenced_sizes
        assert stats.change_kinds == full_stats.change_kinds
        assert resumed_result.summary == full_result.summary
        assert resumed_result.final_mis_size == full_result.final_mis_size
        assert resumed_result.num_changes == full_result.num_changes

    def test_cross_engine_resume(self):
        # The snapshot is label-level, so a checkpoint taken on the template
        # engine resumes on the fast engine with identical outputs.
        spec = small_spec(backend=BackendSpec(runner="sequential", engine="template"))
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(17):
            interrupted.step()
        resumed = Session.resume(interrupted.checkpoint(), engine="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert (
            resumed.maintainer.statistics.adjustments
            == reference.maintainer.statistics.adjustments
        )

    def test_cross_engine_resume_updates_the_spec(self):
        # The engine override is folded into the resumed session's spec, so
        # results attribute the right backend and a chained checkpoint/resume
        # stays on the overridden engine.
        spec = small_spec(backend=BackendSpec(runner="sequential", engine="template"))
        reference = Session(spec)
        reference.run()

        first = Session(spec)
        for _ in range(10):
            first.step()
        second = Session.resume(first.checkpoint(), engine="fast")
        assert second.spec.backend.engine == "fast"
        for _ in range(10):
            second.step()
        chained = Session.resume(second.checkpoint())
        assert chained.spec.backend.engine == "fast"
        result = chained.run()
        assert result.backend == "engine=fast"
        assert chained.states() == reference.states()

    def test_jsonl_sink_survives_a_resume(self, tmp_path):
        path = tmp_path / "resumed.jsonl"
        spec = small_spec(sinks=(f"jsonl:{path}",))
        session = Session(spec)
        for _ in range(15):
            session.step()
        checkpoint = session.checkpoint()
        del session
        Session.resume(checkpoint).run()
        # The resumed session appends: all 40 per-change lines survive.
        assert len(path.read_text().splitlines()) == 40

    def test_batched_checkpoint_resume(self):
        spec = small_spec(batch_size=6)
        uninterrupted = Session(spec)
        uninterrupted.run()

        interrupted = Session(spec)
        interrupted.step()
        interrupted.step()
        resumed = Session.resume(interrupted.checkpoint())
        resumed.run()
        assert resumed.states() == uninterrupted.states()
        assert (
            resumed.maintainer.statistics.batch_sizes
            == uninterrupted.maintainer.statistics.batch_sizes
        )


class TestObservers:
    def test_summary_sink_sees_every_change(self):
        sink = SummarySink()
        run_scenario(small_spec(), observers=(sink,))
        assert sink.num_changes == 40
        summary = sink.summary()
        assert summary["num_changes"] == 40
        assert "num_adjustments" in summary
        assert summary["num_adjustments"]["total"] >= 0

    def test_summary_sink_works_for_protocol_records(self):
        sink = SummarySink()
        run_scenario(
            small_spec(backend=BackendSpec(runner="protocol", protocol="buffered")),
            observers=(sink,),
        )
        assert "broadcasts" in sink.summary()

    def test_jsonl_sink_writes_one_line_per_change(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        run_scenario(small_spec(), observers=(JsonlSink(str(path)),))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 40
        assert all("change" in line and "num_adjustments" in line for line in lines)

    def test_spec_named_sinks_are_attached(self, tmp_path):
        path = tmp_path / "spec-sink.jsonl"
        spec = small_spec(sinks=("summary", f"jsonl:{path}"))
        run_scenario(spec)
        assert len(path.read_text().splitlines()) == 40

    def test_callback_sink_and_batch_hook(self):
        seen = []
        spec = small_spec(batch_size=10)
        run_scenario(spec, observers=(CallbackSink(lambda i, unit, r: seen.append(i)),))
        assert seen == [0, 1, 2, 3]  # 40 changes / batch_size 10


class TestGrid:
    def test_same_scenario_across_backends(self):
        results = run_scenario_grid(
            small_spec(),
            [("template", {"engine": "template"}), ("fast", {"engine": "fast"})],
        )
        assert [result.name for result in results] == [
            "session-test[template]",
            "session-test[fast]",
        ]
        # Identical workload + seed => identical outputs and costs.
        assert results[0].final_mis_size == results[1].final_mis_size
        assert results[0].summary == results[1].summary
