"""Tests for the streaming :class:`~repro.scenario.session.Session` runner.

The load-bearing guarantee here is the checkpoint/resume differential: a
session interrupted at *any* point and resumed in a fresh process-state must
land on exactly the outputs and statistics of an uninterrupted run, on every
engine backend *and* every network backend x protocol, even when resuming on
a *different* backend (both snapshot flavors are label-keyed) and across a
JSON checkpoint file.  The rest pins down the runner surface: sequential vs
protocol sessions, dynamic (adaptive-adversary) workloads, batched
application, observers/sinks and the ``spec x backend`` grid helper.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.scenario import (
    BackendSpec,
    CallbackSink,
    GraphSpec,
    JsonlSink,
    ScenarioSpec,
    Session,
    SummarySink,
    WorkloadSpec,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    run_scenario,
    run_scenario_grid,
    save_checkpoint,
)


def _metric_dicts(network):
    """A network's per-change records as comparable plain dicts."""
    return [
        dict(record.as_dict(), adjusted=sorted(record.adjusted_nodes, key=repr))
        for record in network.metrics.records
    ]


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="session-test",
        seed=5,
        graph=GraphSpec(family="erdos_renyi", nodes=18, seed=1),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=40, seed=2),
        backend=BackendSpec(runner="sequential", engine="template"),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSequentialSession:
    def test_matches_a_hand_driven_maintainer(self):
        spec = small_spec()
        session = Session(spec)
        result = session.run()

        graph, changes = spec.materialize()
        maintainer = DynamicMIS(seed=spec.seed, initial_graph=graph, engine="template")
        maintainer.apply_sequence(changes)
        assert session.states() == maintainer.states()
        assert session.mis() == maintainer.mis()
        assert (
            session.maintainer.statistics.adjustments == maintainer.statistics.adjustments
        )
        assert result.num_changes == len(changes)
        assert result.verified
        assert result.final_mis_size == len(maintainer.mis())

    def test_streaming_iteration_yields_one_record_per_change(self):
        session = Session(small_spec())
        records = list(session)
        assert len(records) == session.num_changes
        assert session.done
        assert session.step() is None

    def test_batched_session_matches_manual_batches(self):
        spec = small_spec(batch_size=7)
        session = Session(spec)
        session.run()

        graph, changes = spec.materialize()
        maintainer = DynamicMIS(seed=spec.seed, initial_graph=graph, engine="template")
        for start in range(0, len(changes), 7):
            maintainer.apply_batch(changes[start : start + 7])
        assert session.states() == maintainer.states()
        assert (
            session.maintainer.statistics.batch_sizes == maintainer.statistics.batch_sizes
        )

    def test_result_per_change_us_is_consistent(self):
        result = run_scenario(small_spec())
        assert result.per_change_us == pytest.approx(
            result.elapsed_s / result.num_changes * 1e6
        )
        document = result.to_dict()
        assert document["num_changes"] == result.num_changes
        json.dumps(document)  # JSON-ready


class TestProtocolSession:
    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_runs_and_verifies(self, network):
        spec = small_spec(
            backend=BackendSpec(
                runner="protocol", protocol="buffered", network=network, engine="fast"
            )
        )
        result = run_scenario(spec)
        assert result.runner == "protocol"
        assert result.num_changes == 40
        assert "mean_broadcasts" in result.summary

    def test_networks_agree_on_the_same_scenario(self):
        spec = small_spec(
            backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast")
        )
        sessions = []
        for network in ("dict", "fast"):
            session = Session(spec.with_backend(network=network))
            session.run()
            sessions.append(session)
        assert sessions[0].states() == sessions[1].states()

    def test_checkpoint_rejects_backends_without_the_pair(self):
        session = Session(
            small_spec(backend=BackendSpec(runner="protocol", protocol="buffered"))
        )
        session._network = object()  # a backend lacking snapshot/restore
        with pytest.raises(TypeError, match="snapshot/restore"):
            session.checkpoint()


class TestCheckpointResume:
    @pytest.mark.parametrize("engine", ["template", "fast"])
    @pytest.mark.parametrize("stop_at", [0, 1, 13, 39, 40])
    def test_resumed_run_equals_uninterrupted_run(self, engine, stop_at):
        spec = small_spec(backend=BackendSpec(runner="sequential", engine=engine))
        uninterrupted = Session(spec)
        full_result = uninterrupted.run()

        interrupted = Session(spec)
        for _ in range(stop_at):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.position == stop_at
        assert checkpoint.remaining_changes == 40 - stop_at
        del interrupted  # the resumed session rebuilds everything from the checkpoint

        resumed = Session.resume(checkpoint)
        resumed_result = resumed.run()

        assert resumed.states() == uninterrupted.states()
        assert resumed.mis() == uninterrupted.mis()
        stats, full_stats = resumed.maintainer.statistics, uninterrupted.maintainer.statistics
        assert stats.adjustments == full_stats.adjustments
        assert stats.influenced_sizes == full_stats.influenced_sizes
        assert stats.change_kinds == full_stats.change_kinds
        assert resumed_result.summary == full_result.summary
        assert resumed_result.final_mis_size == full_result.final_mis_size
        assert resumed_result.num_changes == full_result.num_changes

    def test_cross_engine_resume(self):
        # The snapshot is label-level, so a checkpoint taken on the template
        # engine resumes on the fast engine with identical outputs.
        spec = small_spec(backend=BackendSpec(runner="sequential", engine="template"))
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(17):
            interrupted.step()
        resumed = Session.resume(interrupted.checkpoint(), engine="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert (
            resumed.maintainer.statistics.adjustments
            == reference.maintainer.statistics.adjustments
        )

    def test_cross_engine_resume_updates_the_spec(self):
        # The engine override is folded into the resumed session's spec, so
        # results attribute the right backend and a chained checkpoint/resume
        # stays on the overridden engine.
        spec = small_spec(backend=BackendSpec(runner="sequential", engine="template"))
        reference = Session(spec)
        reference.run()

        first = Session(spec)
        for _ in range(10):
            first.step()
        second = Session.resume(first.checkpoint(), engine="fast")
        assert second.spec.backend.engine == "fast"
        for _ in range(10):
            second.step()
        chained = Session.resume(second.checkpoint())
        assert chained.spec.backend.engine == "fast"
        result = chained.run()
        assert result.backend == "engine=fast"
        assert chained.states() == reference.states()

    def test_jsonl_sink_survives_a_resume(self, tmp_path):
        path = tmp_path / "resumed.jsonl"
        spec = small_spec(sinks=(f"jsonl:{path}",))
        session = Session(spec)
        for _ in range(15):
            session.step()
        checkpoint = session.checkpoint()
        del session
        Session.resume(checkpoint).run()
        # The resumed session appends: all 40 per-change lines survive.
        assert len(path.read_text().splitlines()) == 40

    def test_batched_checkpoint_resume(self):
        spec = small_spec(batch_size=6)
        uninterrupted = Session(spec)
        uninterrupted.run()

        interrupted = Session(spec)
        interrupted.step()
        interrupted.step()
        resumed = Session.resume(interrupted.checkpoint())
        resumed.run()
        assert resumed.states() == uninterrupted.states()
        assert (
            resumed.maintainer.statistics.batch_sizes
            == uninterrupted.maintainer.statistics.batch_sizes
        )


class TestProtocolCheckpointResume:
    """Protocol sessions checkpoint via the knowledge-level NetworkSnapshot."""

    @pytest.mark.parametrize("network", ["dict", "fast"])
    @pytest.mark.parametrize("stop_at", [0, 1, 13, 40])
    def test_resumed_run_equals_uninterrupted_run(self, network, stop_at):
        spec = small_spec(
            backend=BackendSpec(
                runner="protocol", protocol="buffered", network=network, engine="fast"
            )
        )
        uninterrupted = Session(spec)
        full_result = uninterrupted.run()

        interrupted = Session(spec)
        for _ in range(stop_at):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.position == stop_at
        assert checkpoint.runner == "protocol"
        assert checkpoint.remaining_changes == 40 - stop_at
        assert checkpoint.statistics is None
        del interrupted

        resumed = Session.resume(checkpoint)
        resumed_result = resumed.run()
        assert resumed.states() == uninterrupted.states()
        assert _metric_dicts(resumed.network) == _metric_dicts(uninterrupted.network)
        assert resumed_result.summary == full_result.summary
        assert resumed_result.num_changes == full_result.num_changes

    @pytest.mark.parametrize("protocol", ["buffered", "direct"])
    def test_cross_network_resume(self, protocol):
        # The snapshot is label-keyed: a checkpoint taken on the dict core
        # resumes on the fast core with identical outputs and metrics.
        spec = small_spec(
            backend=BackendSpec(
                runner="protocol", protocol=protocol, network="dict", engine="fast"
            )
        )
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(17):
            interrupted.step()
        resumed = Session.resume(interrupted.checkpoint(), network="fast")
        assert resumed.spec.backend.network == "fast"
        result = resumed.run()
        assert resumed.states() == reference.states()
        assert _metric_dicts(resumed.network) == _metric_dicts(reference.network)
        assert "network=fast" in result.backend

    def test_async_resume_with_spec_scheduler_is_exact(self):
        # Exact async resume needs a channel-deterministic scheduler; the
        # spec's scheduler field pins one down, so the resumed session
        # rebuilds the identical delay adversary.
        spec = small_spec(
            backend=BackendSpec(
                runner="protocol",
                protocol="async-direct",
                network="dict",
                engine="fast",
                scheduler={"kind": "adversarial", "seed": 11},
            )
        )
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(19):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.snapshot.scheduler_cursor > 0
        resumed = Session.resume(checkpoint, network="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert _metric_dicts(resumed.network) == _metric_dicts(reference.network)

    def test_checkpoint_file_round_trip(self, tmp_path):
        spec = small_spec(
            backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast")
        )
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(23):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, checkpoint)
        del interrupted

        loaded = load_checkpoint(path)
        assert loaded.position == 23
        assert loaded.spec == spec
        resumed = Session.resume(loaded, network="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert _metric_dicts(resumed.network) == _metric_dicts(reference.network)

    def test_resumed_result_keeps_the_whole_run_clock(self):
        # The checkpoint carries the accumulated elapsed time, so a resumed
        # run's per_change_us averages over all changes, not just the tail.
        spec = small_spec(
            backend=BackendSpec(runner="protocol", protocol="buffered", engine="fast")
        )
        interrupted = Session(spec)
        for _ in range(30):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.elapsed_s == interrupted.elapsed_s > 0
        resumed = Session.resume(checkpoint)
        result = resumed.run()
        assert resumed.elapsed_s > checkpoint.elapsed_s
        assert result.per_change_us == pytest.approx(resumed.elapsed_s / 40 * 1e6)

    def test_checkpoint_without_a_spec_is_rejected(self):
        from repro.scenario import CheckpointFormatError

        spec = small_spec()
        session = Session(spec)
        session.step()
        record = checkpoint_to_dict(session.checkpoint())
        del record["spec"]
        with pytest.raises(CheckpointFormatError, match="missing 'spec'"):
            checkpoint_from_dict(record)

    def test_sequential_checkpoint_file_round_trip(self, tmp_path):
        spec = small_spec()
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(9):
            interrupted.step()
        record = checkpoint_to_dict(interrupted.checkpoint())
        json.dumps(record)  # JSON-ready
        resumed = Session.resume(checkpoint_from_dict(record), engine="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert (
            resumed.maintainer.statistics.adjustments
            == reference.maintainer.statistics.adjustments
        )


class TestDynamicWorkloads:
    """Adaptive-adversary and sliding-window scenarios through the session."""

    def adaptive_spec(self, **overrides) -> ScenarioSpec:
        defaults = dict(
            name="adaptive",
            seed=4,
            graph=GraphSpec(family="erdos_renyi", nodes=20, seed=2),
            workload=WorkloadSpec(kind="adaptive_adversary", num_changes=12, seed=3),
            backend=BackendSpec(runner="sequential", engine="template"),
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    @pytest.mark.parametrize("runner_overrides", [
        {},
        {"backend": BackendSpec(runner="protocol", protocol="buffered", engine="fast")},
    ])
    def test_adversary_always_deletes_a_current_mis_node(self, runner_overrides):
        spec = self.adaptive_spec(**runner_overrides)
        session = Session(spec)
        while not session.done:
            mis_before = session.mis()
            record = session.step()
            if record is None:
                break
            deleted = session.changes[-1].node
            assert deleted in mis_before
        assert session.position == 12
        session.verify()

    def test_materialize_rejects_adaptive_workloads(self):
        from repro.scenario import ScenarioSpecError

        with pytest.raises(ScenarioSpecError, match="live.*backend|Session"):
            self.adaptive_spec().materialize()

    def test_backends_generate_the_same_adaptive_stream(self):
        # Observably identical backends see identical MIS sets, so the
        # adaptive adversary generates the identical deletion stream.
        streams = {}
        for network in ("dict", "fast"):
            session = Session(
                self.adaptive_spec(
                    backend=BackendSpec(
                        runner="protocol", protocol="buffered", network=network,
                        engine="fast",
                    )
                )
            )
            session.run()
            streams[network] = list(session.changes)
        assert streams["dict"] == streams["fast"]

    @pytest.mark.parametrize("stop_at", [0, 5, 11])
    def test_adaptive_resume_is_exact(self, stop_at, tmp_path):
        # The checkpoint carries the adversary's RNG state, so the resumed
        # session generates exactly the deletions an uninterrupted run would.
        spec = self.adaptive_spec(
            backend=BackendSpec(
                runner="protocol", protocol="buffered", network="dict", engine="fast"
            )
        )
        reference = Session(spec)
        reference.run()

        interrupted = Session(spec)
        for _ in range(stop_at):
            interrupted.step()
        checkpoint = interrupted.checkpoint()
        assert checkpoint.workload_state is not None
        path = tmp_path / "adaptive.json"
        save_checkpoint(path, checkpoint)
        resumed = Session.resume(load_checkpoint(path), network="fast")
        resumed.run()
        assert resumed.states() == reference.states()
        assert resumed.changes == reference.changes[stop_at:]
        assert _metric_dicts(resumed.network) == _metric_dicts(reference.network)

    def test_adaptive_stops_early_when_the_mis_empties(self):
        spec = ScenarioSpec(
            name="tiny",
            seed=1,
            graph=GraphSpec(family="path", nodes=4, seed=0),
            workload=WorkloadSpec(kind="adaptive_adversary", num_changes=50, seed=2),
            backend=BackendSpec(runner="sequential", engine="template"),
        )
        result = Session(spec).run()
        assert result.num_changes == 4  # every node deleted, then StopIteration

    def test_sliding_window_scenario_runs_on_both_runners(self):
        spec = ScenarioSpec(
            name="window",
            seed=4,
            graph=None,
            workload=WorkloadSpec(
                kind="sliding_window",
                num_changes=40,
                seed=9,
                params={"num_nodes": 25, "window_size": 10},
            ),
            backend=BackendSpec(runner="sequential", engine="fast"),
        )
        sequential = run_scenario(spec)
        assert sequential.num_changes == 40
        protocol = run_scenario(
            spec.with_backend(runner="protocol", protocol="direct", network="fast")
        )
        assert protocol.num_changes == 40
        assert protocol.verified


class TestObservers:
    def test_summary_sink_sees_every_change(self):
        sink = SummarySink()
        run_scenario(small_spec(), observers=(sink,))
        assert sink.num_changes == 40
        summary = sink.summary()
        assert summary["num_changes"] == 40
        assert "num_adjustments" in summary
        assert summary["num_adjustments"]["total"] >= 0

    def test_summary_sink_works_for_protocol_records(self):
        sink = SummarySink()
        run_scenario(
            small_spec(backend=BackendSpec(runner="protocol", protocol="buffered")),
            observers=(sink,),
        )
        assert "broadcasts" in sink.summary()

    def test_jsonl_sink_writes_one_line_per_change(self, tmp_path):
        path = tmp_path / "changes.jsonl"
        run_scenario(small_spec(), observers=(JsonlSink(str(path)),))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 40
        assert all("change" in line and "num_adjustments" in line for line in lines)

    def test_spec_named_sinks_are_attached(self, tmp_path):
        path = tmp_path / "spec-sink.jsonl"
        spec = small_spec(sinks=("summary", f"jsonl:{path}"))
        run_scenario(spec)
        assert len(path.read_text().splitlines()) == 40

    def test_callback_sink_and_batch_hook(self):
        seen = []
        spec = small_spec(batch_size=10)
        run_scenario(spec, observers=(CallbackSink(lambda i, unit, r: seen.append(i)),))
        assert seen == [0, 1, 2, 3]  # 40 changes / batch_size 10


class TestGrid:
    def test_same_scenario_across_backends(self):
        results = run_scenario_grid(
            small_spec(),
            [("template", {"engine": "template"}), ("fast", {"engine": "fast"})],
        )
        assert [result.name for result in results] == [
            "session-test[template]",
            "session-test[fast]",
        ]
        # Identical workload + seed => identical outputs and costs.
        assert results[0].final_mis_size == results[1].final_mis_size
        assert results[0].summary == results[1].summary
