"""Unit tests for the sequential random-greedy oracle."""

from __future__ import annotations

import pytest

from repro.core.greedy import (
    greedy_clustering,
    greedy_coloring,
    greedy_mis,
    greedy_mis_states,
    independent_set_size_distribution,
)
from repro.core.priorities import DeterministicPriorityAssigner, RandomPriorityAssigner
from repro.graph import generators
from repro.graph.validation import (
    check_maximal_independent_set,
    check_proper_coloring,
)


def _assigner_for(graph, seed=0):
    assigner = RandomPriorityAssigner(seed)
    for node in graph.nodes():
        assigner.assign(node)
    return assigner


class TestGreedyMIS:
    @pytest.mark.parametrize("family", ["erdos_renyi", "star", "path", "cycle", "preferential"])
    def test_output_is_a_maximal_independent_set(self, family, any_seed):
        graph = generators.random_graph_family(family, 25, seed=any_seed)
        assigner = _assigner_for(graph, seed=any_seed)
        check_maximal_independent_set(graph, greedy_mis(graph, assigner))

    def test_empty_graph(self):
        graph = generators.empty_graph(0)
        assert greedy_mis(graph, _assigner_for(graph)) == set()

    def test_isolated_nodes_all_join(self):
        graph = generators.empty_graph(5)
        assert greedy_mis(graph, _assigner_for(graph)) == set(range(5))

    def test_clique_has_exactly_one_member(self):
        graph = generators.complete_graph(8)
        assigner = _assigner_for(graph, seed=4)
        mis = greedy_mis(graph, assigner)
        assert len(mis) == 1
        assert mis == {assigner.earliest(graph.nodes())}

    def test_deterministic_order_on_path(self):
        graph = generators.path_graph(5)
        assigner = DeterministicPriorityAssigner()
        for node in graph.nodes():
            assigner.assign(node)
        assert greedy_mis(graph, assigner) == {0, 2, 4}

    def test_star_mis_depends_on_center_rank(self):
        graph = generators.star_graph(6)
        for seed in range(10):
            assigner = _assigner_for(graph, seed=seed)
            mis = greedy_mis(graph, assigner)
            if assigner.earliest(graph.nodes()) == 0:
                assert mis == {0}
            else:
                assert mis == set(range(1, 7))

    def test_states_map_matches_set(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=3)
        mis = greedy_mis(small_random_graph, assigner)
        states = greedy_mis_states(small_random_graph, assigner)
        assert {node for node, value in states.items() if value} == mis
        assert set(states) == set(small_random_graph.nodes())


class TestGreedyClustering:
    def test_centers_are_mis_nodes(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=5)
        mis = greedy_mis(small_random_graph, assigner)
        clusters = greedy_clustering(small_random_graph, assigner)
        assert set(clusters.values()) <= mis
        for center in mis:
            assert clusters[center] == center

    def test_members_join_earliest_mis_neighbor(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=5)
        mis = greedy_mis(small_random_graph, assigner)
        clusters = greedy_clustering(small_random_graph, assigner)
        for node in small_random_graph.nodes():
            if node in mis:
                continue
            mis_neighbors = [
                other for other in small_random_graph.neighbors(node) if other in mis
            ]
            assert clusters[node] == assigner.earliest(mis_neighbors)


class TestGreedyColoring:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coloring_is_proper_and_within_delta_plus_one(self, seed):
        graph = generators.erdos_renyi_graph(25, 0.2, seed=seed)
        assigner = _assigner_for(graph, seed=seed)
        colors = greedy_coloring(graph, assigner)
        check_proper_coloring(graph, colors)
        assert max(colors.values(), default=0) <= graph.max_degree()

    def test_path_two_colors_when_order_is_identity(self):
        graph = generators.path_graph(6)
        assigner = DeterministicPriorityAssigner()
        for node in graph.nodes():
            assigner.assign(node)
        colors = greedy_coloring(graph, assigner)
        assert set(colors.values()) == {0, 1}


class TestSizeDistribution:
    def test_histogram_counts_sum_to_trials(self):
        graph = generators.star_graph(5)
        histogram = independent_set_size_distribution(graph, seeds=range(50))
        assert sum(histogram.values()) == 50
        assert set(histogram) <= {1, 5}

    def test_star_histogram_is_dominated_by_leaves(self):
        graph = generators.star_graph(9)
        histogram = independent_set_size_distribution(graph, seeds=range(300))
        # Probability that the center is first is 1/10.
        assert histogram.get(9, 0) > histogram.get(1, 0)
