"""Tests for the asynchronous execution of the direct protocol."""

from __future__ import annotations

import pytest

from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.scheduler import (
    AdversarialDelayScheduler,
    FixedDelayScheduler,
    RandomDelayScheduler,
)
from repro.graph import generators
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import EdgeDeletion, EdgeInsertion, NodeDeletion, NodeInsertion
from repro.workloads.sequences import mixed_churn_sequence


class TestSchedulers:
    def test_fixed_delay(self):
        scheduler = FixedDelayScheduler(2.0)
        assert scheduler.delay(1, 2, 0) == 2.0
        with pytest.raises(ValueError):
            FixedDelayScheduler(0.0)

    def test_random_delay_range(self):
        scheduler = RandomDelayScheduler(seed=1, min_delay=0.5, max_delay=1.5)
        for sequence_number in range(100):
            delay = scheduler.delay("a", "b", sequence_number)
            assert 0.5 <= delay <= 1.5
        with pytest.raises(ValueError):
            RandomDelayScheduler(min_delay=0.0)

    def test_adversarial_delay_is_deterministic_per_channel(self):
        scheduler = AdversarialDelayScheduler(seed=3, slow_fraction=0.5, slow_factor=10.0)
        first = scheduler.delay("a", "b", 0)
        second = scheduler.delay("a", "b", 7)
        assert first == second
        with pytest.raises(ValueError):
            AdversarialDelayScheduler(slow_fraction=2.0)
        with pytest.raises(ValueError):
            AdversarialDelayScheduler(slow_factor=0.5)

    def test_adversarial_has_slow_and_fast_channels(self):
        scheduler = AdversarialDelayScheduler(seed=3, slow_fraction=0.5, slow_factor=50.0)
        delays = {scheduler.delay("a", receiver, 0) for receiver in range(40)}
        assert max(delays) > 10 * min(delays)


class TestAsyncCorrectness:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            lambda: FixedDelayScheduler(1.0),
            lambda: RandomDelayScheduler(seed=5),
            lambda: AdversarialDelayScheduler(seed=5),
        ],
    )
    def test_long_churn_tracks_oracle_under_any_scheduler(
        self, scheduler_factory, small_random_graph
    ):
        network = AsyncDirectMISNetwork(
            seed=2, initial_graph=small_random_graph, scheduler=scheduler_factory()
        )
        for change in mixed_churn_sequence(small_random_graph, 70, seed=8):
            network.apply(change)
            network.verify()
        check_maximal_independent_set(network.graph, network.mis())

    def test_single_change_types(self, small_random_graph):
        network = AsyncDirectMISNetwork(seed=3, initial_graph=small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        missing = [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v)
        ]
        network.apply(EdgeInsertion(*missing[0]))
        network.verify()
        network.apply(EdgeDeletion(*missing[0]))
        network.verify()
        network.apply(NodeInsertion("fresh", tuple(nodes[:3])))
        network.verify()
        network.apply(NodeDeletion("fresh"))
        network.verify()

    def test_deleting_isolated_mis_node(self):
        network = AsyncDirectMISNetwork(seed=4, initial_graph=generators.empty_graph(3))
        assert network.mis() == {0, 1, 2}
        network.apply(NodeDeletion(1))
        network.verify()
        assert network.mis() == {0, 2}


class TestAsyncComplexity:
    def test_causal_depth_is_recorded(self, small_random_graph):
        network = AsyncDirectMISNetwork(seed=5, initial_graph=small_random_graph)
        records = network.apply_sequence(mixed_churn_sequence(small_random_graph, 50, seed=9))
        assert all(record.async_causal_depth is not None for record in records)
        assert all(record.rounds == record.async_causal_depth for record in records)

    def test_mean_causal_depth_is_constant_like(self, medium_random_graph):
        """Corollary 6: the expected longest communication path is ~1 per change."""
        network = AsyncDirectMISNetwork(seed=6, initial_graph=medium_random_graph)
        network.apply_sequence(mixed_churn_sequence(medium_random_graph, 150, seed=10))
        assert network.metrics.mean("async_causal_depth") < 3.0

    def test_no_change_costs_nothing(self):
        # Adding an edge between a non-MIS pair dominated by an earlier MIS
        # node costs zero messages.
        graph = generators.star_graph(4)
        network = AsyncDirectMISNetwork(seed=8, initial_graph=graph)
        if network.mis() == set(range(1, 5)):
            # Leaves are in the MIS: connect two leaves; the later one must leave.
            metrics = network.apply(EdgeInsertion(1, 2))
            assert metrics.adjustments >= 1
        else:
            # Center is in the MIS: connecting two leaves changes nothing.
            metrics = network.apply(EdgeInsertion(1, 2))
            assert metrics.adjustments == 0
            assert metrics.broadcasts == 0
        network.verify()

    def test_adjustments_match_synchronous_semantics(self, small_random_graph):
        from repro.core.dynamic_mis import DynamicMIS

        asynchronous = AsyncDirectMISNetwork(seed=12, initial_graph=small_random_graph)
        sequential = DynamicMIS(seed=12, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 60, seed=11):
            async_metrics = asynchronous.apply(change)
            report = sequential.apply(change)
            assert asynchronous.mis() == sequential.mis()
            assert async_metrics.adjustments == report.num_adjustments
