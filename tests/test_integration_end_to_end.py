"""End-to-end integration tests exercising several subsystems together.

Each test tells one of the paper's stories from start to finish: engines must
agree with each other, the applications must stay valid across long workloads,
and the worked examples of Section 5 must come out with the numbers the paper
states.
"""

from __future__ import annotations

import pytest

from repro.analysis.estimators import mean
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.clustering.correlation import clustering_cost
from repro.clustering.dynamic_clustering import DynamicCorrelationClustering
from repro.coloring.dynamic_coloring import DynamicColoring
from repro.core.dynamic_mis import DynamicMIS
from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.graph.validation import (
    check_maximal_independent_set,
    check_maximal_matching,
    check_proper_coloring,
)
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.workloads.changes import NodeDeletion
from repro.workloads.sequences import (
    alternative_histories,
    build_sequence,
    mixed_churn_sequence,
    sliding_window_sequence,
)


class TestAllEnginesAgree:
    """The template engine, both synchronous protocols and the asynchronous
    engine all simulate the same random greedy process, so with the same seed
    they must produce byte-identical outputs forever."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_four_engines_agree_over_mixed_churn(self, seed):
        graph = generators.erdos_renyi_graph(24, 0.18, seed=seed)
        engines = [
            DynamicMIS(seed=seed + 3, initial_graph=graph),
            BufferedMISNetwork(seed=seed + 3, initial_graph=graph),
            DirectMISNetwork(seed=seed + 3, initial_graph=graph),
            AsyncDirectMISNetwork(seed=seed + 3, initial_graph=graph),
        ]
        for change in mixed_churn_sequence(graph, 60, seed=seed + 5):
            outputs = set()
            for engine in engines:
                engine.apply(change)
                outputs.add(frozenset(engine.mis()))
            assert len(outputs) == 1

    def test_engines_agree_on_sliding_window_workload(self):
        changes = sliding_window_sequence(num_nodes=18, window_size=20, num_changes=80, seed=2)
        base = generators.empty_graph(18)
        sequential = DynamicMIS(seed=9, initial_graph=base)
        buffered = BufferedMISNetwork(seed=9, initial_graph=base)
        for change in changes:
            sequential.apply(change)
            buffered.apply(change)
        assert sequential.mis() == buffered.mis()
        check_maximal_independent_set(buffered.graph, buffered.mis())


class TestDynamicBeatsRecomputeBaseline:
    def test_per_change_work_separation(self):
        """The static/dynamic separation of experiment E4 in miniature: the
        recompute baseline pays Theta(log n) rounds and Theta(n) broadcasts
        per change, the paper's protocol pays O(1) of each."""
        graph = generators.erdos_renyi_graph(60, 0.08, seed=4)
        changes = mixed_churn_sequence(graph, 40, seed=5)
        ours = BufferedMISNetwork(seed=6, initial_graph=graph)
        baseline = StaticRecomputeDynamicMIS("luby", seed=6, initial_graph=graph)
        ours.apply_sequence(changes)
        baseline.apply_sequence(changes)
        assert ours.metrics.mean("broadcasts") * 3 < baseline.metrics.mean("broadcasts")
        assert ours.metrics.mean("adjustments") <= 2.0

    def test_outputs_are_both_valid_mis(self):
        graph = generators.erdos_renyi_graph(30, 0.15, seed=7)
        changes = mixed_churn_sequence(graph, 30, seed=8)
        ours = DirectMISNetwork(seed=9, initial_graph=graph)
        baseline = StaticRecomputeDynamicMIS("ghaffari", seed=9, initial_graph=graph)
        ours.apply_sequence(changes)
        baseline.apply_sequence(changes)
        check_maximal_independent_set(ours.graph, ours.mis())
        check_maximal_independent_set(baseline.graph, baseline.mis())


class TestApplicationsTogether:
    def test_mis_matching_coloring_clustering_share_a_workload(self):
        graph = generators.near_regular_graph(16, 3, seed=10)
        from repro.workloads.sequences import edge_churn_sequence

        changes = edge_churn_sequence(graph, 30, seed=11)
        mis_maintainer = DynamicMIS(seed=12, initial_graph=graph)
        matcher = DynamicMaximalMatching(seed=12, initial_graph=graph)
        colorer = DynamicColoring(num_colors=16, seed=12, initial_graph=graph)
        clusterer = DynamicCorrelationClustering(seed=12, initial_graph=graph)
        for change in changes:
            mis_maintainer.apply(change)
            matcher.apply(change)
            colorer.apply(change)
            clusterer.apply(change)
        final_graph = mis_maintainer.graph
        check_maximal_independent_set(final_graph, mis_maintainer.mis())
        check_maximal_matching(matcher.graph, matcher.matching())
        check_proper_coloring(colorer.graph, colorer.colors())
        assert clustering_cost(clusterer.graph, clusterer.clusters()) >= 0

    def test_history_independence_across_applications(self):
        """All derived structures are history independent: two different
        histories of the same graph give identical outputs per seed."""
        graph = generators.erdos_renyi_graph(10, 0.3, seed=13)
        histories = alternative_histories(graph, num_histories=3, seed=14)
        mis_outputs, matching_outputs = set(), set()
        for history in histories:
            maintainer = DynamicMIS(seed=21)
            matcher = DynamicMaximalMatching(seed=21)
            for change in history:
                maintainer.apply(change)
                matcher.apply(change)
            mis_outputs.add(frozenset(maintainer.mis()))
            matching_outputs.add(frozenset(matcher.matching()))
        assert len(mis_outputs) == 1
        assert len(matching_outputs) == 1


class TestPaperExamplesEndToEnd:
    def test_star_example_expected_mis_size(self):
        """Example 1: on a star built by an adversary, the expected MIS size
        is ~n-1 (within a constant factor of maximum), not the worst case 1."""
        num_leaves = 15
        history = build_sequence(generators.star_graph(num_leaves), seed=3)
        sizes = []
        for seed in range(200):
            maintainer = DynamicMIS(seed=seed)
            maintainer.apply_sequence(history)
            sizes.append(len(maintainer.mis()))
        expected = (1.0 / (num_leaves + 1)) * 1 + (num_leaves / (num_leaves + 1)) * num_leaves
        assert abs(mean(sizes) - expected) < 1.5
        assert mean(sizes) > num_leaves / 2

    def test_three_paths_matching_example(self):
        """Example 2: expected maximal matching size 5n/12 vs worst case n/4."""
        num_paths = 6
        graph = generators.disjoint_paths_graph(num_paths, edges_per_path=3)
        sizes = []
        for seed in range(150):
            matcher = DynamicMaximalMatching(seed=seed, initial_graph=graph)
            sizes.append(matcher.matching_size())
        expected = num_paths * 5.0 / 3.0
        worst_case = num_paths
        assert abs(mean(sizes) - expected) < 0.6
        assert mean(sizes) > worst_case

    def test_lower_bound_instance_deterministic_vs_randomized(self):
        from repro.lowerbounds.deterministic import (
            run_deterministic_lower_bound,
            run_randomized_on_lower_bound_instance,
        )

        deterministic = run_deterministic_lower_bound(12)
        randomized_means = [
            run_randomized_on_lower_bound_instance(12, seed=seed).mean_adjustments
            for seed in range(10)
        ]
        assert deterministic.max_adjustments >= 12
        assert mean(randomized_means) < deterministic.max_adjustments / 3


class TestAdversarialDeletionStress:
    def test_repeated_mis_node_deletion_stays_correct(self):
        """An adaptive adversary keeps deleting MIS nodes; correctness and the
        per-change validity of the output must survive (costs may grow --
        that is exactly why the paper assumes an oblivious adversary)."""
        graph = generators.erdos_renyi_graph(25, 0.2, seed=15)
        maintainer = DynamicMIS(seed=16, initial_graph=graph)
        for _ in range(15):
            mis_nodes = sorted(maintainer.mis(), key=repr)
            if not mis_nodes:
                break
            maintainer.apply(NodeDeletion(mis_nodes[0]))
            maintainer.verify()
            check_maximal_independent_set(maintainer.graph, maintainer.mis())
