"""Unit tests for the clique-blowup (coloring) reduction."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.clique_blowup import (
    CliqueBlowupView,
    clique_blowup_of,
    color_assignment_from_mis,
)
from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.graph.validation import check_graph_consistency


class TestStaticConstruction:
    def test_blowup_of_single_edge(self):
        graph = DynamicGraph(nodes=[0, 1], edges=[(0, 1)])
        blowup = clique_blowup_of(graph, num_colors=2)
        assert blowup.num_nodes() == 4
        # Two cliques of size 2 plus a perfect matching of size 2.
        assert blowup.num_edges() == 2 + 2
        assert blowup.has_edge((0, 0), (0, 1))
        assert blowup.has_edge((0, 0), (1, 0))
        assert not blowup.has_edge((0, 0), (1, 1))

    def test_blowup_counts(self):
        graph = generators.cycle_graph(5)
        k = 3
        blowup = clique_blowup_of(graph, num_colors=k)
        assert blowup.num_nodes() == 5 * k
        assert blowup.num_edges() == 5 * k * (k - 1) // 2 + 5 * k
        check_graph_consistency(blowup)

    def test_palette_too_small_raises(self):
        graph = generators.star_graph(4)
        with pytest.raises(ValueError):
            clique_blowup_of(graph, num_colors=4)  # center has degree 4

    def test_palette_exactly_delta_plus_one(self):
        graph = generators.star_graph(4)
        blowup = clique_blowup_of(graph, num_colors=5)
        assert blowup.num_nodes() == 25


class TestIncrementalView:
    def test_view_matches_batch_construction(self):
        base = generators.cycle_graph(6)
        view = CliqueBlowupView(base, num_colors=4)
        assert view.blowup_graph == clique_blowup_of(base, 4)

        view.remove_edge(0, 1)
        view.add_edge(0, 3)
        view.add_node("new")
        view.add_edge("new", 1)
        view.remove_node(4)
        assert view.blowup_graph == clique_blowup_of(view.base_graph, 4)

    def test_add_edge_derived_changes(self):
        view = CliqueBlowupView(generators.empty_graph(2), num_colors=2)
        changes = view.add_edge(0, 1)
        assert len(changes) == 2
        assert all(change[0] == "add_edge" for change in changes)

    def test_add_node_derived_changes(self):
        view = CliqueBlowupView(num_colors=3)
        changes = view.add_node("a")
        assert len(changes) == 3
        assert changes[0] == ("add_node", ("a", 0), ())
        assert changes[2][0] == "add_node"
        assert set(changes[2][2]) == {("a", 0), ("a", 1)}

    def test_remove_node_derived_changes(self):
        view = CliqueBlowupView(generators.path_graph(3), num_colors=3)
        changes = view.remove_node(1)
        kinds = [change[0] for change in changes]
        assert kinds.count("remove_edge") == 6  # two incident base edges * 3 colors
        assert kinds.count("remove_node") == 3

    def test_palette_guard_rejects_overfull_degree(self):
        view = CliqueBlowupView(generators.star_graph(2), num_colors=3)
        view.add_node("x")
        with pytest.raises(ValueError):
            view.add_edge(0, "x")

    def test_remove_missing_edge_raises(self):
        view = CliqueBlowupView(generators.path_graph(3), num_colors=3)
        with pytest.raises(GraphError):
            view.remove_edge(0, 2)

    def test_copies_of(self):
        view = CliqueBlowupView(generators.empty_graph(1), num_colors=4)
        assert view.copies_of(0) == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_invalid_num_colors(self):
        with pytest.raises(ValueError):
            CliqueBlowupView(num_colors=0)


class TestColorExtraction:
    def test_color_assignment_from_mis(self):
        assignment = color_assignment_from_mis(None, [(0, 2), (1, 0)])
        assert assignment == {0: 2, 1: 0}

    def test_duplicate_copy_rejected(self):
        with pytest.raises(ValueError):
            color_assignment_from_mis(None, [(0, 1), (0, 2)])
