"""Tests for estimators, history-independence machinery and report tables."""

from __future__ import annotations

import pytest

from repro.analysis.estimators import (
    confidence_interval,
    group_means,
    growth_exponent,
    mean,
    sample_standard_deviation,
    summarize,
)
from repro.analysis.history_independence import (
    max_pairwise_distance,
    mis_distribution_over_histories,
    mis_distribution_over_seeds,
    outputs_identical_across_histories,
    replay_history_mis,
    total_variation_distance,
)
from repro.analysis.reporting import format_claim_table, format_table
from repro.graph import generators
from repro.workloads.sequences import alternative_histories


class TestEstimators:
    def test_mean_and_std(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)
        assert mean([]) == 0.0
        assert sample_standard_deviation([2, 2, 2]) == 0.0
        assert sample_standard_deviation([1]) == 0.0
        assert sample_standard_deviation([1, 3]) == pytest.approx(2 ** 0.5)

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([1, 2, 3, 4, 5])
        assert low <= 3.0 <= high
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_summarize(self):
        summary = summarize([1, 2, 3])
        assert summary.count == 3
        assert summary.minimum == 1
        assert summary.maximum == 3
        assert summary.ci_low <= summary.mean <= summary.ci_high
        empty = summarize([])
        assert empty.count == 0

    def test_group_means(self):
        groups = group_means([("a", 1.0), ("a", 3.0), ("b", 2.0)])
        assert groups == {"a": 2.0, "b": 2.0}

    def test_growth_exponent_detects_shapes(self):
        xs = [10, 100, 1000, 10000]
        constant = [5.0, 5.1, 4.9, 5.0]
        linear = [10.0, 100.0, 1000.0, 10000.0]
        assert abs(growth_exponent(xs, constant)) < 0.05
        assert abs(growth_exponent(xs, linear) - 1.0) < 0.05
        assert growth_exponent([1], [1]) == 0.0
        assert growth_exponent([0, 0], [1, 1]) == 0.0


class TestHistoryIndependenceMachinery:
    def test_total_variation_basics(self):
        p = {frozenset({1}): 0.5, frozenset({2}): 0.5}
        q = {frozenset({1}): 1.0}
        assert total_variation_distance(p, p) == 0.0
        assert total_variation_distance(p, q) == pytest.approx(0.5)

    def test_distribution_over_seeds_sums_to_one(self):
        distribution = mis_distribution_over_seeds(lambda seed: frozenset({seed % 2}), range(10))
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert len(distribution) == 2

    def test_paper_algorithm_is_history_independent_per_seed(self):
        graph = generators.erdos_renyi_graph(10, 0.3, seed=1)
        histories = alternative_histories(graph, num_histories=4, seed=2)
        for seed in range(5):
            assert outputs_identical_across_histories(histories, seed)

    def test_distributions_over_histories_are_close(self):
        graph = generators.erdos_renyi_graph(8, 0.3, seed=3)
        histories = alternative_histories(graph, num_histories=3, seed=4)
        distributions = mis_distribution_over_histories(histories, seeds=range(30))
        assert max_pairwise_distance(distributions) == pytest.approx(0.0)

    def test_replay_history_builds_the_graph(self):
        graph = generators.path_graph(4)
        history = alternative_histories(graph, num_histories=1, seed=5)[0]
        output = replay_history_mis(history, seed=9)
        assert output  # non-empty MIS of a non-empty graph
        assert all(node in graph for node in output)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", None], ["c", True]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert lines[1].startswith("=")
        assert "alpha" in table
        assert "1.5000" in table
        assert "-" in lines[-2] or "-" in table  # None rendered as dash
        assert "yes" in table

    def test_format_table_pads_short_rows(self):
        table = format_table(["a", "b", "c"], [[1]])
        assert table.splitlines()[-1].strip().startswith("1")

    def test_format_claim_table_contains_all_claims(self):
        table = format_claim_table(
            "E1",
            [
                {"row": "E[|S|]", "paper": "<= 1", "measured": 0.42, "verdict": "pass"},
                {"row": "rounds", "paper": "O(1)", "measured": 1.7},
            ],
        )
        assert "E[|S|]" in table
        assert "0.4200" in table
        assert "pass" in table
