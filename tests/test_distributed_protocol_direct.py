"""Tests for the direct (single-round) protocol of Corollary 6."""

from __future__ import annotations

import pytest

from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import EdgeDeletion, EdgeInsertion, NodeDeletion, NodeInsertion
from repro.workloads.sequences import mixed_churn_sequence


class TestBasicBehaviour:
    def test_initial_output_is_random_greedy(self, small_random_graph):
        network = DirectMISNetwork(seed=1, initial_graph=small_random_graph)
        network.verify()

    def test_single_edge_changes(self, small_random_graph):
        network = DirectMISNetwork(seed=2, initial_graph=small_random_graph)
        edge = network.graph.edges()[0]
        network.apply(EdgeDeletion(*edge))
        network.verify()
        network.apply(EdgeInsertion(*edge))
        network.verify()

    def test_node_changes(self, small_random_graph):
        network = DirectMISNetwork(seed=3, initial_graph=small_random_graph)
        network.apply(NodeInsertion("n", tuple(sorted(small_random_graph.nodes())[:3])))
        network.verify()
        network.apply(NodeDeletion("n", graceful=False))
        network.verify()

    def test_graceful_mis_node_deletion(self):
        network = DirectMISNetwork(seed=4, initial_graph=generators.star_graph(5))
        target = next(iter(network.mis()))
        network.apply(NodeDeletion(target, graceful=True))
        network.verify()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_long_churn_tracks_oracle(self, seed, small_random_graph):
        network = DirectMISNetwork(seed=seed, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 80, seed=seed + 30):
            network.apply(change)
            network.verify()
        check_maximal_independent_set(network.graph, network.mis())


class TestRoundComplexity:
    def test_rounds_track_propagation_depth(self, medium_random_graph):
        """The direct protocol's mean round count stays around one per change."""
        network = DirectMISNetwork(seed=5, initial_graph=medium_random_graph)
        network.apply_sequence(mixed_churn_sequence(medium_random_graph, 120, seed=6))
        network.verify()
        assert network.metrics.mean("rounds") < 4.0

    def test_no_violation_means_zero_protocol_rounds(self):
        # Deleting an edge whose later endpoint keeps its state requires no
        # propagation at all.
        graph = DynamicGraph(nodes=[0, 1, 2], edges=[(0, 1), (0, 2), (1, 2)])
        network = DirectMISNetwork(seed=7, initial_graph=graph)
        mis_node = next(iter(network.mis()))
        others = [node for node in graph.nodes() if node != mis_node]
        metrics = network.apply(EdgeDeletion(others[0], others[1]))
        network.verify()
        assert metrics.adjustments in (0, 1)


class TestDirectVsBuffered:
    """The two protocols maintain exactly the same structure (same random IDs)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_output_on_same_change_sequence(self, seed, small_random_graph):
        direct = DirectMISNetwork(seed=seed, initial_graph=small_random_graph)
        buffered = BufferedMISNetwork(seed=seed, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 60, seed=seed + 40):
            direct.apply(change)
            buffered.apply(change)
            assert direct.mis() == buffered.mis()

    def test_adjustments_agree_but_flip_counts_may_differ(self, small_random_graph):
        direct = DirectMISNetwork(seed=9, initial_graph=small_random_graph)
        buffered = BufferedMISNetwork(seed=9, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 60, seed=41):
            direct_metrics = direct.apply(change)
            buffered_metrics = buffered.apply(change)
            assert direct_metrics.adjustments == buffered_metrics.adjustments

    def test_buffered_state_changes_bounded_by_three_per_influenced_node(self, small_random_graph):
        """Lemma 8/9: in Algorithm 2 every node changes state at most 3 times
        (except for abrupt deletions), so state changes <= 3 * |S| + O(1)."""
        buffered = BufferedMISNetwork(seed=11, initial_graph=small_random_graph)
        direct = DirectMISNetwork(seed=11, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 80, seed=42):
            buffered_metrics = buffered.apply(change)
            direct_metrics = direct.apply(change)
            influenced_upper = max(direct_metrics.state_changes, buffered_metrics.adjustments)
            if change.kind != "node_deletion":
                assert buffered_metrics.state_changes <= 3 * max(1, influenced_upper) + 2
