"""Statistical verification of Theorem 1 and the complexity theorems.

These tests estimate the paper's expectations by Monte Carlo and check them
with a comfortable margin (the bounds are exact expectations; the sample
means concentrate well at these sizes).  They are the in-suite counterparts
of benchmark experiments E1-E3.
"""

from __future__ import annotations

import pytest

from repro.analysis.estimators import mean
from repro.core.dynamic_mis import DynamicMIS
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.workloads.changes import NodeDeletion
from repro.workloads.sequences import edge_churn_sequence, mixed_churn_sequence


class TestTheorem1ExpectedInfluencedSet:
    """E_pi[|S|] <= 1 for every single topology change."""

    @pytest.mark.parametrize(
        "family", ["erdos_renyi", "preferential", "geometric", "near_regular"]
    )
    def test_mean_influenced_size_at_most_one_under_edge_churn(self, family):
        sizes = []
        for seed in range(6):
            graph = generators.random_graph_family(family, 30, seed=seed)
            maintainer = DynamicMIS(seed=seed + 100, initial_graph=graph)
            for change in edge_churn_sequence(graph, 60, seed=seed + 200):
                report = maintainer.apply(change)
                sizes.append(report.influenced_size)
        assert mean(sizes) <= 1.15  # sampling slack over the exact bound of 1

    def test_mean_influenced_size_for_each_change_type(self):
        """Break the bound down per change type on mixed churn workloads."""
        by_kind = {}
        for seed in range(8):
            graph = generators.erdos_renyi_graph(25, 0.15, seed=seed)
            maintainer = DynamicMIS(seed=seed + 17, initial_graph=graph)
            for change in mixed_churn_sequence(graph, 60, seed=seed + 31):
                report = maintainer.apply(change)
                by_kind.setdefault(report.change_type, []).append(report.influenced_size)
        for kind, sizes in by_kind.items():
            # Node changes touch at most one node *in expectation* as well;
            # allow modest sampling slack.
            assert mean(sizes) <= 1.6, f"kind {kind} exceeded the Theorem 1 bound"

    def test_single_edge_deletion_expectation_over_orders(self):
        """Fix one change and average only over the random order (the exact
        setting of Theorem 1)."""
        graph = generators.erdos_renyi_graph(20, 0.25, seed=3)
        target_edge = graph.edges()[0]
        sizes = []
        for seed in range(120):
            maintainer = DynamicMIS(seed=seed, initial_graph=graph)
            report = maintainer.delete_edge(*target_edge)
            sizes.append(report.influenced_size)
        assert mean(sizes) <= 1.1

    def test_single_edge_insertion_expectation_over_orders(self):
        graph = generators.erdos_renyi_graph(20, 0.25, seed=4)
        nodes = sorted(graph.nodes())
        non_edge = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not graph.has_edge(u, v)
        )
        sizes = []
        for seed in range(120):
            maintainer = DynamicMIS(seed=seed, initial_graph=graph)
            report = maintainer.insert_edge(*non_edge)
            sizes.append(report.influenced_size)
        assert mean(sizes) <= 1.1

    def test_single_node_deletion_expectation_over_orders(self):
        # Node deletions have the heaviest-tailed |S| distribution, so this
        # check uses more samples than the edge-change ones.
        graph = generators.erdos_renyi_graph(20, 0.25, seed=5)
        victim = sorted(graph.nodes())[0]
        sizes = []
        for seed in range(400):
            maintainer = DynamicMIS(seed=seed, initial_graph=graph)
            report = maintainer.delete_node(victim)
            sizes.append(report.influenced_size)
        assert mean(sizes) <= 1.25

    def test_adjustments_never_exceed_influenced_size_plus_insertion(self):
        graph = generators.erdos_renyi_graph(25, 0.2, seed=6)
        maintainer = DynamicMIS(seed=11, initial_graph=graph)
        for change in mixed_churn_sequence(graph, 80, seed=7):
            report = maintainer.apply(change)
            assert report.num_adjustments <= report.influenced_size + 1


class TestCorollary6AndTheorem7:
    def test_direct_protocol_mean_rounds_about_one(self):
        rounds = []
        for seed in range(4):
            graph = generators.erdos_renyi_graph(30, 0.15, seed=seed)
            network = DirectMISNetwork(seed=seed + 5, initial_graph=graph)
            for record in network.apply_sequence(edge_churn_sequence(graph, 60, seed=seed + 9)):
                rounds.append(record.rounds)
        assert mean(rounds) <= 2.0

    def test_buffered_protocol_constant_rounds_and_broadcasts_for_edge_changes(self):
        rounds, broadcasts = [], []
        for seed in range(4):
            graph = generators.erdos_renyi_graph(30, 0.15, seed=seed)
            network = BufferedMISNetwork(seed=seed + 5, initial_graph=graph)
            for record in network.apply_sequence(edge_churn_sequence(graph, 60, seed=seed + 9)):
                rounds.append(record.rounds)
                broadcasts.append(record.broadcasts)
        assert mean(rounds) <= 6.0
        assert mean(broadcasts) <= 8.0

    def test_broadcast_means_do_not_grow_with_n(self):
        """O(1) means independent of n: compare n=20 with n=80."""
        means = []
        for num_nodes in (20, 80):
            graph = generators.erdos_renyi_graph(num_nodes, 3.0 / num_nodes, seed=2)
            network = BufferedMISNetwork(seed=3, initial_graph=graph)
            network.apply_sequence(edge_churn_sequence(graph, 80, seed=4))
            means.append(network.metrics.mean("broadcasts"))
        assert means[1] <= 2.5 * means[0] + 2.0

    def test_abrupt_deletion_broadcasts_bounded_by_degree_term(self):
        """Theorem 7: abrupt deletion of v* costs O(min(log n, d(v*))) broadcasts."""
        graph = generators.star_graph(40)
        ratios = []
        for seed in range(10):
            network = BufferedMISNetwork(seed=seed, initial_graph=graph)
            center_in_mis = 0 in network.mis()
            record = network.apply(NodeDeletion(0, graceful=False))
            network.verify()
            if center_in_mis:
                ratios.append(record.broadcasts)
        # When the hub was in the MIS, its abrupt removal wakes every leaf;
        # Algorithm 2 still caps the work at ~3 broadcasts per influenced node.
        for value in ratios:
            assert value <= 3 * 40 + 5
