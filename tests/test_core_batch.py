"""Tests for batched (simultaneous) topology changes -- the Section 6 extension."""

from __future__ import annotations

import pytest

from repro.core.batch import apply_batch
from repro.core.dynamic_mis import DynamicMIS
from repro.core.greedy import greedy_mis
from repro.core.template import TemplateEngine
from repro.graph import generators
from repro.graph.dynamic_graph import GraphError
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)
from repro.workloads.sequences import mixed_churn_sequence


class TestBatchCorrectness:
    def test_empty_batch_changes_nothing(self, small_random_graph):
        engine = TemplateEngine(seed=1, initial_graph=small_random_graph)
        before = engine.mis()
        report = apply_batch(engine, [])
        assert report.batch_size == 0
        assert report.influenced_size == 0
        assert engine.mis() == before

    def test_single_change_batch_matches_single_change_outputs(self, small_random_graph):
        sequence = mixed_churn_sequence(small_random_graph, 30, seed=2)
        batched = TemplateEngine(seed=3, initial_graph=small_random_graph)
        one_by_one = TemplateEngine(seed=3, initial_graph=small_random_graph)
        single = DynamicMIS(seed=3, initial_graph=small_random_graph)
        del one_by_one
        for change in sequence:
            apply_batch(batched, [change])
            single.apply(change)
            assert batched.mis() == single.mis()
        batched.verify()

    @pytest.mark.parametrize("batch_size", [2, 5, 10])
    def test_batched_churn_matches_greedy_recompute(self, batch_size, medium_random_graph):
        engine = TemplateEngine(seed=4, initial_graph=medium_random_graph)
        sequence = mixed_churn_sequence(medium_random_graph, 60, seed=5)
        for start in range(0, len(sequence), batch_size):
            batch = sequence[start : start + batch_size]
            apply_batch(engine, batch)
            engine.verify()
            assert engine.mis() == greedy_mis(engine.graph, engine.priorities)
            check_maximal_independent_set(engine.graph, engine.mis())

    def test_batch_with_all_change_types(self, small_random_graph):
        engine = TemplateEngine(seed=6, initial_graph=small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        some_edge = small_random_graph.edges()[0]
        missing = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v) and (u, v) != some_edge
        )
        batch = [
            EdgeDeletion(*some_edge),
            EdgeInsertion(*missing),
            NodeInsertion("fresh", (nodes[0], nodes[1])),
            NodeUnmuting("ghost", ("fresh",)),
            NodeDeletion(nodes[-1]),
        ]
        report = apply_batch(engine, batch)
        engine.verify()
        assert report.batch_size == 5
        assert engine.graph.has_node("fresh")
        assert engine.graph.has_node("ghost")
        assert not engine.graph.has_node(nodes[-1])

    def test_batch_may_reference_nodes_created_in_the_same_batch(self):
        engine = TemplateEngine(seed=7)
        report = apply_batch(
            engine,
            [
                NodeInsertion("a"),
                NodeInsertion("b"),
                EdgeInsertion("a", "b"),
            ],
        )
        engine.verify()
        assert engine.graph.has_edge("a", "b")
        assert len(engine.mis()) == 1
        assert report.num_adjustments == 1

    def test_invalid_change_in_batch_raises(self, small_random_graph):
        engine = TemplateEngine(seed=8, initial_graph=small_random_graph)
        with pytest.raises(GraphError):
            apply_batch(engine, [EdgeInsertion(*small_random_graph.edges()[0])])

    def test_insert_and_delete_same_node_in_one_batch(self, small_random_graph):
        engine = TemplateEngine(seed=9, initial_graph=small_random_graph)
        before = engine.mis()
        report = apply_batch(
            engine, [NodeInsertion("temp", tuple(sorted(small_random_graph.nodes())[:2])), NodeDeletion("temp")]
        )
        engine.verify()
        assert not engine.graph.has_node("temp")
        assert engine.mis() == before
        assert report.num_adjustments == 0


class TestBatchViaDynamicMIS:
    def test_dynamic_mis_apply_batch(self, small_random_graph):
        maintainer = DynamicMIS(seed=10, initial_graph=small_random_graph)
        sequence = mixed_churn_sequence(small_random_graph, 20, seed=11)
        report = maintainer.apply_batch(sequence)
        maintainer.verify()
        assert report.batch_size == 20
        assert maintainer.mis() == greedy_mis(maintainer.graph, maintainer.priorities)

    def test_batch_report_accessors(self, small_random_graph):
        maintainer = DynamicMIS(seed=12, initial_graph=small_random_graph)
        some_edge = maintainer.graph.edges()[0]
        report = maintainer.apply_batch([EdgeDeletion(*some_edge)])
        assert report.influenced_size >= 0
        assert report.num_levels >= 0
        assert report.influenced_set == report.propagation.influenced
        assert report.seed_nodes  # the later endpoint was re-checked

    def test_batch_statistics_are_not_double_counted(self, small_random_graph):
        maintainer = DynamicMIS(seed=13, initial_graph=small_random_graph)
        maintainer.apply_batch(mixed_churn_sequence(small_random_graph, 10, seed=14))
        assert maintainer.statistics.num_changes == 0


class TestBatchEfficiency:
    def test_opposite_changes_cancel(self, small_random_graph):
        """Inserting and deleting the same edge in one batch costs nothing."""
        engine = TemplateEngine(seed=15, initial_graph=small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        missing = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v)
        )
        report = apply_batch(engine, [EdgeInsertion(*missing), EdgeDeletion(*missing)])
        assert report.num_adjustments == 0
        engine.verify()

    def test_batch_influenced_set_not_larger_than_sum_of_singles(self, medium_random_graph):
        sequence = mixed_churn_sequence(medium_random_graph, 40, seed=16)
        batched = TemplateEngine(seed=17, initial_graph=medium_random_graph)
        sequential = DynamicMIS(seed=17, initial_graph=medium_random_graph)
        batch_report = apply_batch(batched, sequence)
        total_single = sum(report.influenced_size for report in sequential.apply_sequence(sequence))
        assert batched.mis() == sequential.mis()
        assert batch_report.influenced_size <= total_single + 1
