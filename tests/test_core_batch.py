"""Tests for batched (simultaneous) topology changes -- the Section 6 extension.

Since the engine-API redesign, batch apply is a first-class method of every
backend (:meth:`repro.core.engine_api.MISEngine.apply_batch`), so the
correctness tests here run against *both* built-in engines; report-for-report
equality between them is covered by ``tests/conformance/``.
"""

from __future__ import annotations

import pytest

from repro.core.batch import apply_batch
from repro.core.dynamic_mis import DynamicMIS
from repro.core.greedy import greedy_mis
from repro.core.template import TemplateEngine
from repro.graph.dynamic_graph import GraphError
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)
from repro.workloads.sequences import mixed_churn_sequence


@pytest.fixture(params=["template", "fast"])
def engine_name(request) -> str:
    return request.param


def build_engine(engine_name: str, seed: int, initial_graph=None):
    """An engine backend built the way ``DynamicMIS`` builds it."""
    return DynamicMIS(seed=seed, initial_graph=initial_graph, engine=engine_name).engine


class TestBatchCorrectness:
    def test_empty_batch_changes_nothing(self, engine_name, small_random_graph):
        engine = build_engine(engine_name, 1, small_random_graph)
        before = engine.mis()
        report = apply_batch(engine, [])
        assert report.batch_size == 0
        assert report.influenced_size == 0
        assert engine.mis() == before

    def test_single_change_batch_matches_single_change_outputs(
        self, engine_name, small_random_graph
    ):
        sequence = mixed_churn_sequence(small_random_graph, 30, seed=2)
        batched = build_engine(engine_name, 3, small_random_graph)
        single = DynamicMIS(seed=3, initial_graph=small_random_graph, engine=engine_name)
        for change in sequence:
            apply_batch(batched, [change])
            single.apply(change)
            assert batched.mis() == single.mis()
        batched.verify()

    @pytest.mark.parametrize("batch_size", [2, 5, 10])
    def test_batched_churn_matches_greedy_recompute(
        self, engine_name, batch_size, medium_random_graph
    ):
        engine = build_engine(engine_name, 4, medium_random_graph)
        sequence = mixed_churn_sequence(medium_random_graph, 60, seed=5)
        for start in range(0, len(sequence), batch_size):
            batch = sequence[start : start + batch_size]
            engine.apply_batch(batch)
            engine.verify()
            graph = engine.graph.copy() if engine_name == "fast" else engine.graph
            assert engine.mis() == greedy_mis(graph, engine.priorities)
            check_maximal_independent_set(graph, engine.mis())

    def test_batch_with_all_change_types(self, engine_name, small_random_graph):
        engine = build_engine(engine_name, 6, small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        some_edge = small_random_graph.edges()[0]
        missing = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v) and (u, v) != some_edge
        )
        batch = [
            EdgeDeletion(*some_edge),
            EdgeInsertion(*missing),
            NodeInsertion("fresh", (nodes[0], nodes[1])),
            NodeUnmuting("ghost", ("fresh",)),
            NodeDeletion(nodes[-1]),
        ]
        report = engine.apply_batch(batch)
        engine.verify()
        assert report.batch_size == 5
        assert engine.graph.has_node("fresh")
        assert engine.graph.has_node("ghost")
        assert not engine.graph.has_node(nodes[-1])

    def test_batch_may_reference_nodes_created_in_the_same_batch(self, engine_name):
        engine = build_engine(engine_name, 7)
        report = engine.apply_batch(
            [
                NodeInsertion("a"),
                NodeInsertion("b"),
                EdgeInsertion("a", "b"),
            ]
        )
        engine.verify()
        assert engine.graph.has_edge("a", "b")
        assert len(engine.mis()) == 1
        assert report.num_adjustments == 1

    def test_invalid_change_in_batch_raises(self, engine_name, small_random_graph):
        engine = build_engine(engine_name, 8, small_random_graph)
        with pytest.raises(GraphError):
            engine.apply_batch([EdgeInsertion(*small_random_graph.edges()[0])])
        with pytest.raises(GraphError):
            engine.apply_batch([NodeDeletion("never-existed")])
        with pytest.raises(GraphError):
            engine.apply_batch([NodeInsertion("dup", ("missing-neighbor",))])

    def test_invalid_batch_leaves_engine_untouched(self, engine_name, small_random_graph):
        """Validation runs up-front: a failing batch applies none of its deltas."""
        engine = build_engine(engine_name, 20, small_random_graph)
        states_before = engine.states()
        edges_before = engine.graph.num_edges()
        first_edge = small_random_graph.edges()[0]
        with pytest.raises(GraphError):
            # The first two changes are valid; the third is not.
            engine.apply_batch(
                [
                    EdgeDeletion(*first_edge),
                    NodeInsertion("newbie", ()),
                    NodeDeletion("never-existed"),
                ]
            )
        assert engine.states() == states_before
        assert engine.graph.num_edges() == edges_before
        assert engine.graph.has_edge(*first_edge)
        assert not engine.graph.has_node("newbie")
        engine.verify()

    def test_batch_validation_tracks_the_evolving_topology(self, engine_name):
        """validate_batch must accept changes that are only valid mid-batch."""
        engine = build_engine(engine_name, 21)
        engine.apply_batch([NodeInsertion("a"), NodeInsertion("b"), NodeInsertion("c")])
        # Valid: edge to a node created earlier in the same batch; edge deleted
        # then re-inserted; node deleted then re-inserted with a fresh edge.
        engine.apply_batch(
            [
                EdgeInsertion("a", "b"),
                EdgeDeletion("a", "b"),
                EdgeInsertion("a", "b"),
                NodeDeletion("c"),
                NodeInsertion("c", ("a",)),
            ]
        )
        engine.verify()
        # Invalid: the edge to "c" died with the deletion, so deleting it again fails.
        with pytest.raises(GraphError):
            engine.apply_batch(
                [NodeDeletion("c"), NodeInsertion("c"), EdgeDeletion("a", "c")]
            )
        engine.verify()
        assert engine.graph.has_edge("a", "c")  # untouched by the failed batch

    def test_insert_and_delete_same_node_in_one_batch(self, engine_name, small_random_graph):
        engine = build_engine(engine_name, 9, small_random_graph)
        before = engine.mis()
        report = engine.apply_batch(
            [
                NodeInsertion("temp", tuple(sorted(small_random_graph.nodes())[:2])),
                NodeDeletion("temp"),
            ]
        )
        engine.verify()
        assert not engine.graph.has_node("temp")
        assert engine.mis() == before
        assert report.num_adjustments == 0

    def test_delete_and_reinsert_same_label_in_one_batch(self, engine_name, small_random_graph):
        """Delete-then-reinsert of the same label inside one batch (free-list path)."""
        engine = build_engine(engine_name, 19, small_random_graph)
        victim = sorted(small_random_graph.nodes())[0]
        keep = sorted(small_random_graph.nodes())[1]
        engine.apply_batch([NodeDeletion(victim), NodeInsertion(victim, (keep,))])
        engine.verify()
        assert engine.graph.has_node(victim)
        graph = engine.graph.copy() if engine_name == "fast" else engine.graph
        assert engine.mis() == greedy_mis(graph, engine.priorities)


class TestBatchViaDynamicMIS:
    def test_dynamic_mis_apply_batch(self, engine_name, small_random_graph):
        maintainer = DynamicMIS(seed=10, initial_graph=small_random_graph, engine=engine_name)
        sequence = mixed_churn_sequence(small_random_graph, 20, seed=11)
        report = maintainer.apply_batch(sequence)
        maintainer.verify()
        assert report.batch_size == 20
        graph = maintainer.graph.copy() if engine_name == "fast" else maintainer.graph
        assert maintainer.mis() == greedy_mis(graph, maintainer.priorities)

    def test_batch_report_accessors(self, small_random_graph):
        maintainer = DynamicMIS(seed=12, initial_graph=small_random_graph)
        some_edge = maintainer.graph.edges()[0]
        report = maintainer.apply_batch([EdgeDeletion(*some_edge)])
        assert report.influenced_size >= 0
        assert report.num_levels >= 0
        assert report.influenced_set == set(report.influenced_labels)
        # The template backend attaches its full propagation trace.
        assert report.propagation is not None
        assert report.influenced_set == report.propagation.influenced
        assert report.seed_nodes  # the later endpoint was re-checked

    def test_fast_batch_report_has_no_propagation_trace(self, small_random_graph):
        maintainer = DynamicMIS(seed=12, initial_graph=small_random_graph, engine="fast")
        some_edge = maintainer.graph.edges()[0]
        report = maintainer.apply_batch([EdgeDeletion(*some_edge)])
        assert report.propagation is None
        assert report.influenced_set == set(report.influenced_labels)

    def test_batch_statistics_use_the_batch_channel(self, engine_name, small_random_graph):
        maintainer = DynamicMIS(seed=13, initial_graph=small_random_graph, engine=engine_name)
        report = maintainer.apply_batch(mixed_churn_sequence(small_random_graph, 10, seed=14))
        stats = maintainer.statistics
        # Batches are not folded into the single-change lists...
        assert stats.num_changes == 0
        # ...but land on the aligned per-batch channel.
        assert stats.num_batches == 1
        assert stats.num_batched_changes == 10
        assert stats.batch_sizes == [10]
        assert stats.batch_influenced_sizes == [report.influenced_size]
        assert stats.batch_adjustments == [report.num_adjustments]
        assert stats.batch_levels == [report.num_levels]
        assert stats.mean_batch_adjustments_per_change() == report.num_adjustments / 10


class TestBatchEfficiency:
    def test_opposite_changes_cancel(self, engine_name, small_random_graph):
        """Inserting and deleting the same edge in one batch costs nothing."""
        engine = build_engine(engine_name, 15, small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        missing = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v)
        )
        report = engine.apply_batch([EdgeInsertion(*missing), EdgeDeletion(*missing)])
        assert report.num_adjustments == 0
        engine.verify()

    def test_batch_influenced_set_not_larger_than_sum_of_singles(
        self, engine_name, medium_random_graph
    ):
        sequence = mixed_churn_sequence(medium_random_graph, 40, seed=16)
        batched = build_engine(engine_name, 17, medium_random_graph)
        sequential = DynamicMIS(seed=17, initial_graph=medium_random_graph, engine=engine_name)
        batch_report = batched.apply_batch(sequence)
        total_single = sum(
            report.influenced_size for report in sequential.apply_sequence(sequence)
        )
        assert batched.mis() == sequential.mis()
        assert batch_report.influenced_size <= total_single + 1


def test_legacy_apply_batch_shim_still_drives_a_template_engine(small_random_graph):
    """repro.core.batch.apply_batch(engine, changes) keeps working."""
    engine = TemplateEngine(seed=18, initial_graph=small_random_graph)
    report = apply_batch(engine, mixed_churn_sequence(small_random_graph, 8, seed=18))
    engine.verify()
    assert report.batch_size == 8
