"""Runner, baseline, CLI and stdout-purity tests for ``repro-mis lint``.

The checker semantics live in ``test_lint_checkers.py``; this module covers
the surrounding machinery: exit codes, the committed-baseline accept/stale
flow, ``--write-baseline``, the argparse surface, and the satellite guarantee
that machine output stays alone on stdout for both ``repro-mis lint --format
json`` and ``benchmarks/report.py --json`` (checked with real subprocesses).
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    BaselineError,
    load_baseline,
    run_lint,
    run_lint_command,
    write_baseline,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def dirty_project(tmp_path):
    """A tree with exactly one determinism finding (an unseeded RNG)."""
    target = tmp_path / "src" / "repro" / "core" / "rand.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import random

            def draw():
                return random.Random().random()
            """
        )
    )
    return tmp_path


def run_command(root, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_lint_command(root, stdout=out, stderr=err, **kwargs)
    return code, out.getvalue(), err.getvalue()


class TestExitCodesAndBaseline:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "ok.py").write_text("X = 1\n")
        code, out, err = run_command(tmp_path)
        assert code == 0
        assert "0 finding(s)" in out

    def test_new_finding_exits_one(self, dirty_project):
        code, out, err = run_command(dirty_project)
        assert code == 1
        assert "random.Random() without a seed" in out

    def test_baselined_finding_exits_zero(self, dirty_project):
        report = run_lint(dirty_project)
        baseline = dirty_project / "lint-baseline.json"
        write_baseline(baseline, report.findings)
        code, out, err = run_command(dirty_project)
        assert code == 0
        assert "1 baselined" in out
        assert f"baseline: {baseline}" in err

    def test_no_baseline_flag_ignores_the_committed_file(self, dirty_project):
        write_baseline(
            dirty_project / "lint-baseline.json", run_lint(dirty_project).findings
        )
        code, _, _ = run_command(dirty_project, no_baseline=True)
        assert code == 1

    def test_stale_entries_are_reported_without_failing(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "ok.py").write_text("X = 1\n")
        baseline = tmp_path / "lint-baseline.json"
        baseline.write_text(
            json.dumps({"version": 1, "findings": [{"fingerprint": "deadbeef00000000"}]})
        )
        code, out, err = run_command(tmp_path)
        assert code == 0
        assert "1 stale baseline entry" in out
        assert "deadbeef00000000" in err

    def test_write_baseline_round_trips(self, dirty_project):
        baseline = dirty_project / "accepted.json"
        code, _, err = run_command(dirty_project, write_baseline_path=baseline)
        assert code == 1  # the run that writes the baseline still reports it
        assert f"wrote baseline {baseline}" in err
        assert len(load_baseline(baseline)) == 1
        code, _, _ = run_command(dirty_project, baseline_path=baseline)
        assert code == 0

    def test_corrupt_baseline_raises_baseline_error(self, dirty_project):
        bad = dirty_project / "lint-baseline.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            run_command(dirty_project)

    def test_json_stdout_is_a_single_machine_document(self, dirty_project):
        code, out, err = run_command(dirty_project, output_format="json")
        assert code == 1
        document = json.loads(out)  # nothing but the document on stdout
        assert [f["check"] for f in document["findings"]] == ["determinism"]
        assert document["baselined"] == []
        assert document["stale_baseline"] == []


class TestCliSurface:
    def test_lint_subcommand_reports_and_exits_one(self, dirty_project, capsys):
        code = main(["lint", "--root", str(dirty_project), "--select", "determinism"])
        captured = capsys.readouterr()
        assert code == 1
        assert "random.Random() without a seed" in captured.out

    def test_unknown_checker_is_a_usage_error(self, tmp_path, capsys):
        code = main(["lint", "--root", str(tmp_path), "--select", "determinsm"])
        captured = capsys.readouterr()
        assert code == 2
        assert "repro-mis lint:" in captured.err
        assert "determinism" in captured.err  # did-you-mean hint
        assert captured.out == ""

    def test_corrupt_baseline_is_a_usage_error(self, dirty_project, capsys):
        (dirty_project / "lint-baseline.json").write_text("{}")
        code = main(["lint", "--root", str(dirty_project)])
        assert code == 2
        assert "repro-mis lint:" in capsys.readouterr().err

    def test_explicit_paths_narrow_the_scope(self, dirty_project, capsys):
        (dirty_project / "examples").mkdir()
        (dirty_project / "examples" / "ok.py").write_text("X = 1\n")
        code = main(["lint", "--root", str(dirty_project), "examples"])
        assert code == 0
        assert "across 1 files" in capsys.readouterr().out


class TestStdoutPurity:
    """Satellite guarantee: machine output is alone on stdout (pipeable)."""

    def run(self, argv, cwd=REPO_ROOT):
        return subprocess.run(
            argv,
            cwd=cwd,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_repro_mis_lint_json_stdout_is_pure(self):
        result = self.run([sys.executable, "-m", "repro", "lint", "--format", "json"])
        assert result.returncode == 0, result.stderr
        document = json.loads(result.stdout)  # would fail on any stray chatter
        assert document["findings"] == []
        # the baseline banner is diagnostic chatter and must be on stderr
        assert "baseline:" in result.stderr

    def test_benchmark_report_json_stdout_is_pure(self):
        result = self.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" / "report.py"), "--json"]
        )
        # pass/fail depends on the committed trajectory; purity must not
        assert result.returncode in (0, 1), result.stderr
        document = json.loads(result.stdout)  # would fail on any stray chatter
        assert isinstance(document["benchmarks"], list)
        assert isinstance(document["regressions"], list)
        # all progress chatter (per-benchmark rows, summary) is on stderr
        assert result.stderr.strip() != ""
