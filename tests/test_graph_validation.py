"""Unit tests for the structural validation helpers."""

from __future__ import annotations

import pytest

from repro.graph import generators, validation
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.validation import ValidationError


class TestIndependentSetChecks:
    def test_valid_independent_set(self, small_path):
        validation.check_independent_set(small_path, {0, 2, 4})

    def test_adjacent_members_rejected(self, small_path):
        with pytest.raises(ValidationError):
            validation.check_independent_set(small_path, {0, 1})

    def test_member_outside_graph_rejected(self, small_path):
        with pytest.raises(ValidationError):
            validation.check_independent_set(small_path, {0, 99})

    def test_maximality_ok(self, small_path):
        validation.check_maximality(small_path, {0, 2, 4})

    def test_maximality_violation(self, small_path):
        with pytest.raises(ValidationError):
            validation.check_maximality(small_path, {0})

    def test_full_mis_check(self, small_star):
        validation.check_maximal_independent_set(small_star, set(range(1, 7)))
        validation.check_maximal_independent_set(small_star, {0})
        with pytest.raises(ValidationError):
            validation.check_maximal_independent_set(small_star, {1, 2})


class TestMatchingChecks:
    def test_valid_matching(self, small_path):
        validation.check_matching(small_path, [(0, 1), (2, 3)])

    def test_non_edge_rejected(self, small_path):
        with pytest.raises(ValidationError):
            validation.check_matching(small_path, [(0, 2)])

    def test_overlapping_edges_rejected(self, small_path):
        with pytest.raises(ValidationError):
            validation.check_matching(small_path, [(0, 1), (1, 2)])

    def test_maximal_matching(self, small_path):
        validation.check_maximal_matching(small_path, [(0, 1), (2, 3)])
        with pytest.raises(ValidationError):
            validation.check_maximal_matching(small_path, [(1, 2)])


class TestColoringAndClusteringChecks:
    def test_proper_coloring(self, triangle):
        validation.check_proper_coloring(triangle, {0: 0, 1: 1, 2: 2})

    def test_improper_coloring(self, triangle):
        with pytest.raises(ValidationError):
            validation.check_proper_coloring(triangle, {0: 0, 1: 0, 2: 1})

    def test_missing_color(self, triangle):
        with pytest.raises(ValidationError):
            validation.check_proper_coloring(triangle, {0: 0, 1: 1})

    def test_clustering_covers_graph(self, triangle):
        validation.check_clustering(triangle, {0: 0, 1: 0, 2: 1})

    def test_clustering_missing_node(self, triangle):
        with pytest.raises(ValidationError):
            validation.check_clustering(triangle, {0: 0, 1: 0})

    def test_clustering_extra_node(self, triangle):
        with pytest.raises(ValidationError):
            validation.check_clustering(triangle, {0: 0, 1: 0, 2: 1, 99: 2})

    def test_partition_from_labels(self):
        partition = validation.partition_from_labels({1: "a", 2: "a", 3: "b"})
        assert partition == {"a": {1, 2}, "b": {3}}


class TestGraphConsistency:
    def test_generated_graphs_are_consistent(self):
        for name in generators.FAMILY_NAMES:
            validation.check_graph_consistency(generators.random_graph_family(name, 15, seed=2))

    def test_detects_broken_edge_count(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        graph._num_edges = 5  # deliberately corrupt the cached counter
        with pytest.raises(ValidationError):
            validation.check_graph_consistency(graph)
