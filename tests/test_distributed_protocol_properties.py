"""Property-based and fault-injection tests for the distributed protocols.

These complement the deterministic unit tests: hypothesis generates short
valid change scripts and all three distributed engines must keep simulating
the same random greedy process; fault-injection tests corrupt node state on
purpose and check that the validation layer notices.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.network import ProtocolError
from repro.distributed.node import NodeState
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph import generators
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    apply_change_to_graph,
)


@st.composite
def distributed_scripts(draw) -> Tuple[DynamicGraph, int, List]:
    """A small starting graph plus a short valid script of mixed changes."""
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    possible_edges = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    chosen = draw(st.lists(st.sampled_from(possible_edges), unique=True)) if possible_edges else []
    graph = DynamicGraph(nodes=range(num_nodes), edges=chosen)
    seed = draw(st.integers(min_value=0, max_value=5000))

    working = graph.copy()
    script: List = []
    fresh = 0
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        nodes = sorted(working.nodes(), key=repr)
        options = ["insert_node", "unmute_node"]
        if len(nodes) >= 2:
            options.extend(["insert_edge", "delete_node"])
        if working.num_edges() > 0:
            options.append("delete_edge")
        action = draw(st.sampled_from(options))
        if action in ("insert_node", "unmute_node"):
            fresh += 1
            name = f"d{fresh}"
            neighbors = tuple(draw(st.lists(st.sampled_from(nodes), unique=True))) if nodes else ()
            change = (
                NodeInsertion(name, neighbors)
                if action == "insert_node"
                else NodeUnmuting(name, neighbors)
            )
        elif action == "insert_edge":
            missing = [
                (u, v)
                for i, u in enumerate(nodes)
                for v in nodes[i + 1 :]
                if not working.has_edge(u, v)
            ]
            if not missing:
                continue
            change = EdgeInsertion(*draw(st.sampled_from(missing)))
        elif action == "delete_edge":
            u, v = draw(st.sampled_from(working.edges()))
            change = EdgeDeletion(u, v, graceful=draw(st.booleans()))
        else:
            change = NodeDeletion(draw(st.sampled_from(nodes)), graceful=draw(st.booleans()))
        apply_change_to_graph(working, change)
        script.append(change)
    return graph, seed, script


PROTOCOL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@PROTOCOL_SETTINGS
@given(distributed_scripts())
def test_buffered_protocol_tracks_sequential_semantics(case):
    graph, seed, script = case
    network = BufferedMISNetwork(seed=seed, initial_graph=graph)
    reference = DynamicMIS(seed=seed, initial_graph=graph)
    for change in script:
        network.apply(change)
        reference.apply(change)
        assert network.mis() == reference.mis()
    network.verify()


@PROTOCOL_SETTINGS
@given(distributed_scripts())
def test_async_protocol_tracks_sequential_semantics(case):
    graph, seed, script = case
    network = AsyncDirectMISNetwork(seed=seed, initial_graph=graph)
    reference = DynamicMIS(seed=seed, initial_graph=graph)
    for change in script:
        network.apply(change)
        reference.apply(change)
        assert network.mis() == reference.mis()
    network.verify()


@PROTOCOL_SETTINGS
@given(distributed_scripts())
def test_buffered_protocol_broadcast_budget(case):
    """Every change stays within the Lemma 9/13 style budget: discovery plus
    three state changes per node that ever got involved."""
    graph, seed, script = case
    network = BufferedMISNetwork(seed=seed, initial_graph=graph)
    for change in script:
        metrics = network.apply(change)
        involved = max(metrics.state_changes, 1)
        discovery = 2 + (len(getattr(change, "neighbors", ())) or 0)
        assert metrics.broadcasts <= discovery + involved + 1
        assert metrics.state_changes <= 3 * (metrics.adjustments + network.graph.num_nodes())


class TestFaultInjection:
    def test_corrupted_output_is_detected(self, small_random_graph):
        network = BufferedMISNetwork(seed=3, initial_graph=small_random_graph)
        victim = next(iter(small_random_graph.nodes()))
        runtime = network.node_runtime(victim)
        runtime.state = NodeState.M if runtime.state is NodeState.M_BAR else NodeState.M_BAR
        with pytest.raises(AssertionError):
            network.verify()

    def test_node_stuck_in_transient_state_is_detected(self, small_random_graph):
        network = DirectMISNetwork(seed=4, initial_graph=small_random_graph)
        victim = sorted(network.mis(), key=repr)[0]
        network.node_runtime(victim).state = NodeState.C
        with pytest.raises(AssertionError):
            network.verify()

    def test_round_cap_raises_protocol_error(self, small_random_graph):
        network = BufferedMISNetwork(seed=5, initial_graph=small_random_graph)
        network.ROUND_CAP_FACTOR = 0
        network.ROUND_CAP_SLACK = 0
        victim = sorted(network.mis(), key=repr)[0]
        with pytest.raises(ProtocolError):
            network.apply(NodeDeletion(victim, graceful=True))

    def test_sequential_verify_detects_corruption(self, small_random_graph):
        maintainer = DynamicMIS(seed=6, initial_graph=small_random_graph)
        engine = maintainer._engine  # white-box corruption on purpose
        states = engine.states()
        victim = next(iter(states))
        engine._states[victim] = not engine._states[victim]
        with pytest.raises(AssertionError):
            maintainer.verify()


class TestRuntimeKnowledgeAfterChanges:
    def test_neighbor_views_stay_consistent_with_topology(self, small_random_graph):
        from repro.workloads.sequences import mixed_churn_sequence

        network = BufferedMISNetwork(seed=7, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 50, seed=8):
            network.apply(change)
            for node in network.graph.nodes():
                runtime = network.node_runtime(node)
                assert runtime.neighbors == set(network.graph.neighbors(node))
                # At stability the node knows every neighbor's key and output state.
                assert set(runtime.neighbor_keys) >= runtime.neighbors
                for other in runtime.neighbors:
                    assert runtime.neighbor_states[other] in (NodeState.M, NodeState.M_BAR)
                    assert runtime.neighbor_states[other] is NodeState.M or not (
                        network.node_runtime(other).in_mis()
                    )

    def test_unmuted_node_does_not_trigger_reintroductions(self):
        graph = generators.star_graph(6)
        network = BufferedMISNetwork(seed=9, initial_graph=graph)
        metrics = network.apply(NodeUnmuting("ghost", (0, 1, 2)))
        network.verify()
        # The neighbors never re-broadcast their IDs (requests_introduction is
        # False), so the budget is the unmuted node's own announcements plus
        # the usual three state changes per influenced node.
        assert metrics.broadcasts <= 2 + 3 * (metrics.state_changes + 1)
