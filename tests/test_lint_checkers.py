"""Positive/negative fixture tests for the ``repro-mis lint`` checker suite.

Each checker gets at least one fixture tree that must produce a finding and
one that must stay clean, exercising exactly the contract the checker's
docstring states.  The fixtures are tiny synthetic projects written under
``tmp_path`` with the real layout (``src/repro/...``, ``benchmarks/``,
``examples/``) so path-scoped rules fire the same way they do on the repo.

The repo's own tree is covered too: ``test_repo_tree_is_clean`` runs the full
suite over the real checkout and requires zero non-baselined findings, which
is the invariant CI enforces.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    available_checkers,
    parse_suppressions,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_project(root: Path, files: dict) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


def findings_for(root: Path, checker: str):
    return run_lint(root, select=[checker]).findings


class TestDeterminism:
    def test_unseeded_and_global_random_are_flagged(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/rand.py": """
                import random

                def draw(items):
                    rng = random.Random()
                    random.shuffle(items)
                    return rng
                """
            },
        )
        messages = [f.message for f in findings_for(tmp_path, "determinism")]
        assert any("random.Random() without a seed" in m for m in messages)
        assert any("random.shuffle" in m for m in messages)

    def test_seeded_rng_is_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/rand.py": """
                import random

                def draw(seed):
                    return random.Random(seed).random()
                """
            },
        )
        assert findings_for(tmp_path, "determinism") == []

    def test_wall_clock_in_core_is_flagged_but_not_in_benchmarks(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/clock.py": """
                import time

                def stamp():
                    return time.time()
                """,
                "benchmarks/bench_timing.py": """
                import time

                def measure():
                    return time.perf_counter()
                """,
            },
        )
        found = findings_for(tmp_path, "determinism")
        assert len(found) == 1
        assert found[0].path == "src/repro/core/clock.py"
        assert "[wall-clock]" in found[0].message

    def test_set_iteration_flagged_and_sorted_or_reduced_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/iters.py": """
                def bad(mapping):
                    out = []
                    for value in mapping.values():
                        out.append(value)
                    return out

                def sorted_is_fine(mapping):
                    return [v for v in sorted(mapping.values())]

                def reducer_is_fine(mapping):
                    return sum(v for v in mapping.values())
                """
            },
        )
        found = findings_for(tmp_path, "determinism")
        assert len(found) == 1
        assert found[0].symbol == "bad"
        assert "[set-iteration]" in found[0].message

    def test_bare_set_expression_iteration_is_flagged(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/distributed/sets.py": """
                def bad(a, b):
                    for node in set(a) | set(b):
                        yield node
                """
            },
        )
        found = findings_for(tmp_path, "determinism")
        assert len(found) == 1
        assert "bare set expression" in found[0].message

    def test_float_eq_on_priorities_without_key_escape_is_flagged(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/ties.py": """
                def bad(prio, u, v):
                    if prio[u] == prio[v]:
                        return u
                    return v
                """
            },
        )
        found = findings_for(tmp_path, "determinism")
        assert len(found) == 1
        assert "[float-eq]" in found[0].message

    def test_float_eq_escaping_to_full_keys_is_sanctioned(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/ties.py": """
                def good(prio, keys, u, v):
                    if prio[u] < prio[v] or (prio[u] == prio[v] and keys[u] < keys[v]):
                        return u
                    return v

                def mask(prio_np, a, b):
                    ties = prio_np[a] == prio_np[b]
                    return ties

                def invariant(self, nid):
                    assert self._prio[nid] == self._keys[nid][0]
                """
            },
        )
        assert findings_for(tmp_path, "determinism") == []


class TestCheckpointParity:
    def test_restore_dropping_a_networksnapshot_field_is_flagged(self, tmp_path):
        # A near-copy of the simulators' NetworkSnapshot restore shape with
        # one field deliberately dropped from restore(): the acceptance
        # scenario for this checker.
        make_project(
            tmp_path,
            {
                "src/repro/distributed/mini.py": """
                class MiniNetwork:
                    def __init__(self):
                        self._states = {}
                        self._knowledge = {}
                        self._metrics = []

                    def snapshot(self):
                        return {
                            "states": dict(self._states),
                            "knowledge": dict(self._knowledge),
                            "metrics": list(self._metrics),
                        }

                    def restore(self, snapshot):
                        self._states = dict(snapshot["states"])
                        self._knowledge = dict(snapshot["knowledge"])
                        # _metrics deliberately dropped
                """
            },
        )
        found = findings_for(tmp_path, "checkpoint-parity")
        assert len(found) == 1
        assert found[0].symbol == "MiniNetwork._metrics"
        assert "never written by restore()" in found[0].message
        assert "never read by snapshot()" not in found[0].message

    def test_full_coverage_is_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/distributed/mini.py": """
                class MiniNetwork:
                    def __init__(self):
                        self._states = {}

                    def snapshot(self):
                        return dict(self._states)

                    def restore(self, snapshot):
                        self._states = dict(snapshot)
                """
            },
        )
        assert findings_for(tmp_path, "checkpoint-parity") == []

    def test_transient_waiver_silences_the_attribute(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/distributed/mini.py": """
                class MiniNetwork:
                    def __init__(self):
                        self._states = {}
                        self._cache = {}  # repro-lint: transient -- derived, rebuilt lazily

                    def snapshot(self):
                        return dict(self._states)

                    def restore(self, snapshot):
                        self._states = dict(snapshot)
                """
            },
        )
        report = run_lint(tmp_path, select=["checkpoint-parity"])
        assert report.findings == []
        assert report.suppressed == 1

    def test_coverage_through_self_method_closure_counts(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/distributed/mini.py": """
                class MiniNetwork:
                    def __init__(self):
                        self._states = {}

                    def _collect(self):
                        return dict(self._states)

                    def snapshot(self):
                        return self._collect()

                    def restore(self, snapshot):
                        self._states = dict(snapshot)
                """
            },
        )
        assert findings_for(tmp_path, "checkpoint-parity") == []

    def test_protocol_stubs_are_skipped(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/api.py": """
                class Checkpointable:
                    def __init__(self):
                        self._anything = 1

                    def snapshot(self):
                        raise NotImplementedError

                    def restore(self, snapshot):
                        raise NotImplementedError
                """
            },
        )
        assert findings_for(tmp_path, "checkpoint-parity") == []


class TestRegistryDiscipline:
    FIXTURE = {
        "src/repro/distributed/scheduler.py": """
        class FancyScheduler:
            def __init__(self, seed=0):
                self.seed = seed

        def register_scheduler(name, factory, params=()):
            pass

        register_scheduler("fancy", FancyScheduler, ("seed",))

        def _default():
            return FancyScheduler(0)
        """,
    }

    def test_direct_construction_in_benchmarks_is_flagged(self, tmp_path):
        make_project(
            tmp_path,
            {
                **self.FIXTURE,
                "benchmarks/bench_sched.py": """
                from repro.distributed.scheduler import FancyScheduler

                def run():
                    return FancyScheduler(3)
                """,
            },
        )
        found = findings_for(tmp_path, "registry-discipline")
        assert len(found) == 1
        assert found[0].path == "benchmarks/bench_sched.py"
        assert "create_scheduler" in found[0].message

    def test_defining_module_and_front_door_call_are_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                **self.FIXTURE,
                "benchmarks/bench_sched.py": """
                from repro.distributed.scheduler import create_scheduler

                def run():
                    return create_scheduler("fancy", seed=3)
                """,
            },
        )
        assert findings_for(tmp_path, "registry-discipline") == []

    def test_factory_registered_backends_are_discovered(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/impl.py": """
                class ImplEngine:
                    pass
                """,
                "src/repro/core/api.py": """
                def register_engine(name, factory):
                    pass

                def _impl_factory(priorities=None, initial_graph=None):
                    from repro.core.impl import ImplEngine

                    return ImplEngine()

                register_engine("impl", _impl_factory)
                """,
                "examples/use.py": """
                from repro.core.impl import ImplEngine

                engine = ImplEngine()
                """,
            },
        )
        found = findings_for(tmp_path, "registry-discipline")
        assert len(found) == 1
        assert found[0].path == "examples/use.py"
        assert "create_engine" in found[0].message

    def test_registry_front_door_classes_are_exempt(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/distributed/network.py": """
                def resolve_network(name, protocol):
                    pass

                def register_network(name, thing):
                    pass

                class FrontDoor:
                    def __new__(cls, **kwargs):
                        factory = resolve_network("dict", "buffered")
                        return factory(**kwargs)

                class SubDoor(FrontDoor):
                    pass

                register_network("front", FrontDoor)
                register_network("sub", SubDoor)
                """,
                "examples/use.py": """
                from repro.distributed.network import FrontDoor, SubDoor

                a = FrontDoor(seed=1)
                b = SubDoor(seed=2)
                """,
            },
        )
        assert findings_for(tmp_path, "registry-discipline") == []


class TestWireProtocol:
    BROKEN = {
        "src/repro/service/protocol.py": """
        ERROR_KINDS = ("bad-request", "not-found")
        """,
        "src/repro/service/client.py": """
        class ServiceClientError(Exception):
            def __init__(self, message, kind="protocol"):
                self.kind = kind

        class ServiceClient:
            def request(self, op, **payload):
                pass

            def ping(self):
                return self.request("ping")

            def boom(self):
                return self.request("boom")

            def shutdown(self):
                return self.request("shutdown")

            def _fail(self):
                raise ServiceClientError("unreachable", kind="connection")
        """,
        "src/repro/service/host.py": """
        class SessionHost:
            OPS = {"ping": "_op_ping", "zombie": "_op_zombie", "ghost": "_op_missing"}

            def _op_ping(self, payload):
                pass

            def _op_zombie(self, payload):
                pass
        """,
        "src/repro/service/daemon.py": """
        from repro.service import protocol

        def dispatch(op):
            if op == "shutdown":
                return protocol.error("going down", "bogus")
        """,
    }

    def test_drifted_surface_produces_each_finding_kind(self, tmp_path):
        make_project(tmp_path, self.BROKEN)
        messages = [f.message for f in findings_for(tmp_path, "wire-protocol")]
        assert any("'boom'" in m and "neither SessionHost.OPS" in m for m in messages)
        assert any("'_op_missing'" in m for m in messages)
        assert any("'zombie'" in m and "dead wire surface" in m for m in messages)
        assert any("'bogus'" in m and "ERROR_KINDS" in m for m in messages)
        # the client-only transport kind never counts as drift
        assert not any("'connection'" in m for m in messages)

    def test_consistent_surface_is_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/service/protocol.py": """
                ERROR_KINDS = ("bad-request", "not-found")
                """,
                "src/repro/service/client.py": """
                class ServiceClient:
                    def request(self, op, **payload):
                        pass

                    def ping(self):
                        return self.request("ping")

                    def shutdown(self):
                        return self.request("shutdown")
                """,
                "src/repro/service/host.py": """
                class SessionHost:
                    OPS = {"ping": "_op_ping"}

                    def _op_ping(self, payload):
                        pass
                """,
                "src/repro/service/daemon.py": """
                from repro.service import protocol

                def dispatch(op):
                    if op == "shutdown":
                        return protocol.error("going down", "bad-request")
                """,
            },
        )
        assert findings_for(tmp_path, "wire-protocol") == []

    def test_trees_without_the_service_layer_are_skipped(self, tmp_path):
        make_project(
            tmp_path,
            {"src/repro/core/thing.py": "X = 1\n"},
        )
        assert findings_for(tmp_path, "wire-protocol") == []


class TestSharedPlanes:
    def test_object_store_into_plane_is_flagged(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/parallel/kern.py": """
                def kernel(planes, start, stop, params):
                    planes["state"] = {}
                    view = planes["e_state"]
                    view[0] = "label"
                """
            },
        )
        messages = [f.message for f in findings_for(tmp_path, "shared-planes")]
        assert len(messages) == 2
        assert any("a dict" in m for m in messages)
        assert any("a str" in m for m in messages)

    def test_flat_scalar_stores_are_clean(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/parallel/kern.py": """
                def kernel(planes, start, stop, params):
                    view = planes["e_state"]
                    view[0] = 1.0
                    view[1:3] = computed(params)
                """
            },
        )
        assert findings_for(tmp_path, "shared-planes") == []

    def test_importers_of_repro_parallel_are_in_scope(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/scenario/fanout.py": """
                from repro.parallel.pool import WorkerPool

                def publish(pool):
                    plane = pool.ensure("e_state", 64)
                    plane[0] = lambda: None
                """
            },
        )
        found = findings_for(tmp_path, "shared-planes")
        assert len(found) == 1
        assert "a function object" in found[0].message


class TestSuppressionsAndFingerprints:
    def test_parse_suppressions_grammar(self):
        source = (
            "x = 1  # repro-lint: determinism -- accepted\n"
            "y = 2  # repro-lint: determinism, registry-discipline\n"
            "z = 3  # repro-lint: all\n"
        )
        suppressions = parse_suppressions(source)
        assert suppressions[1].covers("determinism")
        assert not suppressions[1].covers("registry-discipline")
        assert suppressions[2].covers("registry-discipline")
        assert suppressions[3].covers("wire-protocol")

    def test_transient_alias_maps_to_checkpoint_parity(self):
        suppressions = parse_suppressions("a = 1  # repro-lint: transient -- scratch\n")
        assert suppressions[1].covers("checkpoint-parity")
        assert not suppressions[1].covers("determinism")

    def test_fingerprint_ignores_the_line_number(self):
        one = Finding(check="determinism", path="a.py", line=3, col=0, message="m", symbol="f")
        two = Finding(check="determinism", path="a.py", line=90, col=4, message="m", symbol="f")
        other = Finding(check="determinism", path="a.py", line=3, col=0, message="n", symbol="f")
        assert one.fingerprint == two.fingerprint
        assert one.fingerprint != other.fingerprint

    def test_suppression_is_counted_not_dropped(self, tmp_path):
        make_project(
            tmp_path,
            {
                "src/repro/core/rand.py": """
                import random

                def draw(items):
                    random.shuffle(items)  # repro-lint: determinism -- fixture
                """
            },
        )
        report = run_lint(tmp_path, select=["determinism"])
        assert report.findings == []
        assert report.suppressed == 1


class TestRepoSelfCheck:
    def test_all_five_checkers_are_registered(self):
        assert set(available_checkers()) >= {
            "determinism",
            "checkpoint-parity",
            "registry-discipline",
            "wire-protocol",
            "shared-planes",
        }

    @pytest.mark.slow
    def test_repo_tree_is_clean(self):
        report = run_lint(REPO_ROOT)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings on the repo tree:\n{rendered}"

    def test_syntax_errors_become_findings(self, tmp_path):
        make_project(tmp_path, {"src/repro/core/broken.py": "def f(:\n"})
        report = run_lint(tmp_path)
        assert [f.check for f in report.findings] == ["syntax"]
