"""Unit tests for the network snapshot/restore layer (``repro.distributed.state``).

The end-to-end resume equality lives in the conformance suite
(``tests/conformance/test_protocol_differential.py``) and the session tests;
this file pins down the contract edges: the :class:`Checkpointable`
protocol, snapshot content equality across backends, the protocol-mismatch
and quiescence guards, and the restorable event-sequence cursor.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.state_api import Checkpointable, EventSequence
from repro.distributed.network_api import create_network
from repro.distributed.scheduler import (
    AdversarialDelayScheduler,
    UnknownSchedulerError,
    create_scheduler,
)
from repro.distributed.state import NetworkSnapshot, NetworkStateError
from repro.graph.generators import erdos_renyi_graph

GRAPH = erdos_renyi_graph(18, 0.2, seed=3)


def _simulator(protocol: str, network: str):
    kwargs = {"seed": 9, "initial_graph": GRAPH}
    if protocol == "async-direct":
        kwargs["scheduler"] = AdversarialDelayScheduler(4)
    return create_network(protocol, network=network, **kwargs)


class TestCheckpointableProtocol:
    @pytest.mark.parametrize("network", ["dict", "fast"])
    @pytest.mark.parametrize("protocol", ["buffered", "direct", "async-direct"])
    def test_every_registered_simulator_satisfies_it(self, protocol, network):
        assert isinstance(_simulator(protocol, network), Checkpointable)

    def test_engines_satisfy_it_too(self):
        from repro.core.engine_api import available_engines, create_engine

        for name in available_engines():
            assert isinstance(create_engine(name), Checkpointable)


class TestSnapshotContent:
    @pytest.mark.parametrize("protocol", ["buffered", "direct", "async-direct"])
    def test_dict_and_fast_snapshots_agree_field_for_field(self, protocol):
        # The snapshot is the observable state, so two observably identical
        # simulators must produce equal snapshots (up to node/edge order).
        dict_snap = _simulator(protocol, "dict").snapshot()
        fast_snap = _simulator(protocol, "fast").snapshot()
        assert dict_snap.protocol == fast_snap.protocol == protocol
        assert sorted(dict_snap.nodes) == sorted(fast_snap.nodes)
        assert sorted(dict_snap.edges) == sorted(fast_snap.edges)
        assert dict_snap.states == fast_snap.states
        assert dict_snap.priority_keys == fast_snap.priority_keys
        assert dict_snap.knowledge == fast_snap.knowledge
        assert dict_snap.pending == () == fast_snap.pending

    def test_stability_invariant_holds_in_the_snapshot(self):
        # At quiescence every node knows every neighbor's key and current
        # output -- the captured knowledge must equal the captured states.
        snapshot = _simulator("buffered", "dict").snapshot()
        for (node, neighbor), (heard, key_known) in snapshot.knowledge.items():
            assert key_known, (node, neighbor)
            assert heard == snapshot.states[neighbor]

    def test_snapshot_is_a_value_not_a_view(self):
        from repro.workloads.changes import EdgeDeletion

        simulator = _simulator("buffered", "fast")
        snapshot = simulator.snapshot()
        edges_before = tuple(snapshot.edges)
        u, v = simulator.graph.edges()[0]
        simulator.apply(EdgeDeletion(u, v))
        assert snapshot.edges == edges_before
        assert len(snapshot.metrics) == 0  # records applied later don't leak in


class TestRestoreGuards:
    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_protocol_mismatch_is_rejected(self, network):
        snapshot = _simulator("buffered", network).snapshot()
        direct = create_network("direct", network=network, seed=9)
        with pytest.raises(NetworkStateError, match="protocol"):
            direct.restore(snapshot)

    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_engine_snapshots_are_rejected(self, network):
        from repro.core.dynamic_mis import DynamicMIS

        engine_snapshot = DynamicMIS(seed=1, initial_graph=GRAPH).engine.snapshot()
        simulator = create_network("buffered", network=network, seed=9)
        with pytest.raises(NetworkStateError, match="NetworkSnapshot"):
            simulator.restore(engine_snapshot)

    @pytest.mark.parametrize("network", ["dict", "fast"])
    def test_non_quiescent_snapshots_are_rejected(self, network):
        snapshot = _simulator("buffered", network).snapshot()
        states = dict(snapshot.states)
        states[snapshot.nodes[0]] = "C"
        broken = dataclasses.replace(snapshot, states=states)
        simulator = create_network("buffered", network=network, seed=9)
        with pytest.raises(NetworkStateError, match="transient"):
            simulator.restore(broken)

    def test_torn_knowledge_is_rejected(self):
        snapshot = _simulator("buffered", "dict").snapshot()
        knowledge = dict(snapshot.knowledge)
        knowledge[("ghost", "ghoul")] = ("M", True)
        broken = dataclasses.replace(snapshot, knowledge=knowledge)
        simulator = create_network("buffered", network="dict", seed=9)
        with pytest.raises(NetworkStateError, match="topology"):
            simulator.restore(broken)

    def test_restore_replaces_prior_state_wholesale(self):
        simulator = _simulator("buffered", "fast")
        snapshot = simulator.snapshot()
        other = create_network(
            "buffered", network="fast", seed=9, initial_graph=erdos_renyi_graph(7, 0.5, seed=1)
        )
        other.restore(snapshot)
        assert other.states() == simulator.states()
        assert sorted(other.graph.edges()) == sorted(simulator.graph.edges())
        other.check_interning_invariants()


class TestEventSequence:
    def test_counts_and_restores(self):
        sequence = EventSequence()
        assert [next(sequence) for _ in range(3)] == [0, 1, 2]
        resumed = EventSequence(sequence.value)
        assert next(resumed) == 3

    def test_rejects_negative_starts(self):
        with pytest.raises(ValueError):
            EventSequence(-1)

    def test_is_its_own_iterator(self):
        sequence = EventSequence(5)
        assert iter(sequence) is sequence


class TestSchedulerFactory:
    def test_builds_every_kind(self):
        assert create_scheduler("fixed", delay_value=2.0).delay("a", "b", 0) == 2.0
        assert create_scheduler("random", seed=3).delay("a", "b", 0) > 0
        adversarial = create_scheduler("adversarial", seed=3, slow_fraction=0.5)
        assert adversarial.delay("a", "b", 0) == adversarial.delay("a", "b", 99)

    def test_unknown_kind_has_did_you_mean(self):
        with pytest.raises(UnknownSchedulerError, match="did you mean 'fixed'"):
            create_scheduler("fixd")

    def test_unknown_param_has_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'delay_value'"):
            create_scheduler("fixed", delay_valu=1.0)


class TestSchedulerState:
    """The resumable-scheduler contract behind exact async resume."""

    def test_stateless_kinds_report_none(self):
        for scheduler in (
            create_scheduler("fixed", delay_value=2.0),
            create_scheduler("adversarial", seed=3),
        ):
            assert scheduler.getstate() is None
            scheduler.setstate(None)  # a no-op, not an error
            with pytest.raises(ValueError, match="stateless"):
                scheduler.setstate(("uniform-rng", ()))

    def test_random_scheduler_round_trips_its_stream(self):
        scheduler = create_scheduler("random", seed=3)
        scheduler.delay("a", "b", 0)
        state = scheduler.getstate()
        expected = [scheduler.delay("a", "b", sequence) for sequence in range(1, 6)]
        scheduler.setstate(state)
        replayed = [scheduler.delay("a", "b", sequence) for sequence in range(1, 6)]
        assert replayed == expected

    def test_random_scheduler_restores_onto_a_fresh_instance(self):
        source = create_scheduler("random", seed=3)
        for sequence in range(7):
            source.delay("x", "y", sequence)
        fresh = create_scheduler("random", seed=999)
        fresh.setstate(source.getstate())
        assert fresh.delay("x", "y", 7) == source.delay("x", "y", 7)

    def test_random_scheduler_accepts_json_shaped_state(self):
        # The checkpoint codec hands tuples back as (possibly nested) lists
        # of ints; setstate must coerce them for random.Random.
        source = create_scheduler("random", seed=3)
        source.delay("a", "b", 0)
        tag, (version, internal, gauss) = source.getstate()
        fresh = create_scheduler("random", seed=0)
        fresh.setstate((tag, (version, list(internal), gauss)))
        assert fresh.delay("a", "b", 1) == source.delay("a", "b", 1)

    def test_random_scheduler_rejects_foreign_state(self):
        scheduler = create_scheduler("random", seed=3)
        with pytest.raises(ValueError, match="uniform-rng"):
            scheduler.setstate(("some-other-scheduler", ()))

    def test_async_snapshot_carries_the_scheduler_state(self):
        from repro.workloads.changes import EdgeInsertion

        simulator = create_network("async-direct", network="fast", seed=9, initial_graph=GRAPH)
        nodes = sorted(GRAPH.nodes())
        simulator.apply(EdgeInsertion(nodes[0], nodes[2]))
        snapshot = simulator.snapshot()
        assert snapshot.scheduler_state is not None
        assert snapshot.scheduler_state[0] == "uniform-rng"
        resumed = create_network("async-direct", network="fast", seed=1)
        resumed.restore(snapshot)
        assert resumed._scheduler.getstate() == snapshot.scheduler_state

    def test_synchronous_snapshots_have_no_scheduler_state(self):
        assert _simulator("buffered", "dict").snapshot().scheduler_state is None
        assert _simulator("direct", "fast").snapshot().scheduler_state is None


def test_snapshot_counts_and_records():
    simulator = _simulator("buffered", "dict")
    snapshot = simulator.snapshot()
    assert isinstance(snapshot, NetworkSnapshot)
    assert snapshot.num_nodes == GRAPH.num_nodes()
    assert snapshot.num_changes == 0
