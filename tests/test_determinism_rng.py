"""Seed plumbing and determinism regression tests.

The reproduction's claims are all *per seed*: replaying the same seed must be
bit-identical -- same priorities, same MIS trajectory, same
``MaintainerStatistics``.  These tests pin that down end-to-end for both
engine backends and for numpy ``Generator`` seeds, so a refactor that
accidentally introduces module-level randomness or order-dependent state on
the hot path fails loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.dynamic_mis import DynamicMIS, MaintainerStatistics
from repro.core.priorities import RandomPriorityAssigner
from repro.core.rng import normalize_seed, spawn_seeds
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import mixed_churn_sequence


def _run(seed, engine: str) -> tuple:
    graph = erdos_renyi_graph(25, 0.15, seed=3)
    changes = mixed_churn_sequence(graph, 120, seed=4)
    maintainer = DynamicMIS(seed=seed, initial_graph=graph, engine=engine)
    maintainer.apply_sequence(changes)
    return maintainer.mis(), maintainer.statistics


def _statistics_tuple(statistics: MaintainerStatistics) -> tuple:
    return tuple(
        tuple(getattr(statistics, field.name))
        for field in dataclasses.fields(MaintainerStatistics)
    )


@pytest.mark.parametrize("engine", ["template", "fast"])
def test_same_seed_identical_statistics(engine: str) -> None:
    mis_a, stats_a = _run(17, engine)
    mis_b, stats_b = _run(17, engine)
    assert mis_a == mis_b
    assert _statistics_tuple(stats_a) == _statistics_tuple(stats_b)
    assert stats_a.num_changes == 120


@pytest.mark.parametrize("engine", ["template", "fast"])
def test_numpy_generator_seed_is_deterministic(engine: str) -> None:
    np = pytest.importorskip("numpy")
    mis_a, stats_a = _run(np.random.default_rng(99), engine)
    mis_b, stats_b = _run(np.random.default_rng(99), engine)
    assert mis_a == mis_b
    assert _statistics_tuple(stats_a) == _statistics_tuple(stats_b)


def test_generator_seed_matches_equivalent_int_seed() -> None:
    np = pytest.importorskip("numpy")
    generator = np.random.default_rng(7)
    drawn = normalize_seed(np.random.default_rng(7))
    mis_gen, stats_gen = _run(generator, "fast")
    mis_int, stats_int = _run(drawn, "fast")
    assert mis_gen == mis_int
    assert _statistics_tuple(stats_gen) == _statistics_tuple(stats_int)


def test_normalize_seed_accepted_plain_types() -> None:
    assert normalize_seed(None) == 0
    assert normalize_seed(5) == 5
    assert normalize_seed(True) == 1
    with pytest.raises(TypeError):
        normalize_seed("a string")
    with pytest.raises(TypeError):
        normalize_seed(1.5)


def test_normalize_seed_accepted_numpy_types() -> None:
    np = pytest.importorskip("numpy")
    assert normalize_seed(np.int64(9)) == 9
    assert isinstance(normalize_seed(np.random.default_rng(1)), int)
    assert isinstance(normalize_seed(np.random.SeedSequence(2)), int)


def test_spawn_seeds_deterministic_and_distinct() -> None:
    seeds = spawn_seeds(42, 50)
    assert seeds == spawn_seeds(42, 50)
    assert len(set(seeds)) == 50
    assert seeds[:10] == spawn_seeds(42, 10)


def test_spawn_seeds_from_numpy_seed_sequence() -> None:
    np = pytest.importorskip("numpy")
    assert spawn_seeds(np.random.SeedSequence(42), 3) == spawn_seeds(
        np.random.SeedSequence(42), 3
    )


def test_priority_assigner_accepts_generator() -> None:
    np = pytest.importorskip("numpy")
    assigner_a = RandomPriorityAssigner(np.random.default_rng(5))
    assigner_b = RandomPriorityAssigner(np.random.default_rng(5))
    assert assigner_a.seed == assigner_b.seed
    assert assigner_a.assign("node") == assigner_b.assign("node")
