"""Smoke tests: every example script must run end to end and print its report.

The examples are part of the public deliverable, so the suite executes each
one in-process (importing it from the ``examples/`` directory) and checks that
it completes and produces the headline sections of its output.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "example_name, expected_fragments",
    [
        ("quickstart", ["Dynamic MIS under 300 topology changes", "Why dynamic beats recompute"]),
        (
            "sensor_network_scheduling",
            ["Algorithm 2: repair cost per sensor-network event", "Total repair cost comparison"],
        ),
        (
            "overlay_clustering",
            ["Correlation-clustering disagreement cost", "per-change maintenance cost"],
        ),
        (
            "scenario_session",
            [
                "Same scenario across backends",
                "Checkpoint/resume is exact",
                "yes (asserted)",
            ],
        ),
        (
            "matching_and_coloring",
            [
                "History-independent maximal matching",
                "History-independent frequency assignment",
                "produced 1 distinct matching(s)",
            ],
        ),
    ],
)
def test_example_runs_and_reports(example_name, expected_fragments, capsys):
    module = _load_example(example_name)
    module.main()
    output = capsys.readouterr().out
    for fragment in expected_fragments:
        assert fragment in output
