"""Smoke tests: every example script must run end to end and print its report.

The examples are part of the public deliverable, so the suite executes each
one in-process (importing it from the ``examples/`` directory) and checks that
it completes and produces the headline sections of its output.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "example_name, expected_fragments",
    [
        ("quickstart", ["Dynamic MIS under 300 topology changes", "Why dynamic beats recompute"]),
        (
            "sensor_network_scheduling",
            ["Algorithm 2: repair cost per sensor-network event", "Total repair cost comparison"],
        ),
        (
            "overlay_clustering",
            ["Correlation-clustering disagreement cost", "per-change maintenance cost"],
        ),
        (
            "scenario_session",
            [
                "Same scenario across backends",
                "Checkpoint/resume is exact",
                "yes (asserted)",
            ],
        ),
        (
            "service_client",
            [
                "daemon listening on tcp:",
                "evicted to spool checkpoints",
                "After restart: resume is exact",
                "yes (asserted)",
            ],
        ),
        (
            "matching_and_coloring",
            [
                "History-independent maximal matching",
                "History-independent frequency assignment",
                "produced 1 distinct matching(s)",
            ],
        ),
    ],
)
def test_example_runs_and_reports(example_name, expected_fragments, capsys):
    module = _load_example(example_name)
    module.main()
    output = capsys.readouterr().out
    for fragment in expected_fragments:
        assert fragment in output


def test_adversary_async_spec_runs_end_to_end():
    """The shipped adaptive + async + adversarial-scheduler spec is runnable
    as-is (the exact path ``repro-mis run --scenario`` takes), and its
    session checkpoints -- the tentpole surface in one example file."""
    from repro.scenario import ScenarioSpec, Session

    spec = ScenarioSpec.load(EXAMPLES_DIR / "scenario_specs" / "adversary_async.json")
    assert spec.workload.kind == "adaptive_adversary"
    assert spec.backend.scheduler["kind"] == "adversarial"
    session = Session(spec)
    for _ in range(10):
        session.step()
    checkpoint = session.checkpoint()
    assert checkpoint.workload_state is not None
    result = Session.resume(checkpoint).run()
    assert result.verified
    assert result.num_changes == spec.workload.num_changes


def test_sliding_window_spec_runs_end_to_end():
    from repro.scenario import ScenarioSpec, run_scenario

    spec = ScenarioSpec.load(EXAMPLES_DIR / "scenario_specs" / "sliding_window.json")
    result = run_scenario(spec)
    assert result.verified
    assert result.num_changes == spec.workload.num_changes
