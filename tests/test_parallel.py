"""Tests of the shared-memory evaluation pool (:mod:`repro.parallel`).

The load-bearing claims, each machine-checked here:

* pool mechanics -- engagement thresholds, serial configurations, plane
  growth/retirement, and the broken-worker fallback that keeps a dead pool
  from ever failing a run;
* **bit-identical parity**: the batched repair wave and the synchronous
  protocol rounds produce exactly the same outputs with ``workers=2`` and
  ``workers=4`` as serially, under the adversarial conformance workload
  (free-list id reuse, deletion bursts against the live MIS) -- via the same
  differential harnesses that tie the fast backends to the paper-shaped
  ones;
* spec plumbing: ``ParallelSpec`` round-trips, rejects unknown keys with a
  hint, and a :class:`~repro.scenario.session.Session` attaches (or strictly
  refuses) the pool per its backend.
"""

from __future__ import annotations

from array import array

import pytest

from repro.core.engine_api import register_engine, unregister_engine
from repro.core.fast_engine import FastEngine
from repro.distributed.network_api import register_network, unregister_network
from repro.parallel import (
    DESIRED_IN,
    DESIRED_OUT,
    KERNELS,
    POOL_BACKENDS,
    WorkerPool,
)
from repro.scenario.spec import (
    BackendSpec,
    GraphSpec,
    ParallelSpec,
    ScenarioSpec,
    ScenarioSpecError,
    WorkloadSpec,
)
from repro.scenario.session import Session
from repro.testing.differential import conformance_workload, replay_batch_differential
from repro.testing.protocol_differential import replay_protocol_differential


# ----------------------------------------------------------------------
# Pool mechanics
# ----------------------------------------------------------------------
class TestPoolMechanics:
    def test_serial_configurations_never_engage(self):
        for pool in (
            WorkerPool(workers=0),
            WorkerPool(workers=1),
            WorkerPool(workers=4, backend="serial"),
        ):
            assert not pool.engaged(10_000)
            assert pool.run("engine_desired", 10_000) is False
            assert not pool.broken  # declining is not failing
            pool.close()

    def test_engagement_threshold_is_twice_min_chunk(self):
        pool = WorkerPool(workers=2, min_chunk=4)
        assert not pool.engaged(7)
        assert pool.engaged(8)
        pool.close()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="unknown pool backend"):
            WorkerPool(backend="threads")
        with pytest.raises(ValueError, match="min_chunk"):
            WorkerPool(min_chunk=0)
        pool = WorkerPool(workers=2, min_chunk=1)
        with pytest.raises(ValueError, match="unknown kernel"):
            pool.run("no_such_kernel", 100)
        pool.close()

    def test_pool_backends_constant(self):
        assert POOL_BACKENDS == ("fork", "spawn", "serial")
        assert set(KERNELS) == {"engine_desired", "engine_desired_csr", "network_guards"}

    def test_engine_kernel_matches_manual_evaluation(self):
        # A 5-node path graph: state alternates, priorities strictly ordered.
        num = 5
        state = bytes([1, 0, 1, 0, 0])
        prio = array("d", [0.1, 0.2, 0.3, 0.4, 0.5])
        adjacency = [[1], [0, 2], [1, 3], [2, 4], [3]]
        indptr = array("q", [0])
        indices = array("q")
        for row in adjacency:
            indices.extend(row)
            indptr.append(len(indices))
        frontier = array("q", range(num))

        pool = WorkerPool(workers=2, min_chunk=1)
        pool.publish("e_state", state)
        pool.publish("e_prio", prio.tobytes())
        pool.publish("e_indptr", indptr.tobytes())
        pool.publish("e_indices", indices.tobytes())
        pool.publish("e_frontier", frontier.tobytes())
        pool.ensure("e_out", num)
        assert pool.run("engine_desired", num) is True
        codes = bytes(pool.view("e_out"))
        pool.close()

        # Desired == no earlier in-MIS neighbor, computed longhand.
        expected = []
        for nid in range(num):
            earlier_in = any(
                state[m] and prio[m] < prio[nid] for m in adjacency[nid]
            )
            expected.append(DESIRED_OUT if earlier_in else DESIRED_IN)
        assert list(codes) == expected

    def test_csr_kernel_matches_indptr_kernel(self):
        # Same 5-node path graph, but published through the slacked CSR
        # layout (starts/lengths, rows padded with garbage slack entries that
        # the kernel must not read).
        num = 5
        state = bytes([1, 0, 1, 0, 0])
        prio = array("d", [0.1, 0.2, 0.3, 0.4, 0.5])
        adjacency = [[1], [0, 2], [1, 3], [2, 4], [3]]
        starts = array("q")
        lengths = array("q")
        indices = array("q")
        for row in adjacency:
            starts.append(len(indices))
            lengths.append(len(row))
            indices.extend(row)
            indices.append(-1)  # slack: must never be dereferenced
        frontier = array("q", range(num))

        pool = WorkerPool(workers=2, min_chunk=1)
        pool.publish("e_state", state)
        pool.publish("e_prio", prio.tobytes())
        pool.publish("e_starts", starts.tobytes())
        pool.publish("e_lengths", lengths.tobytes())
        pool.publish("e_indices", indices.tobytes())
        pool.publish("e_frontier", frontier.tobytes())
        pool.ensure("e_out", num)
        assert pool.run("engine_desired_csr", num) is True
        codes = bytes(pool.view("e_out"))
        pool.close()

        expected = []
        for nid in range(num):
            earlier_in = any(
                state[m] and prio[m] < prio[nid] for m in adjacency[nid]
            )
            expected.append(DESIRED_OUT if earlier_in else DESIRED_IN)
        assert list(codes) == expected

    def test_planes_grow_and_retire_segments(self):
        pool = WorkerPool(workers=2, min_chunk=1)
        pool.publish("e_state", bytes([1, 0]))
        pool.publish("e_prio", array("d", [0.1, 0.2]).tobytes())
        pool.publish("e_indptr", array("q", [0, 1, 2]).tobytes())
        pool.publish("e_indices", array("q", [1, 0]).tobytes())
        pool.publish("e_frontier", array("q", [0, 1]).tobytes())
        pool.ensure("e_out", 2)
        assert pool.run("engine_desired", 2) is True

        # Outgrow every input plane: a 6000-node star (well past one 4 KiB
        # segment for the int64 planes), forcing segment replacement.
        num = 6000
        state = bytes([0]) * num
        prio = array("d", [float(i + 1) for i in range(num)])
        indptr = array("q", [0, num - 1] + [num - 1 + i for i in range(1, num)])
        indices = array("q", list(range(1, num)) + [0] * (num - 1))
        pool.publish("e_state", state)
        pool.publish("e_prio", prio.tobytes())
        pool.publish("e_indptr", indptr.tobytes())
        pool.publish("e_indices", indices.tobytes())
        pool.publish("e_frontier", array("q", range(num)).tobytes())
        pool.ensure("e_out", num)
        assert pool.run("engine_desired", num) is True
        codes = bytes(pool.view("e_out"))
        # Nobody is in the MIS yet, so every node wants in.
        assert set(codes) == {DESIRED_IN}
        assert pool.tasks_run == 2
        pool.close()

    def test_broken_worker_degrades_to_serial(self, monkeypatch):
        def _boom(planes, start, stop, params):
            raise RuntimeError("kernel exploded")

        # Fork workers inherit the patched table (the pool starts lazily on
        # the first run, after the patch).
        monkeypatch.setitem(KERNELS, "engine_desired", _boom)
        pool = WorkerPool(workers=2, min_chunk=1, backend="fork")
        pool.publish("e_state", bytes(8))
        pool.publish("e_prio", array("d", [0.0] * 8).tobytes())
        pool.publish("e_indptr", array("q", [0] * 9).tobytes())
        pool.publish("e_indices", b"")
        pool.publish("e_frontier", array("q", range(8)).tobytes())
        pool.ensure("e_out", 8)
        assert pool.run("engine_desired", 8) is False
        assert pool.broken
        assert "kernel exploded" in (pool.last_error or "")
        # Broken pools never engage again -- callers stay on the serial path.
        assert not pool.engaged(10_000)
        assert pool.run("engine_desired", 8) is False
        pool.close()


# ----------------------------------------------------------------------
# ParallelSpec plumbing
# ----------------------------------------------------------------------
class TestParallelSpec:
    def test_roundtrip(self):
        spec = ParallelSpec(workers=4, min_chunk=64, backend="spawn")
        assert ParallelSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = ParallelSpec.from_dict({})
        assert (spec.workers, spec.min_chunk, spec.backend) == (0, 256, "fork")

    def test_unknown_key_hint(self):
        with pytest.raises(ScenarioSpecError, match="did you mean 'workers'"):
            ParallelSpec.from_dict({"workerz": 2})

    def test_invalid_values(self):
        with pytest.raises(ScenarioSpecError):
            ParallelSpec(workers=-1).validate()
        with pytest.raises(ScenarioSpecError):
            ParallelSpec(min_chunk=0).validate()
        with pytest.raises(ScenarioSpecError, match="backend"):
            ParallelSpec(backend="threads").validate()

    def test_build_pool_serial_cases(self):
        assert ParallelSpec(workers=0).build_pool() is None
        assert ParallelSpec(workers=1).build_pool() is None
        assert ParallelSpec(workers=4, backend="serial").build_pool() is None
        pool = ParallelSpec(workers=2, min_chunk=8).build_pool()
        assert pool is not None and pool.workers == 2 and pool.min_chunk == 8
        pool.close()

    def test_backend_spec_roundtrip_with_parallel(self):
        backend = BackendSpec(
            runner="sequential",
            engine="fast",
            parallel=ParallelSpec(workers=2),
        )
        record = backend.to_dict()
        assert record["parallel"] == {"workers": 2, "min_chunk": 256, "backend": "fork"}
        assert BackendSpec.from_dict(record) == backend
        # Without a parallel block the key is absent (old checkpoint files
        # re-encode byte-identically).
        assert "parallel" not in BackendSpec(runner="sequential").to_dict()

    def test_async_direct_rejects_parallel(self):
        with pytest.raises(ScenarioSpecError, match="asynchronous"):
            BackendSpec(
                runner="protocol",
                protocol="async-direct",
                scheduler={"kind": "fixed"},
                parallel=ParallelSpec(workers=2),
            ).validate()


# ----------------------------------------------------------------------
# Differential parity: parallel == serial, bit for bit
# ----------------------------------------------------------------------
@pytest.fixture
def parallel_engine(request):
    """Register ``fast-par``: a FastEngine with an attached 2/4-worker pool."""
    workers = request.param
    pools = []

    def factory(**kwargs):
        engine = FastEngine(**kwargs)
        pool = WorkerPool(workers=workers, min_chunk=1)
        engine.attach_parallel(pool)
        pools.append(pool)
        return engine

    register_engine("fast-par", factory, overwrite=True)
    yield pools
    unregister_engine("fast-par")
    for pool in pools:
        pool.close()


@pytest.mark.parametrize("parallel_engine", [2, 4], indirect=True)
def test_batch_repair_wave_parallel_matches_serial(parallel_engine):
    # The conformance workload maximizes free-list churn and influenced-set
    # propagation: node delete-then-reinsert, adversarial MIS-deletion bursts.
    graph, changes = conformance_workload(seed=11, num_changes=160, start_nodes=32)
    replay_batch_differential(
        graph, changes, seed=11, engines=("fast", "fast-par"), max_batch=12
    )
    assert sum(pool.tasks_run for pool in parallel_engine) > 0
    assert not any(pool.broken for pool in parallel_engine)


def test_batch_repair_wave_parallel_csr_matches_serial():
    """A pooled engine with a CSR mirror publishes the mirror planes and runs
    the ``engine_desired_csr`` kernel — still bit-identical to serial fast."""
    pytest.importorskip("numpy")
    pools = []

    def factory(**kwargs):
        engine = FastEngine(csr=True, **kwargs)
        pool = WorkerPool(workers=2, min_chunk=1)
        engine.attach_parallel(pool)
        pools.append(pool)
        return engine

    register_engine("fast-csr-par", factory, overwrite=True)
    try:
        graph, changes = conformance_workload(seed=17, num_changes=160, start_nodes=32)
        replay_batch_differential(
            graph, changes, seed=17, engines=("fast", "fast-csr-par"), max_batch=12
        )
    finally:
        unregister_engine("fast-csr-par")
        for pool in pools:
            pool.close()
    assert sum(pool.tasks_run for pool in pools) > 0
    assert not any(pool.broken for pool in pools)


@pytest.fixture
def parallel_network(request):
    """Register ``fast-par``: fast network cores with attached worker pools."""
    workers = request.param
    from repro.distributed.fast_network import (
        FastBufferedMISNetwork,
        FastDirectMISNetwork,
    )

    pools = []

    def _attach(network):
        pool = WorkerPool(workers=workers, min_chunk=1)
        network.attach_parallel(pool)
        pools.append(pool)
        return network

    register_network(
        "fast-par",
        {
            "buffered": lambda **kw: _attach(FastBufferedMISNetwork(**kw)),
            "direct": lambda **kw: _attach(FastDirectMISNetwork(**kw)),
        },
        overwrite=True,
    )
    yield pools
    unregister_network("fast-par")
    for pool in pools:
        pool.close()


@pytest.mark.parametrize("parallel_network", [2, 4], indirect=True)
@pytest.mark.parametrize("protocol", ["buffered", "direct"])
def test_protocol_rounds_parallel_match_serial(parallel_network, protocol):
    graph, changes = conformance_workload(seed=23, num_changes=60, start_nodes=24)
    replay_protocol_differential(
        graph,
        changes,
        seed=23,
        protocol=protocol,
        networks=("fast", "fast-par"),
    )
    assert sum(pool.tasks_run for pool in parallel_network) > 0
    assert not any(pool.broken for pool in parallel_network)


def test_parallel_engine_survives_broken_pool(monkeypatch):
    """A pool that dies mid-run must not change outputs -- only speed."""

    def _boom(planes, start, stop, params):
        raise RuntimeError("mid-run failure")

    monkeypatch.setitem(KERNELS, "engine_desired", _boom)

    def factory(**kwargs):
        engine = FastEngine(**kwargs)
        engine.attach_parallel(WorkerPool(workers=2, min_chunk=1))
        return engine

    register_engine("fast-broken-pool", factory, overwrite=True)
    try:
        graph, changes = conformance_workload(seed=5, num_changes=60, start_nodes=24)
        replay_batch_differential(
            graph, changes, seed=5, engines=("fast", "fast-broken-pool"), max_batch=8
        )
    finally:
        unregister_engine("fast-broken-pool")


# ----------------------------------------------------------------------
# Property-based parity (hypothesis)
# ----------------------------------------------------------------------
try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the base image
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_parallel_engine_parity(seed):
        pools = []

        def factory(**kwargs):
            engine = FastEngine(**kwargs)
            pool = WorkerPool(workers=2, min_chunk=1)
            engine.attach_parallel(pool)
            pools.append(pool)
            return engine

        register_engine("fast-par-prop", factory, overwrite=True)
        try:
            graph, changes = conformance_workload(
                seed=seed, num_changes=40, start_nodes=16
            )
            replay_batch_differential(
                graph,
                changes,
                seed=seed,
                engines=("fast", "fast-par-prop"),
                max_batch=6,
                check_clustering=False,
                check_against_sequence=False,
            )
        finally:
            unregister_engine("fast-par-prop")
            for pool in pools:
                pool.close()


# ----------------------------------------------------------------------
# Session-level wiring
# ----------------------------------------------------------------------
def _spec(backend, batch=12):
    return ScenarioSpec(
        name="parallel-smoke",
        seed=7,
        graph=GraphSpec(family="erdos_renyi", nodes=48, seed=3),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=96, seed=5),
        backend=backend,
        batch_size=batch,
    )


class TestSessionWiring:
    def test_sequential_smoke_at_two_workers(self):
        parallel = Session(
            _spec(
                BackendSpec(
                    runner="sequential",
                    engine="fast",
                    parallel=ParallelSpec(workers=2, min_chunk=1),
                )
            )
        )
        result = parallel.run()
        assert result.verified
        assert parallel.parallel_pool is not None
        assert parallel.parallel_pool.tasks_run > 0
        serial = Session(_spec(BackendSpec(runner="sequential", engine="fast")))
        baseline = serial.run()
        assert result.final_mis_size == baseline.final_mis_size
        assert result.summary == baseline.summary

    def test_protocol_smoke_at_two_workers(self):
        parallel = Session(
            _spec(
                BackendSpec(
                    runner="protocol",
                    protocol="buffered",
                    network="fast",
                    parallel=ParallelSpec(workers=2, min_chunk=1),
                ),
                batch=0,
            )
        )
        result = parallel.run()
        assert result.verified
        assert parallel.parallel_pool.tasks_run > 0
        serial = Session(
            _spec(
                BackendSpec(runner="protocol", protocol="buffered", network="fast"),
                batch=0,
            )
        )
        baseline = serial.run()
        assert result.final_mis_size == baseline.final_mis_size
        assert result.summary == baseline.summary

    def test_explicit_parallel_block_is_strict(self):
        with pytest.raises(ScenarioSpecError, match="does not support parallel"):
            Session(
                _spec(
                    BackendSpec(
                        runner="sequential",
                        engine="template",
                        parallel=ParallelSpec(workers=2),
                    )
                )
            )

    def test_default_workers_is_best_effort(self):
        # The dict network has no pool support: the hint silently no-ops.
        session = Session(
            _spec(
                BackendSpec(runner="protocol", protocol="buffered", network="dict"),
                batch=0,
            ),
            default_workers=2,
        )
        assert session.parallel_pool is None
        # The fast engine supports it: the hint attaches a pool.
        session = Session(
            _spec(BackendSpec(runner="sequential", engine="fast")),
            default_workers=2,
        )
        assert session.parallel_pool is not None
        session.parallel_pool.close()

    def test_serial_parallel_block_attaches_nothing(self):
        session = Session(
            _spec(
                BackendSpec(
                    runner="sequential",
                    engine="fast",
                    parallel=ParallelSpec(workers=1),
                )
            )
        )
        assert session.parallel_pool is None
