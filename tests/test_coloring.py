"""Tests for the history-independent dynamic (Delta+1)-coloring."""

from __future__ import annotations

import pytest

from repro.coloring.dynamic_coloring import DynamicColoring, total_adjustments
from repro.coloring.greedy_coloring import (
    adversarial_first_fit_coloring,
    first_fit_coloring,
    num_colors_used,
    random_greedy_coloring,
)
from repro.graph import generators
from repro.graph.validation import check_proper_coloring
from repro.workloads.changes import EdgeDeletion, EdgeInsertion, NodeDeletion, NodeInsertion


class TestSequentialBaselines:
    def test_first_fit_is_proper(self, small_random_graph):
        order = sorted(small_random_graph.nodes())
        colors = first_fit_coloring(small_random_graph, order)
        check_proper_coloring(small_random_graph, colors)
        assert num_colors_used(colors) <= small_random_graph.max_degree() + 1

    def test_first_fit_requires_complete_order(self, small_random_graph):
        with pytest.raises(ValueError):
            first_fit_coloring(small_random_graph, sorted(small_random_graph.nodes())[:-1])

    def test_random_greedy_is_proper(self, small_random_graph, any_seed):
        colors = random_greedy_coloring(small_random_graph, seed=any_seed)
        check_proper_coloring(small_random_graph, colors)

    def test_random_greedy_two_colors_bipartite_minus_matching(self):
        """Example 3: random greedy 2-colors the graph with probability 1 - 1/n."""
        graph = generators.complete_bipartite_minus_matching(6)
        two_colorings = 0
        trials = 60
        for seed in range(trials):
            colors = random_greedy_coloring(graph, seed=seed)
            check_proper_coloring(graph, colors)
            if num_colors_used(colors) == 2:
                two_colorings += 1
        assert two_colorings >= trials * 0.75

    def test_adversarial_order_forces_many_colors(self):
        side = 6
        graph = generators.complete_bipartite_minus_matching(side)
        colors = adversarial_first_fit_coloring(graph, side)
        check_proper_coloring(graph, colors)
        assert num_colors_used(colors) == side

    def test_adversarial_order_requires_matching_structure(self):
        with pytest.raises(ValueError):
            adversarial_first_fit_coloring(generators.path_graph(5), 2)


class TestDynamicColoring:
    def test_initial_coloring_is_proper(self):
        graph = generators.erdos_renyi_graph(12, 0.25, seed=3)
        coloring = DynamicColoring(num_colors=graph.max_degree() + 1, seed=1, initial_graph=graph)
        coloring.verify()

    def test_every_node_gets_exactly_one_color(self):
        graph = generators.cycle_graph(7)
        coloring = DynamicColoring(num_colors=3, seed=2, initial_graph=graph)
        colors = coloring.colors()
        assert set(colors) == set(graph.nodes())
        assert all(0 <= color < 3 for color in colors.values())
        assert coloring.color_of(0) == colors[0]

    def test_edge_changes_keep_coloring_proper(self):
        graph = generators.cycle_graph(8)
        coloring = DynamicColoring(num_colors=4, seed=3, initial_graph=graph)
        coloring.apply(EdgeDeletion(0, 1))
        coloring.verify()
        coloring.apply(EdgeInsertion(0, 4))
        coloring.verify()
        assert coloring.graph.has_edge(0, 4)

    def test_node_changes_keep_coloring_proper(self):
        graph = generators.path_graph(6)
        coloring = DynamicColoring(num_colors=4, seed=4, initial_graph=graph)
        coloring.apply(NodeInsertion("x", (0, 2)))
        coloring.verify()
        coloring.apply(NodeDeletion(3))
        coloring.verify()
        assert not coloring.graph.has_node(3)

    def test_palette_guard_fires(self):
        graph = generators.star_graph(3)
        coloring = DynamicColoring(num_colors=4, seed=5, initial_graph=graph)
        with pytest.raises(ValueError):
            coloring.insert_node("extra", (0,))  # center would reach degree 4

    def test_apply_dispatch_and_unknown_type(self):
        coloring = DynamicColoring(num_colors=3, seed=6, initial_graph=generators.path_graph(3))
        reports = coloring.apply(EdgeDeletion(0, 1))
        assert total_adjustments(reports) >= 0
        with pytest.raises(TypeError):
            coloring.apply(object())

    def test_coloring_survives_long_edge_churn(self):
        graph = generators.near_regular_graph(14, 3, seed=7)
        palette = 14  # generous so churn never violates the degree bound
        coloring = DynamicColoring(num_colors=palette, seed=8, initial_graph=graph)
        from repro.workloads.sequences import edge_churn_sequence

        for change in edge_churn_sequence(graph, 25, seed=9):
            coloring.apply(change)
            coloring.verify()

    def test_number_of_colors_is_delta_plus_one_at_most(self):
        graph = generators.erdos_renyi_graph(12, 0.3, seed=10)
        palette = graph.max_degree() + 1
        coloring = DynamicColoring(num_colors=palette, seed=11, initial_graph=graph)
        assert num_colors_used(coloring.colors()) <= palette
