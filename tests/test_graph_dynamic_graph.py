"""Unit tests for the mutable undirected graph store."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph, GraphError, canonical_edge
from repro.graph.validation import check_graph_consistency


class TestConstruction:
    def test_empty_graph(self):
        graph = DynamicGraph()
        assert graph.num_nodes() == 0
        assert graph.num_edges() == 0
        assert graph.nodes() == []
        assert graph.edges() == []

    def test_nodes_only(self):
        graph = DynamicGraph(nodes=[1, 2, 3])
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 0
        assert sorted(graph.nodes()) == [1, 2, 3]

    def test_nodes_and_edges(self):
        graph = DynamicGraph(nodes=[1, 2, 3], edges=[(1, 2), (2, 3)])
        assert graph.num_edges() == 2
        assert graph.has_edge(1, 2)
        assert graph.has_edge(3, 2)
        assert not graph.has_edge(1, 3)

    def test_edges_add_missing_endpoints(self):
        graph = DynamicGraph(edges=[("a", "b")])
        assert graph.has_node("a")
        assert graph.has_node("b")
        assert graph.num_edges() == 1

    def test_duplicate_edges_in_constructor_are_deduplicated(self):
        graph = DynamicGraph(edges=[(1, 2), (2, 1)])
        assert graph.num_edges() == 1


class TestCanonicalEdge:
    def test_orders_comparable_nodes(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_handles_mixed_types_via_repr(self):
        edge_one = canonical_edge("x", 3)
        edge_two = canonical_edge(3, "x")
        assert edge_one == edge_two


class TestMutations:
    def test_add_node_twice_raises(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_node(1)

    def test_add_edge_missing_endpoint_raises(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_edge(1, 2)

    def test_add_duplicate_edge_raises(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        with pytest.raises(GraphError):
            graph.add_edge(2, 1)

    def test_self_loop_rejected(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_remove_edge(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        graph.remove_edge(2, 1)
        assert graph.num_edges() == 0
        assert not graph.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        graph = DynamicGraph(nodes=[1, 2])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 2)

    def test_remove_node_returns_old_neighbors(self):
        graph = DynamicGraph(nodes=[1, 2, 3], edges=[(1, 2), (1, 3)])
        neighbors = graph.remove_node(1)
        assert neighbors == frozenset({2, 3})
        assert graph.num_nodes() == 2
        assert graph.num_edges() == 0

    def test_remove_missing_node_raises(self):
        graph = DynamicGraph()
        with pytest.raises(GraphError):
            graph.remove_node(42)

    def test_add_node_with_edges(self):
        graph = DynamicGraph(nodes=[1, 2])
        graph.add_node_with_edges(3, [1, 2])
        assert graph.degree(3) == 2
        assert graph.has_edge(3, 1)

    def test_add_node_with_unknown_neighbor_raises(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_node_with_edges(2, [1, 99])

    def test_add_node_with_duplicate_neighbors_raises(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_node_with_edges(2, [1, 1])

    def test_add_node_with_self_neighbor_raises(self):
        graph = DynamicGraph(nodes=[1])
        with pytest.raises(GraphError):
            graph.add_node_with_edges(2, [2])

    def test_version_increases_on_mutation(self):
        graph = DynamicGraph()
        initial = graph.version
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2)
        graph.remove_edge(1, 2)
        graph.remove_node(1)
        assert graph.version == initial + 5


class TestQueries:
    def test_degree_and_neighbors(self):
        graph = DynamicGraph(nodes=[1, 2, 3], edges=[(1, 2), (1, 3)])
        assert graph.degree(1) == 2
        assert graph.neighbors(1) == frozenset({2, 3})
        assert graph.degree(2) == 1

    def test_degree_of_missing_node_raises(self):
        graph = DynamicGraph()
        with pytest.raises(GraphError):
            graph.degree(1)

    def test_neighbors_of_missing_node_raises(self):
        graph = DynamicGraph()
        with pytest.raises(GraphError):
            graph.neighbors(1)

    def test_max_degree(self):
        graph = DynamicGraph(nodes=[1, 2, 3, 4], edges=[(1, 2), (1, 3), (1, 4)])
        assert graph.max_degree() == 3
        assert DynamicGraph().max_degree() == 0

    def test_contains_len_iter(self):
        graph = DynamicGraph(nodes=[1, 2, 3])
        assert 2 in graph
        assert 9 not in graph
        assert len(graph) == 3
        assert sorted(graph) == [1, 2, 3]

    def test_edges_are_canonical_and_unique(self):
        graph = DynamicGraph(nodes=[1, 2, 3], edges=[(3, 1), (2, 1)])
        assert graph.edges() == [(1, 2), (1, 3)]

    def test_repr_contains_counts(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        assert "num_nodes=2" in repr(graph)
        assert "num_edges=1" in repr(graph)


class TestDerived:
    def test_copy_is_independent(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        clone = graph.copy()
        clone.remove_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_equality_by_structure(self):
        first = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        second = DynamicGraph(nodes=[2, 1], edges=[(2, 1)])
        assert first == second
        second.add_node(3)
        assert first != second

    def test_equality_against_other_type(self):
        graph = DynamicGraph()
        assert graph.__eq__(42) is NotImplemented

    def test_subgraph(self):
        graph = DynamicGraph(nodes=[1, 2, 3, 4], edges=[(1, 2), (2, 3), (3, 4)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 2
        assert not sub.has_node(4)

    def test_subgraph_ignores_missing_nodes(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        sub = graph.subgraph([1, 2, 99])
        assert sub.num_nodes() == 2

    def test_connected_components(self):
        graph = DynamicGraph(nodes=[1, 2, 3, 4, 5], edges=[(1, 2), (3, 4)])
        components = sorted(graph.connected_components(), key=lambda c: sorted(map(repr, c)))
        assert {1, 2} in components
        assert {3, 4} in components
        assert {5} in components

    def test_adjacency_dict_is_a_snapshot(self):
        graph = DynamicGraph(nodes=[1, 2], edges=[(1, 2)])
        snapshot = graph.adjacency_dict()
        graph.remove_edge(1, 2)
        assert snapshot[1] == frozenset({2})

    def test_consistency_check_passes(self):
        graph = DynamicGraph(nodes=range(6), edges=[(0, 1), (1, 2), (2, 3), (4, 5)])
        check_graph_consistency(graph)
