"""Unit tests for the shared benchmark harness (``benchmarks/harness.py``).

Covers the two scenario-era additions: ``run_scenario_session`` (the
benchmarks' entry into the declarative scenario API) and the ``emit_json`` overwrite
logging -- result files record the performance trajectory in git, so
overwriting one must report the previous values (on stderr -- stdout is for
machine output) instead of silently dropping them (the exact values
``report.py`` would have diffed against).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

HARNESS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "harness.py"

spec = importlib.util.spec_from_file_location("benchmark_harness", HARNESS_PATH)
harness = importlib.util.module_from_spec(spec)
sys.modules["benchmark_harness"] = harness
spec.loader.exec_module(harness)


class TestEmitJson:
    def test_first_write_is_silent(self, tmp_path, capsys):
        path = harness.emit_json("demo", {"per_change_us": 10.0}, results_dir=tmp_path)
        assert path.exists()
        assert "overwriting" not in capsys.readouterr().err
        document = json.loads(path.read_text())
        assert document["benchmark"] == "demo"
        assert document["results"] == {"per_change_us": 10.0}

    def test_overwrite_logs_the_previous_values(self, tmp_path, capsys):
        harness.emit_json(
            "demo",
            {"series": [{"n": 500, "per_change_us": 10.0, "speedup": 4.0}]},
            results_dir=tmp_path,
        )
        capsys.readouterr()
        harness.emit_json(
            "demo",
            {"series": [{"n": 500, "per_change_us": 15.0, "speedup": 6.0}]},
            results_dir=tmp_path,
        )
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout stays machine-pure
        output = captured.err
        assert "overwriting" in output
        assert "series[0].per_change_us: 10 -> 15" in output
        assert "series[0].speedup: 4 -> 6" in output
        assert "series[0].n" not in output  # unchanged values are not logged

    def test_overwrite_logs_dropped_values(self, tmp_path, capsys):
        harness.emit_json("demo", {"old_metric_us": 3.0}, results_dir=tmp_path)
        capsys.readouterr()
        harness.emit_json("demo", {"new_metric_us": 5.0}, results_dir=tmp_path)
        output = capsys.readouterr().err
        assert "dropped values" in output
        assert "old_metric_us" in output

    def test_corrupt_previous_file_does_not_block_the_write(self, tmp_path, capsys):
        target = tmp_path / "demo.json"
        target.write_text("{not json")
        path = harness.emit_json("demo", {"per_change_us": 1.0}, results_dir=tmp_path)
        assert json.loads(path.read_text())["results"] == {"per_change_us": 1.0}
        assert "overwriting" not in capsys.readouterr().err

    def test_long_change_lists_are_truncated(self, tmp_path, capsys):
        harness.emit_json(
            "demo", {f"metric_{i:02}_us": float(i) for i in range(40)}, results_dir=tmp_path
        )
        capsys.readouterr()
        harness.emit_json(
            "demo", {f"metric_{i:02}_us": float(i + 1) for i in range(40)}, results_dir=tmp_path
        )
        output = capsys.readouterr().err
        assert "more changed values" in output


class TestRunScenario:
    def test_runs_a_spec_and_returns_result_and_session(self):
        from repro.scenario import GraphSpec, ScenarioSpec, WorkloadSpec

        scenario = ScenarioSpec(
            name="harness-smoke",
            seed=4,
            graph=GraphSpec(family="erdos_renyi", nodes=12, seed=1),
            workload=WorkloadSpec(kind="edge_churn", num_changes=10, seed=2),
        )
        result, session = harness.run_scenario_session(scenario)
        assert result.num_changes == 10
        assert result.verified
        assert session.done
        assert session.mis() == session.maintainer.mis()

    def test_backend_grid_shares_the_workload(self):
        from repro.scenario import GraphSpec, ScenarioSpec, WorkloadSpec

        scenario = ScenarioSpec(
            seed=4,
            graph=GraphSpec(family="erdos_renyi", nodes=12, seed=1),
            workload=WorkloadSpec(kind="edge_churn", num_changes=10, seed=2),
        )
        _, template_session = harness.run_scenario_session(
            scenario.with_backend(engine="template")
        )
        _, fast_session = harness.run_scenario_session(scenario.with_backend(engine="fast"))
        assert template_session.changes == fast_session.changes
        assert template_session.states() == fast_session.states()
