"""Unit tests for the per-node runtime record."""

from __future__ import annotations

from repro.distributed.node import NodeRuntime, NodeState


def _runtime_with_neighbors() -> NodeRuntime:
    runtime = NodeRuntime(node_id="v", key=(0.5, 0, "'v'"), state=NodeState.M_BAR)
    runtime.add_neighbor("earlier_mis")
    runtime.add_neighbor("earlier_out")
    runtime.add_neighbor("later")
    runtime.learn_neighbor("earlier_mis", (0.1, 0, "'a'"), NodeState.M)
    runtime.learn_neighbor("earlier_out", (0.2, 0, "'b'"), NodeState.M_BAR)
    runtime.learn_neighbor("later", (0.9, 0, "'c'"), NodeState.M_BAR)
    return runtime


class TestNodeState:
    def test_output_states(self):
        assert NodeState.M.is_output
        assert NodeState.M_BAR.is_output
        assert not NodeState.C.is_output
        assert not NodeState.R.is_output


class TestLocalViews:
    def test_earlier_and_later_partition(self):
        runtime = _runtime_with_neighbors()
        assert runtime.known_earlier_neighbors() == {"earlier_mis", "earlier_out"}
        assert runtime.known_later_neighbors() == {"later"}

    def test_unknown_key_neighbors_are_excluded(self):
        runtime = _runtime_with_neighbors()
        runtime.add_neighbor("mystery")
        assert "mystery" not in runtime.known_earlier_neighbors()
        assert "mystery" not in runtime.known_later_neighbors()

    def test_neighbor_state_lookup(self):
        runtime = _runtime_with_neighbors()
        assert runtime.neighbor_state("earlier_mis") is NodeState.M
        assert runtime.neighbor_state("never_heard") is None

    def test_mis_invariant_view(self):
        runtime = _runtime_with_neighbors()
        assert not runtime.no_earlier_neighbor_in_mis()
        runtime.learn_neighbor("earlier_mis", None, NodeState.M_BAR)
        assert runtime.no_earlier_neighbor_in_mis()

    def test_earlier_neighbor_in_state(self):
        runtime = _runtime_with_neighbors()
        assert runtime.earlier_neighbor_in_state(NodeState.M)
        assert not runtime.earlier_neighbor_in_state(NodeState.C)

    def test_rule_three_and_four_guards(self):
        runtime = _runtime_with_neighbors()
        assert runtime.no_later_neighbor_in_c()
        assert runtime.all_earlier_neighbors_in_output_states()
        runtime.learn_neighbor("later", None, NodeState.C)
        assert not runtime.no_later_neighbor_in_c()
        runtime.learn_neighbor("earlier_out", None, NodeState.R)
        assert not runtime.all_earlier_neighbors_in_output_states()

    def test_in_mis(self):
        runtime = _runtime_with_neighbors()
        assert not runtime.in_mis()
        runtime.state = NodeState.M
        assert runtime.in_mis()


class TestKnowledgeUpdates:
    def test_learn_neighbor_partial_updates(self):
        runtime = NodeRuntime(node_id=1, key=(0.5, 0, "1"))
        runtime.add_neighbor(2)
        runtime.learn_neighbor(2, None, NodeState.M)
        assert 2 not in runtime.neighbor_keys
        assert runtime.neighbor_state(2) is NodeState.M
        runtime.learn_neighbor(2, (0.4, 0, "2"), None)
        assert runtime.neighbor_keys[2] == (0.4, 0, "2")
        assert runtime.neighbor_state(2) is NodeState.M

    def test_drop_neighbor_clears_all_knowledge(self):
        runtime = _runtime_with_neighbors()
        runtime.drop_neighbor("earlier_mis")
        assert "earlier_mis" not in runtime.neighbors
        assert "earlier_mis" not in runtime.neighbor_keys
        assert "earlier_mis" not in runtime.neighbor_states
        # Dropping an unknown neighbor is a no-op.
        runtime.drop_neighbor("never_there")

    def test_retiring_default(self):
        runtime = NodeRuntime(node_id=1, key=(0.1, 0, "1"))
        assert runtime.retiring is False
        assert runtime.entered_c_round is None
