"""Unit tests for the array-backed fast engine (interning, free list, views).

The step-by-step output equality with the template engine is covered by the
differential suite in ``tests/conformance/``; these tests pin down the fast
engine's own mechanics: id interning and free-list reuse, the graph view
facade, error paths, and the fast greedy reference used by the distributed
verification path.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.core.fast_engine import FastEngine, fast_greedy_mis
from repro.core.greedy import greedy_mis
from repro.core.invariant import InvariantViolation
from repro.core.priorities import RandomPriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.graph.generators import erdos_renyi_graph, path_graph, star_graph


def test_bootstrap_matches_template_on_random_graph(any_seed: int) -> None:
    graph = erdos_renyi_graph(25, 0.2, seed=any_seed)
    fast = DynamicMIS(seed=any_seed, initial_graph=graph, engine="fast")
    template = DynamicMIS(seed=any_seed, initial_graph=graph, engine="template")
    assert fast.mis() == template.mis()
    assert fast.states() == template.states()
    fast.verify()


def test_engine_name_and_unknown_engine() -> None:
    assert DynamicMIS(engine="fast").engine_name == "fast"
    assert DynamicMIS().engine_name == "template"
    with pytest.raises(ValueError):
        DynamicMIS(engine="turbo")


def test_free_list_reuses_slots() -> None:
    engine = FastEngine(seed=1)
    for label in range(6):
        engine.insert_node(label)
    assert engine.capacity() == 6
    for label in (1, 3, 5):
        engine.delete_node(label)
    assert engine.free_slots() == 3
    # Re-inserting (same or fresh labels) must reuse freed slots, not grow.
    engine.insert_node(1)
    engine.insert_node("fresh")
    assert engine.capacity() == 6
    assert engine.free_slots() == 1
    engine.check_interning_invariants()
    engine.verify()


def test_delete_then_reinsert_same_label_restores_priority() -> None:
    priorities = RandomPriorityAssigner(7)
    engine = FastEngine(priorities=priorities)
    engine.insert_node("v")
    key_before = priorities.key("v")
    engine.delete_node("v")
    assert not priorities.knows("v")
    engine.insert_node("v")
    assert priorities.key("v") == key_before
    assert engine.in_mis("v")


def test_error_paths_mirror_template() -> None:
    engine = FastEngine(seed=0)
    engine.insert_node("a")
    engine.insert_node("b")
    engine.insert_edge("a", "b")
    with pytest.raises(GraphError):
        engine.insert_edge("a", "b")
    with pytest.raises(GraphError):
        engine.insert_edge("a", "missing")
    with pytest.raises(GraphError):
        engine.insert_edge("a", "a")
    with pytest.raises(GraphError):
        engine.insert_node("a")
    with pytest.raises(GraphError):
        engine.insert_node("c", ["missing"])
    with pytest.raises(GraphError):
        engine.insert_node("c", ["a", "a"])
    with pytest.raises(GraphError):
        engine.delete_edge("a", "missing")
    with pytest.raises(GraphError):
        engine.delete_node("missing")
    engine.check_interning_invariants()


def test_verify_detects_corrupted_state() -> None:
    graph = path_graph(4)
    engine = FastEngine(seed=3, initial_graph=graph)
    engine.verify()
    victim = next(iter(engine.mis()))
    engine._state[engine._id_of[victim]] ^= 1
    with pytest.raises(InvariantViolation):
        engine.verify()


def test_graph_view_matches_dynamic_graph() -> None:
    graph = erdos_renyi_graph(15, 0.25, seed=4)
    engine = FastEngine(seed=4, initial_graph=graph)
    view = engine.graph
    assert view.num_nodes() == graph.num_nodes()
    assert view.num_edges() == graph.num_edges()
    assert sorted(view.nodes()) == sorted(graph.nodes())
    assert view.edges() == graph.edges()
    assert view.max_degree() == graph.max_degree()
    for node in graph.nodes():
        assert view.has_node(node)
        assert view.degree(node) == graph.degree(node)
        assert view.neighbors(node) == graph.neighbors(node)
        assert set(view.iter_neighbors(node)) == set(graph.iter_neighbors(node))
    assert len(view) == len(graph)
    assert set(view) == set(graph)
    assert ("x" in view) is False
    materialized = view.copy()
    assert isinstance(materialized, DynamicGraph)
    assert materialized == graph


def test_clustering_matches_template_view() -> None:
    graph = star_graph(5)
    fast = DynamicMIS(seed=2, initial_graph=graph, engine="fast")
    template = DynamicMIS(seed=2, initial_graph=graph, engine="template")
    assert fast.clustering() == template.clustering()
    fast.delete_node(0)  # drop the hub; every leaf becomes its own center
    template.delete_node(0)
    assert fast.clustering() == template.clustering()


def test_apply_batch_native_on_fast_engine() -> None:
    """The fast engine applies batches natively (no template fallback)."""
    from repro.workloads.changes import EdgeDeletion, NodeInsertion

    maintainer = DynamicMIS(seed=0, initial_graph=path_graph(3), engine="fast")
    empty = maintainer.apply_batch([])
    assert empty.batch_size == 0 and empty.influenced_size == 0
    report = maintainer.apply_batch([EdgeDeletion(0, 1), NodeInsertion("x", (0,))])
    maintainer.verify()
    maintainer.engine.check_interning_invariants()
    assert report.batch_size == 2
    assert report.propagation is None  # scalar counters only, no dict/set trace
    assert maintainer.statistics.num_batches == 2


def test_fast_greedy_mis_equals_dict_greedy(any_seed: int) -> None:
    graph = erdos_renyi_graph(30, 0.15, seed=any_seed)
    priorities = RandomPriorityAssigner(any_seed)
    for node in graph.nodes():
        priorities.assign(node)
    assert fast_greedy_mis(graph, priorities) == greedy_mis(graph, priorities)


@pytest.mark.slow
def test_fast_engine_large_graph_stress() -> None:
    """Thousands of churn changes on a 1500-node graph keep every invariant."""
    from repro.workloads.sequences import edge_churn_sequence, node_churn_sequence

    graph = erdos_renyi_graph(1500, 0.004, seed=1)
    changes = edge_churn_sequence(graph, 1700, seed=2)
    changes += node_churn_sequence(graph, 300, seed=2, attachment_probability=0.005)
    maintainer = DynamicMIS(seed=3, initial_graph=graph, engine="fast")
    maintainer.apply_sequence(changes)
    maintainer.verify()
    maintainer._engine.check_interning_invariants()
    assert maintainer.statistics.num_changes == len(changes)


def test_distributed_verify_accepts_fast_reference() -> None:
    from repro.distributed.protocol_mis import BufferedMISNetwork

    graph = erdos_renyi_graph(12, 0.3, seed=5)
    network = BufferedMISNetwork(seed=5, initial_graph=graph)
    network.verify(reference_engine="fast")
    network.verify(reference_engine="template")
    with pytest.raises(ValueError):
        network.verify(reference_engine="turbo")
