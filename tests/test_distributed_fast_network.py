"""Unit tests for the id-interned network core and the network registry.

The round-by-round equivalence with the dict simulators is pinned down by
``tests/conformance/test_protocol_differential.py``; this file covers the
pieces around it: the backend registry and its error messages, the
``network=`` constructor selector, label interning with free-list reuse,
the materialized runtime views, and the scheduler channel cache.
"""

from __future__ import annotations

import pytest

from repro.distributed import (
    AsyncDirectMISNetwork,
    BufferedMISNetwork,
    DirectMISNetwork,
    FastAsyncDirectMISNetwork,
    FastBufferedMISNetwork,
    FastDirectMISNetwork,
)
from repro.distributed.network_api import (
    NETWORK_NAMES,
    UnknownNetworkError,
    available_networks,
    create_network,
    network_protocols,
    register_network,
    resolve_network,
    unregister_network,
)
from repro.distributed.scheduler import AdversarialDelayScheduler
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.workloads.changes import EdgeDeletion, NodeDeletion, NodeInsertion


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_networks_are_registered() -> None:
    assert available_networks() == ("dict", "fast")
    assert set(network_protocols("fast")) == {"buffered", "direct", "async-direct"}
    assert "fast" in NETWORK_NAMES and list(NETWORK_NAMES) == ["dict", "fast"]


def test_unknown_network_has_did_you_mean_hint() -> None:
    with pytest.raises(UnknownNetworkError, match="did you mean 'fast'"):
        resolve_network("fats", "buffered")
    with pytest.raises(UnknownNetworkError, match="did you mean 'buffered'"):
        resolve_network("fast", "bufferd")
    with pytest.raises(UnknownNetworkError):
        network_protocols("nope")


def test_create_network_builds_each_backend() -> None:
    graph = star_graph(5)
    for network, expected in (("dict", BufferedMISNetwork), ("fast", FastBufferedMISNetwork)):
        simulator = create_network("buffered", network=network, seed=2, initial_graph=graph)
        assert type(simulator) is expected
        simulator.verify(reference_engine="template")


def test_register_network_guards() -> None:
    with pytest.raises(ValueError, match="already registered"):
        register_network("fast", {"buffered": FastBufferedMISNetwork})
    with pytest.raises(ValueError, match="at least one protocol"):
        register_network("empty", {})
    with pytest.raises(TypeError, match="must be callable"):
        register_network("bad", {"buffered": "not-a-factory"})
    register_network("custom-test", {"buffered": FastBufferedMISNetwork})
    try:
        assert "custom-test" in available_networks()
        simulator = create_network("buffered", network="custom-test", seed=1)
        assert isinstance(simulator, FastBufferedMISNetwork)
    finally:
        unregister_network("custom-test")
    assert "custom-test" not in available_networks()


def test_third_backend_passes_protocol_differential() -> None:
    """A backend registered purely through the public registry is comparable."""
    from repro.testing.differential import conformance_workload
    from repro.testing.protocol_differential import replay_protocol_differential

    register_network("fast-clone-test", {"buffered": FastBufferedMISNetwork})
    try:
        graph, changes = conformance_workload(13, num_changes=25, start_nodes=14)
        result = replay_protocol_differential(
            graph, changes, seed=13, networks=("dict", "fast-clone-test", "fast")
        )
        assert result.networks == ("dict", "fast-clone-test", "fast")
    finally:
        unregister_network("fast-clone-test")


# ----------------------------------------------------------------------
# The network= constructor selector (zero call-site edits)
# ----------------------------------------------------------------------
def test_network_selector_dispatches_to_fast_twins() -> None:
    graph = erdos_renyi_graph(12, 0.3, seed=4)
    assert type(BufferedMISNetwork(seed=1, initial_graph=graph, network="fast")) is (
        FastBufferedMISNetwork
    )
    assert type(DirectMISNetwork(seed=1, initial_graph=graph, network="fast")) is (
        FastDirectMISNetwork
    )
    assert type(AsyncDirectMISNetwork(seed=1, initial_graph=graph, network="fast")) is (
        FastAsyncDirectMISNetwork
    )
    # The default stays the dict implementation.
    assert type(BufferedMISNetwork(seed=1, initial_graph=graph)) is BufferedMISNetwork
    assert type(
        BufferedMISNetwork(seed=1, initial_graph=graph, network="dict")
    ) is BufferedMISNetwork


def test_network_selector_rejects_unknown_backend() -> None:
    with pytest.raises(UnknownNetworkError):
        BufferedMISNetwork(seed=0, network="no-such-core")


def test_network_selector_works_with_positional_arguments() -> None:
    """Existing call sites pass seed/graph positionally; dispatch must survive that."""
    graph = star_graph(5)
    assert type(BufferedMISNetwork(3, graph, network="fast")) is FastBufferedMISNetwork
    assert type(AsyncDirectMISNetwork(3, graph, network="fast")) is FastAsyncDirectMISNetwork


def test_network_selector_rejects_protocol_subclasses() -> None:
    """A subclass's overrides would be silently dropped by the dispatch, so
    the selector only works on the registered protocol classes themselves."""

    class TweakedBuffered(BufferedMISNetwork):
        pass

    assert type(TweakedBuffered(seed=0)) is TweakedBuffered
    with pytest.raises(TypeError, match="register it"):
        TweakedBuffered(seed=0, network="fast")

    class TweakedAsync(AsyncDirectMISNetwork):
        pass

    with pytest.raises(TypeError, match="register it"):
        TweakedAsync(seed=0, network="fast")


def test_network_selector_is_keyword_only() -> None:
    """A positional value in network's slot must fail loudly, never silently
    bind past the dispatch and hand back the dict core."""
    with pytest.raises(TypeError):
        BufferedMISNetwork(0, None, None, "fast")
    with pytest.raises(TypeError):
        AsyncDirectMISNetwork(0, None, None, None, "fast")


def test_fast_selector_matches_dict_outputs() -> None:
    graph = erdos_renyi_graph(20, 0.2, seed=3)
    dict_network = BufferedMISNetwork(seed=9, initial_graph=graph)
    fast_network = BufferedMISNetwork(seed=9, initial_graph=graph, network="fast")
    assert dict_network.states() == fast_network.states()
    edge = dict_network.graph.edges()[0]
    dict_network.apply(EdgeDeletion(*edge))
    fast_network.apply(EdgeDeletion(*edge))
    assert dict_network.states() == fast_network.states()


# ----------------------------------------------------------------------
# Interning, free-list reuse and views
# ----------------------------------------------------------------------
def test_free_list_reuse_keeps_capacity_bounded() -> None:
    network = FastBufferedMISNetwork(seed=5, initial_graph=star_graph(6))
    base_capacity = network.capacity()
    for wave in range(4):
        label = ("fresh", wave)
        network.apply(NodeInsertion(label, (0,)))
        network.apply(NodeDeletion(label, graceful=False))
        network.check_interning_invariants()
    assert network.capacity() <= base_capacity + 1
    assert network.free_slots() >= 1
    network.verify()


def test_graph_view_matches_dict_topology() -> None:
    graph = erdos_renyi_graph(15, 0.25, seed=6)
    network = FastBufferedMISNetwork(seed=2, initial_graph=graph)
    view = network.graph
    assert view.num_nodes() == graph.num_nodes()
    assert view.num_edges() == graph.num_edges()
    assert sorted(view.nodes()) == sorted(graph.nodes())
    assert view.edges() == graph.edges()
    for node in graph.nodes():
        assert view.degree(node) == graph.degree(node)
        assert view.neighbors(node) == graph.neighbors(node)
    assert view.copy() == graph


def test_node_runtime_view_matches_dict_runtime() -> None:
    graph = erdos_renyi_graph(14, 0.3, seed=8)
    dict_network = BufferedMISNetwork(seed=4, initial_graph=graph)
    fast_network = FastBufferedMISNetwork(seed=4, initial_graph=graph)
    for node in graph.nodes():
        expected = dict_network.node_runtime(node)
        actual = fast_network.node_runtime(node)
        assert actual.node_id == expected.node_id
        assert actual.key == expected.key
        assert actual.state is expected.state
        assert actual.neighbors == expected.neighbors
        assert actual.neighbor_keys == expected.neighbor_keys
        assert actual.neighbor_states == expected.neighbor_states


def test_verify_accepts_registered_reference_engines() -> None:
    network = FastBufferedMISNetwork(seed=3, initial_graph=star_graph(8))
    network.verify()  # default: fast
    network.verify(reference_engine="template")
    from repro.core.engine_api import UnknownEngineError

    with pytest.raises(UnknownEngineError):
        network.verify(reference_engine="no-such-engine")


def test_metrics_surface_matches_dict(small_random_graph) -> None:
    dict_network = BufferedMISNetwork(seed=7, initial_graph=small_random_graph)
    fast_network = FastBufferedMISNetwork(seed=7, initial_graph=small_random_graph)
    edge = dict_network.graph.edges()[2]
    dict_metrics = dict_network.apply(EdgeDeletion(*edge))
    fast_metrics = fast_network.apply(EdgeDeletion(*edge))
    assert dict_metrics.as_dict() == fast_metrics.as_dict()
    assert dict_network.metrics.summary() == fast_network.metrics.summary()


# ----------------------------------------------------------------------
# Scheduler channel cache
# ----------------------------------------------------------------------
def test_adversarial_scheduler_cache_is_consistent() -> None:
    fresh = AdversarialDelayScheduler(seed=11)
    cached = AdversarialDelayScheduler(seed=11)
    pairs = [(u, v) for u in range(6) for v in range(6) if u != v]
    first = {pair: cached.delay(pair[0], pair[1], 0) for pair in pairs}
    # Cached re-reads and a fresh instance both reproduce the same delays.
    for pair in pairs:
        assert cached.delay(pair[0], pair[1], 99) == first[pair]
        assert fresh.delay(pair[0], pair[1], 7) == first[pair]
    assert any(delay > 10 for delay in first.values()), "no slow channel drawn"
