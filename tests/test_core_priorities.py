"""Unit tests for the random and deterministic node orders."""

from __future__ import annotations

import pytest

from repro.core.priorities import (
    DeterministicPriorityAssigner,
    RandomPriorityAssigner,
    permutation_positions,
)
from repro.graph import generators


class TestRandomPriorityAssigner:
    def test_assignment_is_stable(self):
        assigner = RandomPriorityAssigner(seed=1)
        first = assigner.assign("a")
        second = assigner.assign("a")
        assert first == second
        assert assigner.key("a") == first

    def test_same_seed_same_sequence(self):
        first = RandomPriorityAssigner(seed=7)
        second = RandomPriorityAssigner(seed=7)
        for node in range(10):
            assert first.assign(node) == second.assign(node)

    def test_different_seeds_differ(self):
        first = RandomPriorityAssigner(seed=1)
        second = RandomPriorityAssigner(seed=2)
        keys_one = [first.assign(node) for node in range(5)]
        keys_two = [second.assign(node) for node in range(5)]
        assert keys_one != keys_two

    def test_keys_are_distinct(self):
        assigner = RandomPriorityAssigner(seed=3)
        keys = [assigner.assign(node) for node in range(200)]
        assert len(set(keys)) == 200

    def test_unknown_node_raises(self):
        assigner = RandomPriorityAssigner(seed=0)
        with pytest.raises(KeyError):
            assigner.key("missing")

    def test_forget(self):
        assigner = RandomPriorityAssigner(seed=0)
        assigner.assign("a")
        assigner.forget("a")
        assert not assigner.knows("a")
        assigner.forget("a")  # forgetting twice is a no-op

    def test_reassignment_after_forget_is_deterministic(self):
        # The ID is a function of (seed, node identity), not of arrival order;
        # this is what makes history independence exact per seed.
        assigner = RandomPriorityAssigner(seed=0)
        old_key = assigner.assign("a")
        assigner.forget("a")
        new_key = assigner.assign("a")
        assert old_key == new_key

    def test_ids_do_not_depend_on_arrival_order(self):
        first = RandomPriorityAssigner(seed=3)
        second = RandomPriorityAssigner(seed=3)
        for node in (1, 2, 3):
            first.assign(node)
        for node in (3, 1, 2):
            second.assign(node)
        assert all(first.key(node) == second.key(node) for node in (1, 2, 3))

    def test_earlier_and_earliest(self):
        assigner = RandomPriorityAssigner(seed=5)
        for node in range(10):
            assigner.assign(node)
        order = assigner.sorted_nodes(range(10))
        assert assigner.earliest(range(10)) == order[0]
        assert assigner.earlier(order[0], order[-1])
        assert not assigner.earlier(order[-1], order[0])
        assert assigner.earliest([]) is None

    def test_random_id_is_float_in_unit_interval(self):
        assigner = RandomPriorityAssigner(seed=5)
        assigner.assign("x")
        assert 0.0 <= assigner.random_id("x") < 1.0

    def test_known_nodes(self):
        assigner = RandomPriorityAssigner(seed=5)
        assigner.assign(1)
        assigner.assign(2)
        assert sorted(assigner.known_nodes()) == [1, 2]

    def test_neighbor_filters(self):
        graph = generators.path_graph(5)
        assigner = RandomPriorityAssigner(seed=2)
        for node in graph.nodes():
            assigner.assign(node)
        for node in graph.nodes():
            earlier = set(assigner.earlier_neighbors(graph, node))
            later = set(assigner.later_neighbors(graph, node))
            assert earlier | later == set(graph.neighbors(node))
            assert earlier & later == set()
            assert all(assigner.earlier(other, node) for other in earlier)

    def test_order_is_roughly_uniform(self):
        # Over many seeds, each of 3 nodes should be first about 1/3 of the time.
        counts = {0: 0, 1: 0, 2: 0}
        trials = 600
        for seed in range(trials):
            assigner = RandomPriorityAssigner(seed=seed)
            for node in range(3):
                assigner.assign(node)
            counts[assigner.earliest(range(3))] += 1
        for node in range(3):
            assert 0.25 < counts[node] / trials < 0.42


class TestDeterministicPriorityAssigner:
    def test_integer_order(self):
        assigner = DeterministicPriorityAssigner()
        for node in (5, 1, 3):
            assigner.assign(node)
        assert assigner.sorted_nodes([5, 1, 3]) == [1, 3, 5]

    def test_string_nodes_use_repr(self):
        assigner = DeterministicPriorityAssigner()
        for node in ("b", "a"):
            assigner.assign(node)
        assert assigner.sorted_nodes(["b", "a"]) == ["a", "b"]

    def test_reassignment_is_identical(self):
        assigner = DeterministicPriorityAssigner()
        key = assigner.assign(7)
        assigner.forget(7)
        assert assigner.assign(7) == key

    def test_unknown_node_raises(self):
        assigner = DeterministicPriorityAssigner()
        with pytest.raises(KeyError):
            assigner.key(1)

    def test_knows(self):
        assigner = DeterministicPriorityAssigner()
        assert not assigner.knows(1)
        assigner.assign(1)
        assert assigner.knows(1)


class TestPermutationPositions:
    def test_positions_are_a_permutation(self):
        assigner = RandomPriorityAssigner(seed=9)
        nodes = list(range(12))
        for node in nodes:
            assigner.assign(node)
        positions = permutation_positions(assigner, nodes)
        assert sorted(positions.values()) == list(range(12))

    def test_positions_respect_order(self):
        assigner = RandomPriorityAssigner(seed=9)
        nodes = list(range(6))
        for node in nodes:
            assigner.assign(node)
        positions = permutation_positions(assigner, nodes)
        for u in nodes:
            for v in nodes:
                if assigner.earlier(u, v):
                    assert positions[u] < positions[v]
