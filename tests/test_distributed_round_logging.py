"""Tests for the per-round observability records of the synchronous simulator."""

from __future__ import annotations


from repro.core.priorities import DeterministicPriorityAssigner
from repro.distributed.node import NodeState
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.workloads.changes import EdgeDeletion, EdgeInsertion, NodeDeletion
from repro.workloads.sequences import mixed_churn_sequence


class TestRoundLogging:
    def test_disabled_by_default(self, small_random_graph):
        network = BufferedMISNetwork(seed=1, initial_graph=small_random_graph)
        network.apply(EdgeDeletion(*network.graph.edges()[0]))
        assert network.last_change_trace() == []

    def test_trace_matches_metrics(self, small_random_graph):
        network = BufferedMISNetwork(seed=2, initial_graph=small_random_graph)
        network.enable_round_logging()
        for change in mixed_churn_sequence(small_random_graph, 30, seed=3):
            metrics = network.apply(change)
            trace = network.last_change_trace()
            assert sum(len(record.broadcasts) for record in trace) == metrics.broadcasts
            assert sum(record.state_changes for record in trace) <= metrics.state_changes
            if trace:
                assert trace[-1].round_number <= metrics.rounds + 1
        network.verify()

    def test_trace_is_reset_per_change_and_getter_returns_a_copy(self, small_random_graph):
        network = DirectMISNetwork(seed=4, initial_graph=small_random_graph)
        network.enable_round_logging()
        edges = network.graph.edges()
        network.apply(EdgeDeletion(*edges[0]))
        first = network.last_change_trace()
        network.apply(EdgeDeletion(*edges[1]))
        second = network.last_change_trace()
        assert first is not second
        # The getter returns a copy: clearing it does not affect the network.
        length_before = len(second)
        second.clear()
        assert len(network.last_change_trace()) == length_before

    def test_disabling_clears_the_log(self, small_random_graph):
        network = BufferedMISNetwork(seed=5, initial_graph=small_random_graph)
        network.enable_round_logging()
        network.apply(EdgeDeletion(*network.graph.edges()[0]))
        network.enable_round_logging(False)
        assert network.last_change_trace() == []

    def test_buffered_trace_shows_c_r_output_phases(self):
        """On the two-node eviction scenario the trace shows the C -> R ->
        output progression of Algorithm 2 in distinct rounds."""
        network = BufferedMISNetwork(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.empty_graph(2),
        )
        network.enable_round_logging()
        network.apply(EdgeInsertion(0, 1))
        network.verify()
        trace = network.last_change_trace()
        announced_states = [state for record in trace for (_, _, state) in record.broadcasts]
        assert NodeState.C.value in announced_states
        assert NodeState.R.value in announced_states
        assert NodeState.M_BAR.value in announced_states
        # The C announcement happens strictly before the R announcement.
        c_round = min(
            record.round_number
            for record in trace
            if any(state == NodeState.C.value for (_, _, state) in record.broadcasts)
        )
        r_round = min(
            record.round_number
            for record in trace
            if any(state == NodeState.R.value for (_, _, state) in record.broadcasts)
        )
        assert c_round < r_round

    def test_silent_changes_produce_empty_traces(self, small_random_graph):
        network = BufferedMISNetwork(seed=6, initial_graph=small_random_graph)
        network.enable_round_logging()
        non_mis = sorted(set(small_random_graph.nodes()) - network.mis(), key=repr)[0]
        metrics = network.apply(NodeDeletion(non_mis, graceful=True))
        assert metrics.broadcasts == 0
        assert network.last_change_trace() == []
