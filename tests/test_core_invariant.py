"""Unit tests for the MIS invariant checkers."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis_states
from repro.core.invariant import (
    InvariantViolation,
    desired_state,
    find_invariant_violations,
    mis_from_states,
    mis_invariant_holds_at,
    states_from_mis,
    verify_mis_invariant,
)
from repro.core.priorities import DeterministicPriorityAssigner, RandomPriorityAssigner
from repro.graph import generators


def _assigner_for(graph, seed=0):
    assigner = RandomPriorityAssigner(seed)
    for node in graph.nodes():
        assigner.assign(node)
    return assigner


class TestDesiredState:
    def test_no_earlier_neighbors_means_mis(self):
        graph = generators.path_graph(3)
        assigner = DeterministicPriorityAssigner()
        for node in graph.nodes():
            assigner.assign(node)
        states = {0: False, 1: False, 2: False}
        assert desired_state(graph, assigner, states, 0) is True

    def test_earlier_mis_neighbor_forces_out(self):
        graph = generators.path_graph(3)
        assigner = DeterministicPriorityAssigner()
        for node in graph.nodes():
            assigner.assign(node)
        states = {0: True, 1: False, 2: False}
        assert desired_state(graph, assigner, states, 1) is False
        assert desired_state(graph, assigner, states, 2) is True


class TestInvariantChecks:
    def test_greedy_states_satisfy_invariant(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=2)
        states = greedy_mis_states(small_random_graph, assigner)
        verify_mis_invariant(small_random_graph, assigner, states)
        assert find_invariant_violations(small_random_graph, assigner, states) == []
        for node in small_random_graph.nodes():
            assert mis_invariant_holds_at(small_random_graph, assigner, states, node)

    def test_everyone_out_violates_on_nonempty_graph(self, small_path):
        assigner = _assigner_for(small_path, seed=1)
        states = {node: False for node in small_path.nodes()}
        violations = find_invariant_violations(small_path, assigner, states)
        assert violations
        with pytest.raises(InvariantViolation):
            verify_mis_invariant(small_path, assigner, states)

    def test_everyone_in_violates_on_any_edge(self, small_path):
        assigner = _assigner_for(small_path, seed=1)
        states = {node: True for node in small_path.nodes()}
        assert find_invariant_violations(small_path, assigner, states)

    def test_missing_state_detected(self, small_path):
        assigner = _assigner_for(small_path, seed=1)
        states = greedy_mis_states(small_path, assigner)
        del states[2]
        # A missing node counts as non-MIS for its neighbors; the explicit
        # completeness check still flags it.
        with pytest.raises(InvariantViolation):
            verify_mis_invariant(small_path, assigner, states)

    def test_single_flip_is_detected(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=4)
        states = greedy_mis_states(small_random_graph, assigner)
        victim = next(iter(states))
        states[victim] = not states[victim]
        assert victim in find_invariant_violations(small_random_graph, assigner, states)


class TestConversions:
    def test_states_from_mis_round_trip(self, small_random_graph):
        assigner = _assigner_for(small_random_graph, seed=5)
        states = greedy_mis_states(small_random_graph, assigner)
        mis = mis_from_states(states)
        rebuilt = states_from_mis(small_random_graph, mis)
        assert rebuilt == states

    def test_states_from_mis_covers_all_nodes(self, small_star):
        states = states_from_mis(small_star, {0})
        assert set(states) == set(small_star.nodes())
        assert states[0] is True
        assert all(states[leaf] is False for leaf in range(1, 7))
