"""Tests for the baseline algorithms (Luby, Ghaffari-style, recompute, deterministic, natural)."""

from __future__ import annotations

import pytest

from repro.baselines.deterministic_dynamic import DeterministicDynamicMIS, NaturalGreedyDynamicMIS
from repro.baselines.ghaffari import GhaffariStyleMIS, ghaffari_style_mis
from repro.baselines.greedy_static import SequentialGreedyRecompute
from repro.baselines.luby import LubyMIS, StaticRunMetrics, luby_mis
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.core.dynamic_mis import DynamicMIS
from repro.graph import generators
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import EdgeInsertion, NodeDeletion
from repro.workloads.sequences import edge_churn_sequence, mixed_churn_sequence


class TestLuby:
    @pytest.mark.parametrize("family", ["erdos_renyi", "star", "cycle", "preferential"])
    def test_output_is_mis(self, family, any_seed):
        graph = generators.random_graph_family(family, 30, seed=any_seed)
        check_maximal_independent_set(graph, luby_mis(graph, seed=any_seed))

    def test_empty_graph(self):
        assert luby_mis(generators.empty_graph(0)) == set()

    def test_isolated_nodes(self):
        assert luby_mis(generators.empty_graph(4)) == {0, 1, 2, 3}

    def test_metrics_are_recorded(self):
        graph = generators.erdos_renyi_graph(40, 0.15, seed=2)
        metrics = StaticRunMetrics()
        LubyMIS(seed=3).run(graph, metrics)
        assert metrics.phases >= 1
        assert metrics.rounds == 2 * metrics.phases
        assert metrics.broadcasts > 0
        assert metrics.bits > metrics.broadcasts

    def test_round_complexity_grows_slowly(self):
        """Luby's phase count is logarithmic-ish: it grows with n but slowly."""
        phase_counts = []
        for num_nodes in (20, 80, 320):
            graph = generators.erdos_renyi_graph(num_nodes, 4.0 / num_nodes, seed=5)
            metrics = StaticRunMetrics()
            LubyMIS(seed=6).run(graph, metrics)
            phase_counts.append(metrics.phases)
        assert phase_counts[-1] <= 6 * max(1, phase_counts[0])


class TestGhaffariStyle:
    @pytest.mark.parametrize("family", ["erdos_renyi", "star", "cycle"])
    def test_output_is_mis(self, family, any_seed):
        graph = generators.random_graph_family(family, 25, seed=any_seed)
        check_maximal_independent_set(graph, ghaffari_style_mis(graph, seed=any_seed))

    def test_metrics_recorded(self):
        graph = generators.erdos_renyi_graph(30, 0.2, seed=1)
        metrics = StaticRunMetrics()
        GhaffariStyleMIS(seed=2).run(graph, metrics)
        assert metrics.rounds >= 2
        assert metrics.broadcasts >= graph.num_nodes()

    def test_empty_graph(self):
        assert ghaffari_style_mis(generators.empty_graph(0)) == set()


class TestSequentialGreedyRecompute:
    def test_tracks_random_greedy(self, small_random_graph):
        recompute = SequentialGreedyRecompute(seed=4, initial_graph=small_random_graph)
        reference = DynamicMIS(seed=4, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 50, seed=5):
            recompute.apply(change)
            reference.apply(change)
            assert recompute.mis() == reference.mis()

    def test_work_is_linear_in_nodes(self, small_random_graph):
        recompute = SequentialGreedyRecompute(seed=4, initial_graph=small_random_graph)
        metrics = recompute.apply(EdgeInsertion(*_missing_edge(small_random_graph)))
        assert metrics.broadcasts == recompute.graph.num_nodes()

    def test_states_cover_graph(self, small_random_graph):
        recompute = SequentialGreedyRecompute(seed=4, initial_graph=small_random_graph)
        assert set(recompute.states()) == set(small_random_graph.nodes())


class TestStaticRecomputeWrapper:
    @pytest.mark.parametrize("algorithm", ["luby", "ghaffari"])
    def test_output_is_always_an_mis(self, algorithm, small_random_graph):
        wrapper = StaticRecomputeDynamicMIS(algorithm, seed=1, initial_graph=small_random_graph)
        for change in edge_churn_sequence(small_random_graph, 30, seed=2):
            wrapper.apply(change)
            check_maximal_independent_set(wrapper.graph, wrapper.mis())

    def test_per_change_cost_is_a_full_static_run(self, medium_random_graph):
        wrapper = StaticRecomputeDynamicMIS("luby", seed=3, initial_graph=medium_random_graph)
        wrapper.apply_sequence(edge_churn_sequence(medium_random_graph, 25, seed=4))
        assert wrapper.metrics.mean("rounds") >= 2.0
        assert wrapper.metrics.mean("broadcasts") >= medium_random_graph.num_nodes() / 2

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            StaticRecomputeDynamicMIS("quantum")

    def test_custom_runner_object(self, small_random_graph):
        wrapper = StaticRecomputeDynamicMIS(LubyMIS(seed=9), initial_graph=small_random_graph)
        check_maximal_independent_set(wrapper.graph, wrapper.mis())
        assert wrapper.algorithm_name == "LubyMIS"


class TestDeterministicDynamicMIS:
    def test_is_deterministic(self, small_random_graph):
        outputs = set()
        for _ in range(3):
            algorithm = DeterministicDynamicMIS(initial_graph=small_random_graph)
            for change in edge_churn_sequence(small_random_graph, 20, seed=6):
                algorithm.apply(change)
            outputs.add(frozenset(algorithm.mis()))
        assert len(outputs) == 1

    def test_output_is_an_mis(self, small_random_graph):
        algorithm = DeterministicDynamicMIS(initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 40, seed=7):
            algorithm.apply(change)
            check_maximal_independent_set(algorithm.graph, algorithm.mis())

    def test_picks_lowest_identifier_side_on_bipartite(self):
        graph = generators.complete_bipartite_graph(4, 4)
        algorithm = DeterministicDynamicMIS(initial_graph=graph)
        assert algorithm.mis() == {0, 1, 2, 3}


class TestNaturalGreedy:
    def test_always_an_mis_under_churn(self, small_random_graph):
        algorithm = NaturalGreedyDynamicMIS(initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 50, seed=8):
            algorithm.apply(change)
            algorithm.verify()

    def test_star_built_center_first_keeps_center(self):
        """The natural algorithm is history dependent: building the star
        center-first yields the worst MIS (the center alone)."""
        from repro.workloads.changes import NodeInsertion as NIns

        algorithm = NaturalGreedyDynamicMIS()
        algorithm.apply(NIns("center"))
        for leaf in range(6):
            algorithm.apply(NIns(f"leaf{leaf}", ("center",)))
        assert algorithm.mis() == {"center"}

    def test_star_built_leaves_first_keeps_leaves(self):
        """Building the leaves first (and attaching the center afterwards)
        makes the same algorithm output the all-leaves MIS instead."""
        from repro.workloads.changes import EdgeInsertion as EIns, NodeInsertion as NIns

        algorithm = NaturalGreedyDynamicMIS()
        for leaf in range(6):
            algorithm.apply(NIns(f"leaf{leaf}"))
        algorithm.apply(NIns("center"))
        for leaf in range(6):
            algorithm.apply(EIns(f"leaf{leaf}", "center"))
        assert algorithm.mis() == {f"leaf{leaf}" for leaf in range(6)}

    def test_metrics_record_adjustments(self, small_random_graph):
        algorithm = NaturalGreedyDynamicMIS(initial_graph=small_random_graph)
        victim = sorted(algorithm.mis(), key=repr)[0]
        metrics = algorithm.apply(NodeDeletion(victim))
        assert metrics.adjustments >= 0
        assert algorithm.metrics.num_changes == 1

    def test_unknown_change_type(self, small_random_graph):
        algorithm = NaturalGreedyDynamicMIS(initial_graph=small_random_graph)
        with pytest.raises(Exception):
            algorithm.apply(object())


def _missing_edge(graph):
    nodes = sorted(graph.nodes())
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if not graph.has_edge(u, v):
                return (u, v)
    raise AssertionError("graph is complete")
