"""Tests for the history-independent dynamic maximal matching."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.dynamic_graph import canonical_edge
from repro.graph.validation import check_maximal_matching
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.matching.greedy_matching import (
    expected_random_greedy_matching_size_3paths,
    greedy_matching_in_order,
    maximum_matching_size_3paths,
    random_greedy_matching,
    worst_case_maximal_matching_3paths,
)
from repro.workloads.changes import NodeDeletion, NodeInsertion
from repro.workloads.sequences import mixed_churn_sequence


class TestSequentialBaselines:
    def test_greedy_matching_respects_order(self):
        graph = generators.path_graph(4)
        matching = greedy_matching_in_order(graph, [(1, 2), (0, 1), (2, 3)])
        assert matching == {canonical_edge(1, 2)}

    def test_greedy_matching_requires_all_edges(self):
        graph = generators.path_graph(4)
        with pytest.raises(ValueError):
            greedy_matching_in_order(graph, [(0, 1)])

    def test_random_greedy_matching_is_maximal(self, small_random_graph):
        matching = random_greedy_matching(small_random_graph, seed=3)
        check_maximal_matching(small_random_graph, matching)

    def test_worst_case_3paths(self):
        graph = generators.disjoint_paths_graph(5, edges_per_path=3)
        matching = worst_case_maximal_matching_3paths(graph)
        check_maximal_matching(graph, matching)
        assert len(matching) == 5

    def test_worst_case_rejects_other_graphs(self):
        with pytest.raises(ValueError):
            worst_case_maximal_matching_3paths(generators.path_graph(6))

    def test_expected_size_formulas(self):
        assert maximum_matching_size_3paths(6) == 12
        assert expected_random_greedy_matching_size_3paths(6) == pytest.approx(10.0)

    def test_empirical_mean_matches_5_thirds_per_path(self):
        """Example 2: the expected matching size per 3-edge path is 5/3."""
        graph = generators.disjoint_paths_graph(8, edges_per_path=3)
        sizes = [len(random_greedy_matching(graph, seed=seed)) for seed in range(300)]
        average = sum(sizes) / len(sizes)
        assert abs(average - 8 * 5 / 3) < 0.5


class TestDynamicMatching:
    def test_initial_graph_matching_is_maximal(self, small_random_graph):
        matcher = DynamicMaximalMatching(seed=1, initial_graph=small_random_graph)
        matcher.verify()

    def test_edge_changes(self, small_random_graph):
        matcher = DynamicMaximalMatching(seed=2, initial_graph=small_random_graph)
        nodes = sorted(small_random_graph.nodes())
        missing = next(
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not small_random_graph.has_edge(u, v)
        )
        matcher.insert_edge(*missing)
        matcher.verify()
        matcher.delete_edge(*missing)
        matcher.verify()

    def test_node_changes(self, small_random_graph):
        matcher = DynamicMaximalMatching(seed=3, initial_graph=small_random_graph)
        neighbors = tuple(sorted(small_random_graph.nodes())[:3])
        matcher.insert_node("new", neighbors)
        matcher.verify()
        assert matcher.graph.has_node("new")
        matcher.delete_node("new")
        matcher.verify()
        assert not matcher.graph.has_node("new")

    def test_matched_partner_lookup(self):
        matcher = DynamicMaximalMatching(seed=4, initial_graph=generators.path_graph(2))
        assert matcher.matching() == {(0, 1)}
        assert matcher.matched_partner(0) == 1
        assert matcher.matched_partner(1) == 0
        assert matcher.is_matched(0)
        matcher.delete_edge(0, 1)
        assert matcher.matched_partner(0) is None

    def test_apply_dispatch(self, small_random_graph):
        matcher = DynamicMaximalMatching(seed=5, initial_graph=small_random_graph)
        matcher.apply(NodeInsertion("x", tuple(sorted(small_random_graph.nodes())[:2])))
        matcher.apply(NodeDeletion("x"))
        matcher.verify()
        with pytest.raises(TypeError):
            matcher.apply(object())

    @pytest.mark.parametrize("seed", [0, 1])
    def test_long_churn_stays_maximal(self, seed):
        graph = generators.erdos_renyi_graph(15, 0.2, seed=seed)
        matcher = DynamicMaximalMatching(seed=seed + 1, initial_graph=graph)
        for change in mixed_churn_sequence(graph, 40, seed=seed + 2):
            matcher.apply(change)
            matcher.verify()

    def test_per_edge_change_adjustments_are_small(self, small_random_graph):
        """An edge change of G induces one line-graph change, hence O(1)
        expected adjustments (the paper's composability argument)."""
        matcher = DynamicMaximalMatching(seed=6, initial_graph=small_random_graph)
        total_changes = 0
        total_adjustments = 0
        for change in mixed_churn_sequence(small_random_graph, 50, seed=7):
            reports = matcher.apply(change)
            if change.kind in ("edge_insertion", "edge_deletion"):
                total_changes += 1
                total_adjustments += sum(report.num_adjustments for report in reports)
        assert total_changes > 0
        assert total_adjustments / total_changes < 3.0
