"""Unit tests for the influenced-set propagation (the heart of Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis_states
from repro.core.influenced import forced_minimal_influence, propagate_influence
from repro.core.invariant import verify_mis_invariant
from repro.core.priorities import DeterministicPriorityAssigner, RandomPriorityAssigner
from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph


def _deterministic_assigner(nodes):
    assigner = DeterministicPriorityAssigner()
    for node in nodes:
        assigner.assign(node)
    return assigner


class TestPaperExample:
    """The worked example of Section 3: v*, u1, u2 and the path u1-w1-w2-u2.

    The order is pi(v*) < pi(u1) < pi(w1) < pi(w2) < pi(u2); v* is adjacent to
    u1 and u2.  When v* leaves the MIS, the propagation flips u1, w1, w2 and
    flips u2 twice (it appears in the first and the last level), which is the
    paper's example of why the naive implementation may broadcast more than
    |S| times.
    """

    def _build(self):
        # Use integer identifiers whose natural order encodes pi.
        v_star, u1, w1, w2, u2 = 0, 1, 2, 3, 4
        graph = DynamicGraph(
            nodes=[v_star, u1, w1, w2, u2],
            edges=[(v_star, u1), (v_star, u2), (u1, w1), (w1, w2), (w2, u2)],
        )
        assigner = _deterministic_assigner(graph.nodes())
        states = greedy_mis_states(graph, assigner)
        assert states == {0: True, 1: False, 2: True, 3: False, 4: False}
        return graph, assigner, states

    def test_propagation_trace_matches_paper(self):
        graph, assigner, states = self._build()
        # Simulate v* being forced out of the MIS (as if a new earlier MIS
        # neighbor appeared): the propagation flips it and cascades.
        result = propagate_influence(
            graph, assigner, states, source=0, source_changes=True
        )
        assert result.levels[0] == {0}
        assert result.levels[1] == {1, 4}
        assert result.levels[2] == {2}
        assert result.levels[3] == {3}
        assert result.levels[4] == {4}
        assert result.influenced == {0, 1, 2, 3, 4}
        assert result.state_flips == 6  # u2 flips twice
        assert result.size == 5

    def test_final_states_are_greedy_without_v_star_in_mis(self):
        graph, assigner, states = self._build()
        result = propagate_influence(
            graph, assigner, states, source=0, source_changes=True
        )
        assert result.final_states[1] is True
        assert result.final_states[2] is False
        assert result.final_states[3] is True
        assert result.final_states[4] is False


class TestPropagationBasics:
    def test_no_change_when_source_does_not_change(self, small_random_graph):
        assigner = RandomPriorityAssigner(3)
        for node in small_random_graph.nodes():
            assigner.assign(node)
        states = greedy_mis_states(small_random_graph, assigner)
        result = propagate_influence(
            small_random_graph, assigner, states, source=0, source_changes=False
        )
        assert result.size == 0
        assert result.num_adjustments == 0
        assert result.final_states == states

    def test_states_argument_is_not_mutated(self, small_path):
        assigner = _deterministic_assigner(small_path.nodes())
        states = greedy_mis_states(small_path, assigner)
        original = dict(states)
        states_copy = dict(states)
        states_copy[0] = False
        propagate_influence(small_path, assigner, states_copy, source=0, source_changes=True)
        assert states == original

    def test_deleted_source_uses_extra_dirty(self):
        # Path 0-1-2 with identity order: MIS = {0, 2}.  Deleting node 0
        # should flip node 1 into the MIS and node 2 out of it.
        graph = generators.path_graph(3)
        assigner = _deterministic_assigner(graph.nodes())
        states = greedy_mis_states(graph, assigner)
        new_graph = graph.copy()
        new_graph.remove_node(0)
        del states[0]
        result = propagate_influence(
            new_graph,
            assigner,
            states,
            source=0,
            source_changes=True,
            extra_dirty=[1],
        )
        assert result.influenced == {0, 1, 2}
        assert result.final_states == {1: True, 2: False}
        assert result.adjustments == {1, 2}

    def test_nonconvergence_guard(self):
        graph = generators.path_graph(3)
        assigner = _deterministic_assigner(graph.nodes())
        # Deliberately inconsistent starting states cause endless re-checking
        # only if the cap is tiny; with max_levels=0 the guard fires at once.
        states = {0: False, 1: False, 2: False}
        with pytest.raises(RuntimeError):
            propagate_influence(
                graph,
                assigner,
                states,
                source=0,
                source_changes=True,
                max_levels=0,
            )

    def test_final_states_match_full_recompute_after_edge_insertion(self):
        for seed in range(8):
            graph = generators.erdos_renyi_graph(18, 0.2, seed=seed)
            assigner = RandomPriorityAssigner(seed + 100)
            for node in graph.nodes():
                assigner.assign(node)
            states = greedy_mis_states(graph, assigner)
            # Insert a uniformly chosen missing edge and propagate from the
            # later endpoint.
            missing = [
                (u, v)
                for u in graph.nodes()
                for v in graph.nodes()
                if repr(u) < repr(v) and not graph.has_edge(u, v)
            ]
            if not missing:
                continue
            u, v = missing[seed % len(missing)]
            graph.add_edge(u, v)
            later = u if assigner.earlier(v, u) else v
            needs_change = states[later] and states[u if later == v else v]
            result = propagate_influence(
                graph, assigner, states, source=later, source_changes=needs_change
            )
            assert result.final_states == greedy_mis_states(graph, assigner)
            verify_mis_invariant(graph, assigner, result.final_states)


class TestForcedMinimalInfluence:
    def test_forced_set_contains_source(self, small_random_graph):
        assigner = RandomPriorityAssigner(1)
        for node in small_random_graph.nodes():
            assigner.assign(node)
        for node in list(small_random_graph.nodes())[:5]:
            s_prime = forced_minimal_influence(small_random_graph, assigner, node)
            assert node in s_prime

    def test_forced_set_on_isolated_node_is_singleton(self):
        graph = generators.empty_graph(4)
        assigner = RandomPriorityAssigner(2)
        for node in graph.nodes():
            assigner.assign(node)
        assert forced_minimal_influence(graph, assigner, 0) == {0}

    def test_lemma2_relationship_on_random_instances(self):
        """Lemma 2: S = S' if v* is the earliest node of S', otherwise S = empty.

        We exercise it through edge deletions: delete an edge, compute the
        real influenced set S via propagation, compute S' on the new graph
        with v* forced first, and check the dichotomy.
        """
        matches = 0
        for seed in range(20):
            graph = generators.erdos_renyi_graph(14, 0.25, seed=seed)
            if graph.num_edges() == 0:
                continue
            assigner = RandomPriorityAssigner(seed + 50)
            for node in graph.nodes():
                assigner.assign(node)
            states = greedy_mis_states(graph, assigner)
            u, v = graph.edges()[seed % graph.num_edges()]
            later = u if assigner.earlier(v, u) else v
            graph.remove_edge(u, v)
            needs_change = (
                states[later]
                != (not any(states[w] for w in assigner.earlier_neighbors(graph, later)))
            )
            result = propagate_influence(
                graph, assigner, states, source=later, source_changes=needs_change
            )
            s_prime = forced_minimal_influence(graph, assigner, later)
            earliest = assigner.earliest(s_prime)
            if earliest == later:
                assert result.influenced <= s_prime
                matches += 1
            else:
                assert result.influenced == set()
        assert matches > 0  # the interesting branch was exercised
