"""Unit tests for the graph family generators."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.dynamic_graph import GraphError
from repro.graph.validation import check_graph_consistency


class TestStructuredFamilies:
    def test_empty_graph(self):
        graph = generators.empty_graph(5)
        assert graph.num_nodes() == 5
        assert graph.num_edges() == 0

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.num_edges() == 15
        assert graph.max_degree() == 5
        check_graph_consistency(graph)

    def test_path_graph(self):
        graph = generators.path_graph(7)
        assert graph.num_edges() == 6
        assert graph.degree(0) == 1
        assert graph.degree(3) == 2

    def test_cycle_graph(self):
        graph = generators.cycle_graph(5)
        assert graph.num_edges() == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        graph = generators.star_graph(8)
        assert graph.num_nodes() == 9
        assert graph.degree(0) == 8
        assert all(graph.degree(leaf) == 1 for leaf in range(1, 9))

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite_graph(3, 4)
        assert graph.num_nodes() == 7
        assert graph.num_edges() == 12
        left, right = generators.bipartite_sides(3, 4)
        assert left == [0, 1, 2]
        assert right == [3, 4, 5, 6]
        for u in left:
            for v in right:
                assert graph.has_edge(u, v)

    def test_complete_bipartite_minus_matching(self):
        side = 4
        graph = generators.complete_bipartite_minus_matching(side)
        assert graph.num_nodes() == 2 * side
        assert graph.num_edges() == side * (side - 1)
        for i in range(side):
            assert not graph.has_edge(i, side + i)
            for j in range(side):
                if j != i:
                    assert graph.has_edge(i, side + j)

    def test_disjoint_paths(self):
        graph = generators.disjoint_paths_graph(3, edges_per_path=3)
        assert graph.num_nodes() == 12
        assert graph.num_edges() == 9
        assert len(graph.connected_components()) == 3

    def test_disjoint_paths_invalid_edge_count(self):
        with pytest.raises(ValueError):
            generators.disjoint_paths_graph(2, edges_per_path=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generators.empty_graph(-1)


class TestRandomFamilies:
    def test_erdos_renyi_reproducible(self):
        first = generators.erdos_renyi_graph(30, 0.2, seed=5)
        second = generators.erdos_renyi_graph(30, 0.2, seed=5)
        third = generators.erdos_renyi_graph(30, 0.2, seed=6)
        assert first == second
        assert first != third

    def test_erdos_renyi_extremes(self):
        assert generators.erdos_renyi_graph(10, 0.0, seed=1).num_edges() == 0
        assert generators.erdos_renyi_graph(10, 1.0, seed=1).num_edges() == 45

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_graph(10, 1.5, seed=0)

    def test_gnm_exact_edge_count(self):
        graph = generators.gnm_random_graph(20, 30, seed=2)
        assert graph.num_edges() == 30
        check_graph_consistency(graph)

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            generators.gnm_random_graph(4, 10, seed=0)

    def test_preferential_attachment_structure(self):
        graph = generators.preferential_attachment_graph(40, 3, seed=3)
        assert graph.num_nodes() == 40
        # Every non-seed node attaches with exactly 3 edges.
        assert graph.num_edges() == 6 + 3 * (40 - 4)
        check_graph_consistency(graph)

    def test_preferential_attachment_invalid_arguments(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment_graph(3, 5, seed=0)
        with pytest.raises(ValueError):
            generators.preferential_attachment_graph(10, 0, seed=0)

    def test_random_geometric_radius_monotone(self):
        sparse = generators.random_geometric_graph(40, 0.1, seed=4)
        dense = generators.random_geometric_graph(40, 0.5, seed=4)
        assert dense.num_edges() >= sparse.num_edges()

    def test_random_geometric_invalid_radius(self):
        with pytest.raises(ValueError):
            generators.random_geometric_graph(10, -0.1, seed=0)

    def test_near_regular_degrees_bounded(self):
        degree = 4
        graph = generators.near_regular_graph(30, degree, seed=5)
        assert all(graph.degree(node) <= degree for node in graph.nodes())
        check_graph_consistency(graph)

    def test_near_regular_invalid_degree(self):
        with pytest.raises(ValueError):
            generators.near_regular_graph(5, 5, seed=0)

    def test_planted_clusters(self):
        graph, clusters = generators.planted_clusters_graph([5, 5, 5], seed=6)
        assert graph.num_nodes() == 15
        assert [len(c) for c in clusters] == [5, 5, 5]
        all_nodes = sorted(node for cluster in clusters for node in cluster)
        assert all_nodes == list(range(15))

    def test_planted_clusters_invalid_probability(self):
        with pytest.raises(ValueError):
            generators.planted_clusters_graph([3, 3], intra_probability=1.5)

    def test_from_edge_list(self):
        graph = generators.from_edge_list(4, [(0, 1), (2, 3)])
        assert graph.num_edges() == 2

    def test_from_edge_list_out_of_range(self):
        with pytest.raises(GraphError):
            generators.from_edge_list(3, [(0, 5)])


class TestFamilyDispatch:
    @pytest.mark.parametrize("name", generators.FAMILY_NAMES)
    def test_every_family_builds(self, name):
        graph = generators.random_graph_family(name, 20, seed=1)
        assert graph.num_nodes() >= 20 or name == "star"
        check_graph_consistency(graph)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            generators.random_graph_family("nope", 20)

    def test_family_needs_minimum_size(self):
        with pytest.raises(ValueError):
            generators.random_graph_family("erdos_renyi", 3)
