"""Tests for the deterministic Omega(n) adjustment lower bound."""

from __future__ import annotations

import pytest

from repro.analysis.estimators import mean
from repro.lowerbounds.deterministic import (
    adjustments_lower_bound_claim,
    run_deterministic_lower_bound,
    run_randomized_on_lower_bound_instance,
    total_adjustments_lower_bound_claim,
)


class TestDeterministicLowerBound:
    @pytest.mark.parametrize("side_size", [3, 6, 10])
    def test_some_change_flips_a_whole_side(self, side_size):
        result = run_deterministic_lower_bound(side_size)
        assert result.num_changes == side_size
        assert result.max_adjustments >= adjustments_lower_bound_claim(side_size)

    @pytest.mark.parametrize("side_size", [4, 8])
    def test_total_adjustments_at_least_k(self, side_size):
        result = run_deterministic_lower_bound(side_size)
        assert result.total_adjustments >= total_adjustments_lower_bound_claim(side_size)

    def test_adjustments_grow_linearly_with_k(self):
        maxima = [run_deterministic_lower_bound(k).max_adjustments for k in (4, 8, 16)]
        assert maxima[1] >= 2 * maxima[0] - 1
        assert maxima[2] >= 2 * maxima[1] - 1

    def test_mean_adjustments_is_about_one_per_change(self):
        # Even the deterministic algorithm averages ~1 adjustment per change
        # over the whole sequence; the point is the single catastrophic change.
        result = run_deterministic_lower_bound(10)
        assert result.mean_adjustments >= 1.0


class TestRandomizedOnSameInstance:
    @pytest.mark.parametrize("side_size", [6, 10])
    def test_randomized_total_is_also_at_least_k(self, side_size):
        # The paper: *any* algorithm needs at least k adjustments in total on
        # this sequence (the MIS must eventually flip sides).
        result = run_randomized_on_lower_bound_instance(side_size, seed=1)
        assert result.total_adjustments >= side_size

    def test_randomized_expected_per_change_stays_small(self):
        side_size = 10
        means = [
            run_randomized_on_lower_bound_instance(side_size, seed=seed).mean_adjustments
            for seed in range(15)
        ]
        # Per change the randomized algorithm pays ~1-2 on average; crucially
        # this does not grow with the side size (compare the deterministic
        # max of `side_size` in a single change).
        assert mean(means) < 3.0

    def test_randomized_worst_change_can_still_be_large_but_rare(self):
        # Markov-style: the expensive flip happens exactly once per sequence.
        result = run_randomized_on_lower_bound_instance(12, seed=3)
        expensive_changes = [value for value in result.per_change_adjustments if value >= 6]
        assert len(expensive_changes) <= 2
