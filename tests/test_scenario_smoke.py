"""Tier-1 smoke gate for the scenario front door (CI: runs on every PR).

A tiny scenario must execute end-to-end through :func:`repro.scenario.run_scenario`
on **every** registered engine backend (sequential runner) and **every**
registered network backend under every protocol (protocol runner), from a
serialized JSON spec -- exactly the path ``repro-mis run --scenario`` takes.
The parametrization reads the live registries, so a future backend is gated
here the moment it registers.
"""

from __future__ import annotations

import pytest

from repro.core.engine_api import available_engines
from repro.distributed.network_api import available_networks, network_protocols
from repro.scenario import (
    BackendSpec,
    GraphSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)

TINY_GRAPH = GraphSpec(family="erdos_renyi", nodes=12, seed=1)
TINY_WORKLOAD = WorkloadSpec(kind="mixed_churn", num_changes=15, seed=2)


def _through_json(spec: ScenarioSpec) -> ScenarioSpec:
    """Serialize/deserialize, so the smoke run covers the spec-file path."""
    return ScenarioSpec.from_json(spec.to_json())


@pytest.mark.parametrize("engine", available_engines())
def test_tiny_scenario_on_every_engine_backend(engine: str) -> None:
    spec = _through_json(
        ScenarioSpec(
            name=f"smoke-{engine}",
            seed=3,
            graph=TINY_GRAPH,
            workload=TINY_WORKLOAD,
            backend=BackendSpec(runner="sequential", engine=engine),
        )
    )
    result = run_scenario(spec)
    assert result.verified
    assert result.num_changes == 15
    assert result.final_mis_size > 0


@pytest.mark.parametrize(
    "network, protocol",
    [
        (network, protocol)
        for network in available_networks()
        for protocol in network_protocols(network)
    ],
)
def test_tiny_scenario_on_every_network_backend(network: str, protocol: str) -> None:
    spec = _through_json(
        ScenarioSpec(
            name=f"smoke-{network}-{protocol}",
            seed=3,
            graph=TINY_GRAPH,
            workload=TINY_WORKLOAD,
            backend=BackendSpec(
                runner="protocol", network=network, protocol=protocol, engine="fast"
            ),
        )
    )
    result = run_scenario(spec)
    assert result.verified
    assert result.num_changes == 15
    assert result.summary["num_changes"] == 15.0


@pytest.mark.parametrize(
    "network, protocol",
    [
        (network, protocol)
        for network in available_networks()
        for protocol in network_protocols(network)
    ],
)
def test_checkpoint_works_on_every_network_backend(network: str, protocol: str) -> None:
    """Session.checkpoint() succeeds (and resumes exactly) for every registered
    network backend x protocol -- the acceptance gate of the checkpointable
    network-state tentpole, live off the registries."""
    from repro.scenario import Session

    spec = ScenarioSpec(
        name=f"checkpoint-smoke-{network}-{protocol}",
        seed=3,
        graph=TINY_GRAPH,
        workload=TINY_WORKLOAD,
        backend=BackendSpec(
            runner="protocol", network=network, protocol=protocol, engine="fast"
        ),
    )
    if protocol == "async-direct":
        # Channel-deterministic delays, so the resumed event loop replays
        # the uninterrupted one's exactly.
        spec = spec.with_backend(scheduler={"kind": "adversarial", "seed": 5})
    uninterrupted = Session(spec)
    uninterrupted.run()
    interrupted = Session(spec)
    for _ in range(7):
        interrupted.step()
    resumed = Session.resume(interrupted.checkpoint())
    result = resumed.run()
    assert result.verified
    assert resumed.states() == uninterrupted.states()


def test_engine_backends_agree_on_the_smoke_scenario() -> None:
    """The smoke spec is also a conformance probe: all engines, same outputs."""
    spec = ScenarioSpec(
        seed=3, graph=TINY_GRAPH, workload=TINY_WORKLOAD, backend=BackendSpec()
    )
    mis_sizes = {
        engine: run_scenario(spec.with_backend(engine=engine)).final_mis_size
        for engine in available_engines()
    }
    assert len(set(mis_sizes.values())) == 1, mis_sizes
