"""Unit tests for Algorithm 1 (the template engine)."""

from __future__ import annotations

import pytest

from repro.core.greedy import greedy_mis
from repro.core.priorities import DeterministicPriorityAssigner
from repro.core.template import TemplateEngine
from repro.graph import generators
from repro.graph.dynamic_graph import GraphError
from repro.graph.validation import check_maximal_independent_set


class TestInitialization:
    def test_empty_engine(self):
        engine = TemplateEngine(seed=1)
        assert engine.mis() == set()
        assert engine.graph.num_nodes() == 0

    def test_initial_graph_gets_greedy_mis(self, small_random_graph):
        engine = TemplateEngine(seed=2, initial_graph=small_random_graph)
        assert engine.mis() == greedy_mis(engine.graph, engine.priorities)
        engine.verify()

    def test_initial_graph_is_copied(self, small_random_graph):
        engine = TemplateEngine(seed=2, initial_graph=small_random_graph)
        engine.graph.add_node("extra")
        assert not small_random_graph.has_node("extra")


class TestEdgeChanges:
    def test_edge_insertion_between_two_mis_nodes(self):
        # Identity order on a 2-node empty graph: both nodes are in the MIS;
        # inserting the edge forces the later one out.
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.empty_graph(2),
        )
        assert engine.mis() == {0, 1}
        report = engine.insert_edge(0, 1)
        assert report.change_type == "edge_insertion"
        assert report.v_star == 1
        assert report.v_star_star == 0
        assert report.influenced_set == {1}
        assert report.num_adjustments == 1
        assert engine.mis() == {0}
        engine.verify()

    def test_edge_insertion_without_violation(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(3),
        )
        assert engine.mis() == {0, 2}
        report = engine.insert_edge(0, 2)
        assert report.influenced_size == 1
        assert report.num_adjustments == 1
        assert engine.mis() == {0}
        engine.verify()

    def test_edge_insertion_missing_endpoint_raises(self):
        engine = TemplateEngine(initial_graph=generators.empty_graph(2))
        with pytest.raises(GraphError):
            engine.insert_edge(0, 99)

    def test_edge_deletion_lets_later_endpoint_join(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(2),
        )
        assert engine.mis() == {0}
        report = engine.delete_edge(0, 1)
        assert report.change_type == "edge_deletion"
        assert report.v_star == 1
        assert report.influenced_set == {1}
        assert engine.mis() == {0, 1}
        engine.verify()

    def test_edge_deletion_without_violation(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(4),
        )
        assert engine.mis() == {0, 2}
        report = engine.delete_edge(1, 2)
        assert report.influenced_size == 0
        assert engine.mis() == {0, 2}
        engine.verify()

    def test_missing_edge_deletion_raises(self):
        engine = TemplateEngine(initial_graph=generators.path_graph(3))
        with pytest.raises(GraphError):
            engine.delete_edge(0, 2)


class TestNodeChanges:
    def test_isolated_node_insertion_joins_mis(self):
        engine = TemplateEngine(seed=3)
        report = engine.insert_node("a")
        assert report.change_type == "node_insertion"
        assert engine.mis() == {"a"}
        assert report.num_adjustments == 1

    def test_node_insertion_with_blocking_neighbor(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.empty_graph(1),
        )
        report = engine.insert_node(5, neighbors=[0])
        assert engine.mis() == {0}
        assert report.num_adjustments == 0
        engine.verify()

    def test_node_insertion_that_displaces_nothing_but_joins(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(2),
        )
        # Node 2 attaches to node 1 (non-MIS), so it joins the MIS itself.
        report = engine.insert_node(2, neighbors=[1])
        assert engine.mis() == {0, 2}
        assert report.influenced_set == {2}
        engine.verify()

    def test_node_deletion_of_non_mis_node_is_free(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(3),
        )
        report = engine.delete_node(1)
        assert report.influenced_size == 0
        assert report.num_adjustments == 0
        assert engine.mis() == {0, 2}
        engine.verify()

    def test_node_deletion_of_mis_node_cascades(self):
        engine = TemplateEngine(
            priorities=DeterministicPriorityAssigner(),
            initial_graph=generators.path_graph(3),
        )
        report = engine.delete_node(0)
        assert report.v_star == 0
        assert 0 in report.influenced_set
        assert engine.mis() == {1}
        assert report.num_adjustments == 2  # node 1 joins, node 2 leaves
        engine.verify()

    def test_deleting_missing_node_raises(self):
        engine = TemplateEngine(initial_graph=generators.path_graph(3))
        with pytest.raises(GraphError):
            engine.delete_node(99)

    def test_deleted_node_priority_is_forgotten(self):
        engine = TemplateEngine(seed=4, initial_graph=generators.path_graph(3))
        engine.delete_node(1)
        assert not engine.priorities.knows(1)


class TestConsistencyAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mixed_changes_track_the_greedy_oracle(self, seed):
        graph = generators.erdos_renyi_graph(15, 0.2, seed=seed)
        engine = TemplateEngine(seed=seed + 10, initial_graph=graph)
        # A fixed small script of changes exercising all four change types.
        engine.insert_node("x", neighbors=list(graph.nodes())[:3])
        engine.delete_node(list(graph.nodes())[4])
        if engine.graph.has_edge(0, 1):
            engine.delete_edge(0, 1)
        else:
            engine.insert_edge(0, 1)
        engine.insert_node("y", neighbors=["x"])
        for _ in range(3):
            edges = engine.graph.edges()
            if edges:
                engine.delete_edge(*edges[0])
        assert engine.mis() == greedy_mis(engine.graph, engine.priorities)
        check_maximal_independent_set(engine.graph, engine.mis())
        engine.verify()

    def test_states_accessor_returns_copy(self, small_random_graph):
        engine = TemplateEngine(seed=1, initial_graph=small_random_graph)
        states = engine.states()
        states.clear()
        assert engine.states()  # internal map unaffected
