"""Client-side transport behaviour of :class:`repro.service.ServiceClient`.

A daemon restart between requests leaves the client holding a dead
keep-alive socket.  These tests pin the contract for that case:

* transport failures surface as :class:`ServiceClientError` with kind
  ``"connection"`` -- never as a bare :class:`BrokenPipeError`;
* idempotent ops (``ping`` / ``query`` / ``list`` / ``stats``) reconnect
  and retry exactly once;
* mutating ops (``apply`` et al.) never retry -- an ambiguous failure could
  otherwise double-apply workload units.

The daemon is played by a minimal in-test server: one accept loop that
answers a configurable number of requests per connection and then drops it,
which is exactly what a restart looks like from the client's side.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service import ServiceClient, ServiceClientError
from repro.service import protocol


class _FlakyServer:
    """Answers ``requests_per_connection`` requests, then drops the socket."""

    def __init__(self, requests_per_connection: int = 1) -> None:
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._per_connection = requests_per_connection
        self.address = "tcp:127.0.0.1:{}".format(self._listener.getsockname()[1])
        self.requests: list = []
        self.connections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            with connection:
                reader = connection.makefile("rb")
                writer = connection.makefile("wb")
                for _ in range(self._per_connection):
                    try:
                        message = protocol.read_message(reader)
                    except protocol.WireError:
                        break
                    if message is None:
                        break
                    self.requests.append(message)
                    protocol.write_message(writer, protocol.ok({"op": message["op"]}))
                # Hard-close (shutdown, not just close: the makefile objects
                # would otherwise keep the fd open): from the client's side
                # this is indistinguishable from a daemon restart between
                # requests.
                try:
                    connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def stop(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture
def flaky_server():
    server = _FlakyServer(requests_per_connection=1)
    yield server
    server.stop()


def test_idempotent_op_reconnects_once(flaky_server):
    with ServiceClient(flaky_server.address, timeout=10) as client:
        assert client.ping() == {"op": "ping"}
        # The server dropped the connection after the first answer; the next
        # ping must transparently reconnect and succeed.
        assert client.stats() == {"op": "stats"}
    assert flaky_server.connections == 2
    assert [message["op"] for message in flaky_server.requests] == ["ping", "stats"]


def test_mutating_op_never_retries(flaky_server):
    with ServiceClient(flaky_server.address, timeout=10) as client:
        assert client.ping() == {"op": "ping"}
        with pytest.raises(ServiceClientError) as failure:
            client.apply("some-session", steps=3)
        assert failure.value.kind == "connection"
    # The dead keep-alive socket is only discovered at read time, so the
    # apply rode connection 1 and -- being non-idempotent -- was NOT
    # replayed on a fresh connection.
    assert flaky_server.connections == 1
    assert [message["op"] for message in flaky_server.requests] == ["ping"]


def test_connection_failure_kind_when_daemon_is_gone():
    server = _FlakyServer()
    address = server.address
    server.stop()
    client = ServiceClient(address, timeout=2)
    with pytest.raises(ServiceClientError) as failure:
        client.ping()
    assert failure.value.kind == "connection"
    # Mutating ops against a dead daemon fail the same typed way.
    with pytest.raises(ServiceClientError) as mutation_failure:
        client.apply("s", steps=1)
    assert mutation_failure.value.kind == "connection"
