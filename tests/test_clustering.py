"""Tests for correlation clustering: cost, constructions, pivot equivalence, dynamics."""

from __future__ import annotations

import pytest

from repro.clustering.correlation import (
    cluster_sizes,
    clustering_cost,
    clustering_from_mis,
    connected_component_clustering,
    exact_optimal_clustering,
    single_cluster_clustering,
    singleton_clustering,
)
from repro.clustering.dynamic_clustering import DynamicCorrelationClustering
from repro.clustering.pivot import pivot_clustering
from repro.core.dynamic_mis import DynamicMIS
from repro.core.greedy import greedy_clustering, greedy_mis
from repro.core.priorities import RandomPriorityAssigner
from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.validation import check_clustering
from repro.workloads.sequences import mixed_churn_sequence


class TestClusteringCost:
    def test_cost_of_perfect_clustering_on_disjoint_cliques(self):
        graph = DynamicGraph(
            nodes=range(6), edges=[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]
        )
        clusters = {0: "a", 1: "a", 2: "a", 3: "b", 4: "b", 5: "b"}
        assert clustering_cost(graph, clusters) == 0

    def test_singletons_cost_equals_edge_count(self, small_random_graph):
        cost = clustering_cost(small_random_graph, singleton_clustering(small_random_graph))
        assert cost == small_random_graph.num_edges()

    def test_single_cluster_cost_equals_missing_edges(self, small_random_graph):
        n = small_random_graph.num_nodes()
        cost = clustering_cost(small_random_graph, single_cluster_clustering(small_random_graph))
        assert cost == n * (n - 1) // 2 - small_random_graph.num_edges()

    def test_missing_label_rejected(self, triangle):
        with pytest.raises(ValueError):
            clustering_cost(triangle, {0: 0, 1: 0})

    def test_component_clustering_valid(self, small_random_graph):
        clusters = connected_component_clustering(small_random_graph)
        check_clustering(small_random_graph, clusters)

    def test_cluster_sizes(self):
        assert cluster_sizes({1: "a", 2: "a", 3: "b"}) == {"a": 2, "b": 1}


class TestExactOptimum:
    def test_triangle_optimum_is_single_cluster(self, triangle):
        _, cost = exact_optimal_clustering(triangle)
        assert cost == 0

    def test_path_optimum(self):
        graph = generators.path_graph(3)
        _, cost = exact_optimal_clustering(graph)
        assert cost == 1

    def test_empty_graph(self):
        clustering, cost = exact_optimal_clustering(DynamicGraph())
        assert clustering == {} and cost == 0

    def test_too_large_is_rejected(self):
        with pytest.raises(ValueError):
            exact_optimal_clustering(generators.empty_graph(14))

    def test_optimum_is_never_beaten_by_heuristics(self):
        for seed in range(5):
            graph = generators.erdos_renyi_graph(7, 0.4, seed=seed)
            _, optimal_cost = exact_optimal_clustering(graph)
            for clusters in (
                singleton_clustering(graph),
                single_cluster_clustering(graph),
                connected_component_clustering(graph),
            ):
                assert clustering_cost(graph, clusters) >= optimal_cost


class TestMISClusteringAndPivotEquivalence:
    def test_clustering_from_mis_is_valid(self, small_random_graph):
        assigner = RandomPriorityAssigner(3)
        for node in small_random_graph.nodes():
            assigner.assign(node)
        mis = greedy_mis(small_random_graph, assigner)
        clusters = clustering_from_mis(small_random_graph, mis, assigner)
        check_clustering(small_random_graph, clusters)
        assert set(clusters.values()) <= mis

    def test_non_maximal_set_rejected(self, small_star):
        assigner = RandomPriorityAssigner(1)
        for node in small_star.nodes():
            assigner.assign(node)
        with pytest.raises(ValueError):
            clustering_from_mis(small_star, set(), assigner)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pivot_with_greedy_order_equals_mis_clustering(self, seed):
        """The paper's key observation: random greedy MIS clustering == pivot clustering
        when the pivot order is the same permutation."""
        graph = generators.erdos_renyi_graph(18, 0.25, seed=seed)
        assigner = RandomPriorityAssigner(seed + 10)
        for node in graph.nodes():
            assigner.assign(node)
        order = assigner.sorted_nodes(graph.nodes())
        from_pivot = pivot_clustering(graph, pivot_order=order)
        from_mis = greedy_clustering(graph, assigner)
        assert from_pivot == from_mis

    def test_pivot_rejects_incomplete_order(self, triangle):
        with pytest.raises(ValueError):
            pivot_clustering(triangle, pivot_order=[0, 1])

    def test_pivot_random_order_is_valid(self, small_random_graph):
        clusters = pivot_clustering(small_random_graph, seed=4)
        check_clustering(small_random_graph, clusters)

    def test_three_approximation_in_expectation_on_small_graphs(self):
        """Average random-greedy clustering cost stays within 3x the optimum
        (the paper's 3-approximation, checked empirically)."""
        for seed in range(4):
            graph = generators.erdos_renyi_graph(8, 0.4, seed=seed)
            _, optimal_cost = exact_optimal_clustering(graph)
            costs = []
            for trial in range(40):
                assigner = RandomPriorityAssigner(1000 * seed + trial)
                for node in graph.nodes():
                    assigner.assign(node)
                clusters = greedy_clustering(graph, assigner)
                costs.append(clustering_cost(graph, clusters))
            average = sum(costs) / len(costs)
            assert average <= 3.0 * max(optimal_cost, 1) + 0.5


class TestDynamicClustering:
    def test_matches_static_construction_after_churn(self, small_random_graph):
        dynamic = DynamicCorrelationClustering(seed=5, initial_graph=small_random_graph)
        reference = DynamicMIS(seed=5, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 60, seed=6):
            dynamic.apply(change)
            reference.apply(change)
            assert dynamic.clusters() == clustering_from_mis(
                reference.graph, reference.mis(), reference.priorities
            )
        dynamic.verify()

    def test_cost_and_cluster_count(self, small_random_graph):
        dynamic = DynamicCorrelationClustering(seed=7, initial_graph=small_random_graph)
        assert dynamic.num_clusters() == len(dynamic.mis_maintainer.mis())
        assert dynamic.cost() >= 0

    def test_direct_mutators(self):
        dynamic = DynamicCorrelationClustering(seed=8)
        dynamic.insert_node("a")
        dynamic.insert_node("b")
        dynamic.insert_edge("a", "b")
        check_clustering(dynamic.graph, dynamic.clusters())
        dynamic.delete_edge("a", "b")
        dynamic.delete_node("b")
        assert dynamic.clusters() == {"a": "a"}
