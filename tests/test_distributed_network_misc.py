"""Additional coverage for the simulator plumbing and edge cases."""

from __future__ import annotations

import pytest

from repro.core.dynamic_mis import DynamicMIS
from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph import generators
from repro.graph.dynamic_graph import GraphError
from repro.workloads.changes import EdgeInsertion, NodeDeletion, NodeInsertion
from repro.workloads.sequences import build_sequence, mixed_churn_sequence


class TestGrowFromEmptyNetwork:
    """The distributed engines can start from nothing and build the whole graph online."""

    @pytest.mark.parametrize(
        "engine_class", [BufferedMISNetwork, DirectMISNetwork, AsyncDirectMISNetwork]
    )
    def test_build_a_graph_online(self, engine_class, small_random_graph):
        network = engine_class(seed=5)
        history = build_sequence(small_random_graph, seed=3)
        for change in history:
            network.apply(change)
        network.verify()
        assert network.graph == small_random_graph

    @pytest.mark.parametrize("engine_class", [BufferedMISNetwork, DirectMISNetwork])
    def test_first_node_joins_the_mis(self, engine_class):
        network = engine_class(seed=6)
        network.apply(NodeInsertion("first"))
        assert network.mis() == {"first"}
        network.verify()


class TestInvalidChangesAreRejected:
    def test_sync_network_validates_changes(self, small_random_graph):
        network = BufferedMISNetwork(seed=1, initial_graph=small_random_graph)
        existing_edge = small_random_graph.edges()[0]
        with pytest.raises(GraphError):
            network.apply(EdgeInsertion(*existing_edge))
        with pytest.raises(GraphError):
            network.apply(NodeDeletion("missing"))
        with pytest.raises(TypeError):
            network.apply(object())

    def test_async_network_validates_changes(self, small_random_graph):
        network = AsyncDirectMISNetwork(seed=2, initial_graph=small_random_graph)
        with pytest.raises(GraphError):
            network.apply(NodeDeletion("missing"))
        with pytest.raises(TypeError):
            network.apply(object())

    def test_rejected_change_leaves_state_intact(self, small_random_graph):
        network = BufferedMISNetwork(seed=3, initial_graph=small_random_graph)
        before = network.states()
        with pytest.raises(GraphError):
            network.apply(NodeDeletion("missing"))
        assert network.states() == before
        assert network.metrics.num_changes == 0


class TestGracefulVersusAbruptEdgeDeletion:
    def test_both_variants_produce_the_same_structure(self, small_random_graph):
        graceful = BufferedMISNetwork(seed=4, initial_graph=small_random_graph)
        abrupt = BufferedMISNetwork(seed=4, initial_graph=small_random_graph)
        for index, edge in enumerate(list(small_random_graph.edges())[:6]):
            from repro.workloads.changes import EdgeDeletion

            graceful.apply(EdgeDeletion(*edge, graceful=True))
            abrupt.apply(EdgeDeletion(*edge, graceful=False))
            assert graceful.mis() == abrupt.mis()
        graceful.verify()
        abrupt.verify()


class TestUpdateWorkInstrumentation:
    def test_work_and_evaluations_are_recorded(self, small_random_graph):
        maintainer = DynamicMIS(seed=7, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 40, seed=8):
            report = maintainer.apply(change)
            assert report.update_work >= 0
            assert report.propagation.evaluations >= 0
            # Work counts neighbor inspections, so it is zero exactly when no
            # node re-evaluated its invariant.
            if report.propagation.evaluations == 0:
                assert report.update_work == 0
        assert maintainer.statistics.mean_update_work() >= 0.0
        assert len(maintainer.statistics.update_work) == 40

    def test_work_exceeds_influenced_size_on_dense_graphs(self):
        graph = generators.complete_graph(10)
        maintainer = DynamicMIS(seed=9, initial_graph=graph)
        victim = sorted(maintainer.mis(), key=repr)[0]
        report = maintainer.delete_node(victim)
        # The single influenced node forces inspecting Theta(Delta) neighbors.
        assert report.num_adjustments <= 2
        assert report.update_work >= graph.num_nodes() - 2


class TestMetricsBookkeeping:
    def test_adjusted_nodes_are_reported(self, small_random_graph):
        network = DirectMISNetwork(seed=10, initial_graph=small_random_graph)
        target = sorted(network.mis(), key=repr)[0]
        metrics = network.apply(NodeDeletion(target, graceful=False))
        assert len(metrics.adjusted_nodes) == metrics.adjustments
        assert target not in metrics.adjusted_nodes

    def test_change_kind_recorded_for_unmuting(self, small_random_graph):
        from repro.workloads.changes import NodeUnmuting

        network = BufferedMISNetwork(seed=11, initial_graph=small_random_graph)
        metrics = network.apply(
            NodeUnmuting("ghost", tuple(sorted(small_random_graph.nodes())[:2]))
        )
        assert metrics.change_kind == "node_unmuting"
        assert network.metrics.change_kinds() == ["node_unmuting"]
