"""Unit tests for the user-facing DynamicMIS maintainer."""

from __future__ import annotations

import pytest

from repro.core.dynamic_mis import DynamicMIS, MaintainerStatistics
from repro.core.greedy import greedy_mis
from repro.core.priorities import DeterministicPriorityAssigner
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)
from repro.workloads.sequences import mixed_churn_sequence


class TestBasicOperations:
    def test_empty_start(self):
        maintainer = DynamicMIS(seed=0)
        assert maintainer.mis() == set()
        assert maintainer.statistics.num_changes == 0

    def test_initial_graph(self, small_random_graph):
        maintainer = DynamicMIS(seed=1, initial_graph=small_random_graph)
        maintainer.verify()
        check_maximal_independent_set(maintainer.graph, maintainer.mis())

    def test_apply_dispatches_every_change_type(self):
        maintainer = DynamicMIS(seed=2)
        maintainer.apply(NodeInsertion("a"))
        maintainer.apply(NodeInsertion("b"))
        maintainer.apply(EdgeInsertion("a", "b"))
        maintainer.apply(EdgeDeletion("a", "b"))
        maintainer.apply(NodeUnmuting("c", ("a",)))
        maintainer.apply(NodeDeletion("b"))
        assert maintainer.statistics.num_changes == 6
        assert maintainer.statistics.change_kinds == [
            "node_insertion",
            "node_insertion",
            "edge_insertion",
            "edge_deletion",
            "node_insertion",
            "node_deletion",
        ]
        maintainer.verify()

    def test_apply_unknown_change_type_raises(self):
        maintainer = DynamicMIS(seed=0)
        with pytest.raises(TypeError):
            maintainer.apply("not a change")

    def test_in_mis_accessor(self):
        maintainer = DynamicMIS(seed=0)
        maintainer.insert_node(1)
        assert maintainer.in_mis(1) is True

    def test_apply_sequence_returns_reports(self, small_random_graph):
        maintainer = DynamicMIS(seed=3, initial_graph=small_random_graph)
        sequence = mixed_churn_sequence(small_random_graph, 20, seed=4)
        reports = maintainer.apply_sequence(sequence)
        assert len(reports) == 20
        assert maintainer.statistics.num_changes == 20


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_churn_tracks_greedy_oracle(self, seed, medium_random_graph):
        maintainer = DynamicMIS(seed=seed, initial_graph=medium_random_graph)
        for change in mixed_churn_sequence(medium_random_graph, 120, seed=seed + 7):
            maintainer.apply(change)
            assert maintainer.mis() == greedy_mis(maintainer.graph, maintainer.priorities)
        maintainer.verify()

    def test_deterministic_priorities_give_deterministic_output(self, small_random_graph):
        runs = []
        for _ in range(2):
            maintainer = DynamicMIS(
                priorities=DeterministicPriorityAssigner(), initial_graph=small_random_graph
            )
            for change in mixed_churn_sequence(small_random_graph, 30, seed=5):
                maintainer.apply(change)
            runs.append(frozenset(maintainer.mis()))
        assert runs[0] == runs[1]


class TestStatistics:
    def test_statistics_accumulate(self, small_random_graph):
        maintainer = DynamicMIS(seed=4, initial_graph=small_random_graph)
        sequence = mixed_churn_sequence(small_random_graph, 50, seed=6)
        maintainer.apply_sequence(sequence)
        stats = maintainer.statistics
        assert stats.num_changes == 50
        assert len(stats.influenced_sizes) == 50
        assert stats.mean_influenced_size() >= stats.mean_adjustments() - 1e-9
        assert stats.max_adjustments() >= 0
        assert stats.mean_propagation_depth() >= 0.0

    def test_empty_statistics(self):
        stats = MaintainerStatistics()
        assert stats.mean_adjustments() == 0.0
        assert stats.mean_influenced_size() == 0.0
        assert stats.max_adjustments() == 0

    def test_adjustments_never_exceed_influenced_size(self, small_random_graph):
        maintainer = DynamicMIS(seed=8, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 60, seed=9):
            report = maintainer.apply(change)
            assert report.num_adjustments <= max(report.influenced_size, 1)


class TestClusteringView:
    def test_clustering_centers_are_mis_nodes(self, small_random_graph):
        maintainer = DynamicMIS(seed=5, initial_graph=small_random_graph)
        clusters = maintainer.clustering()
        mis = maintainer.mis()
        assert set(clusters) == set(maintainer.graph.nodes())
        assert set(clusters.values()) <= mis

    def test_clustering_follows_topology_changes(self, small_random_graph):
        maintainer = DynamicMIS(seed=6, initial_graph=small_random_graph)
        for change in mixed_churn_sequence(small_random_graph, 25, seed=3):
            maintainer.apply(change)
            clusters = maintainer.clustering()
            mis = maintainer.mis()
            for node, center in clusters.items():
                if node in mis:
                    assert center == node
                else:
                    assert center in mis
                    assert maintainer.graph.has_edge(node, center)
