"""Unit tests for the workload sequence generators."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import EdgeInsertion, NodeInsertion
from repro.workloads.sequences import (
    alternative_histories,
    build_sequence,
    detour_build_sequence,
    edge_churn_sequence,
    incremental_build_sequence,
    mixed_churn_sequence,
    node_churn_sequence,
    replay_on_graph,
    sliding_window_sequence,
    teardown_sequence,
)


class TestBuildSequences:
    def test_build_sequence_reconstructs_graph(self, small_random_graph):
        changes = build_sequence(small_random_graph)
        rebuilt = replay_on_graph(DynamicGraph(), changes)
        assert rebuilt == small_random_graph

    def test_build_sequence_shuffled_still_reconstructs(self, small_random_graph):
        changes = build_sequence(small_random_graph, seed=13)
        rebuilt = replay_on_graph(DynamicGraph(), changes)
        assert rebuilt == small_random_graph

    def test_incremental_build_reconstructs(self, small_random_graph):
        changes = incremental_build_sequence(small_random_graph, seed=5)
        rebuilt = replay_on_graph(DynamicGraph(), changes)
        assert rebuilt == small_random_graph
        assert all(isinstance(change, NodeInsertion) for change in changes)

    def test_detour_build_reconstructs_and_detours(self, small_random_graph):
        changes = detour_build_sequence(small_random_graph, num_detours=4, seed=3)
        rebuilt = replay_on_graph(DynamicGraph(), changes)
        assert rebuilt == small_random_graph
        plain = build_sequence(small_random_graph, seed=3)
        assert len(changes) == len(plain) + 8  # four inserted + four removed

    def test_teardown_sequence_empties_graph(self, small_random_graph):
        changes = teardown_sequence(small_random_graph, seed=2)
        emptied = replay_on_graph(small_random_graph, changes)
        assert emptied.num_nodes() == 0

    def test_alternative_histories_reach_same_graph(self, small_random_graph):
        histories = alternative_histories(small_random_graph, num_histories=5, seed=1)
        assert len(histories) == 5
        for history in histories:
            assert replay_on_graph(DynamicGraph(), history) == small_random_graph
        # The histories themselves genuinely differ.
        assert len({tuple(map(repr, history)) for history in histories}) > 1


class TestChurnSequences:
    def test_edge_churn_is_applicable(self, small_random_graph):
        changes = edge_churn_sequence(small_random_graph, 80, seed=4)
        assert len(changes) == 80
        replay_on_graph(small_random_graph, changes)  # raises if any change is invalid

    def test_edge_churn_preserves_node_set(self, small_random_graph):
        changes = edge_churn_sequence(small_random_graph, 50, seed=5)
        final = replay_on_graph(small_random_graph, changes)
        assert set(final.nodes()) == set(small_random_graph.nodes())

    def test_edge_churn_needs_two_nodes(self):
        with pytest.raises(ValueError):
            edge_churn_sequence(generators.empty_graph(1), 5)

    def test_edge_churn_insert_bias(self, small_random_graph):
        mostly_insert = edge_churn_sequence(
            small_random_graph, 60, seed=6, insert_probability=0.95
        )
        inserts = sum(1 for change in mostly_insert if isinstance(change, EdgeInsertion))
        assert inserts > 40

    def test_node_churn_is_applicable(self, small_random_graph):
        changes = node_churn_sequence(small_random_graph, 40, seed=7)
        assert len(changes) == 40
        replay_on_graph(small_random_graph, changes)

    def test_mixed_churn_is_applicable(self, medium_random_graph):
        changes = mixed_churn_sequence(medium_random_graph, 100, seed=8)
        assert len(changes) == 100
        replay_on_graph(medium_random_graph, changes)

    def test_churn_is_reproducible(self, small_random_graph):
        first = mixed_churn_sequence(small_random_graph, 30, seed=9)
        second = mixed_churn_sequence(small_random_graph, 30, seed=9)
        assert list(map(repr, first)) == list(map(repr, second))

    def test_churn_does_not_mutate_input_graph(self, small_random_graph):
        before = small_random_graph.copy()
        mixed_churn_sequence(small_random_graph, 30, seed=10)
        assert small_random_graph == before


class TestSlidingWindow:
    def test_sequence_is_applicable_and_respects_window(self):
        changes = sliding_window_sequence(num_nodes=15, window_size=10, num_changes=60, seed=3)
        graph = replay_on_graph(generators.empty_graph(15), changes)
        assert graph.num_edges() <= 10

    def test_requested_length(self):
        changes = sliding_window_sequence(num_nodes=10, window_size=5, num_changes=40, seed=4)
        assert len(changes) == 40
