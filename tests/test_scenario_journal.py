"""Unit tests for the delta journal and time travel (``repro.scenario.journal``).

The load-bearing contract is **journal-folded snapshot == fresh full
snapshot**: a fold derives the knowledge map from the folded topology and
states (the quiescence invariant), so any drift between the two would
corrupt every delta checkpoint.  It is property-tested here over seeded
churn -- including deletion/reinsertion sequences that recycle free-list
ids in the fast core -- for both network cores, a synchronous and an
asynchronous (random-scheduler) protocol, and both sequential engines.

On top of that: ``replay_to`` time travel, delta checkpoints through the
v2 JSON codec, v1 decode compatibility, the recursive key/state-tree
codecs, the atomic ``save_checkpoint`` rewrite, and ``repro-mis bisect``
(no divergence, planted divergence, and the CLI entry).
"""

from __future__ import annotations

import copy
import dataclasses
import json
import os
import pathlib

import pytest

from repro.core.engine_api import EngineSnapshot
from repro.distributed.fast_network import FastBufferedMISNetwork
from repro.distributed.state import NetworkSnapshot
from repro.scenario import (
    BackendSpec,
    BisectResult,
    CheckpointFormatError,
    DeltaJournal,
    GraphSpec,
    JournalError,
    ScenarioSpec,
    Session,
    WorkloadSpec,
    bisect_first_divergence,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.scenario.checkpoint_io import (
    FORMAT,
    FORMAT_V1,
    _decode_key,
    _decode_state_tree,
    _encode_key,
    _encode_state_tree,
)


def _network_spec(
    network: str = "fast",
    protocol: str = "buffered",
    scheduler=None,
    workload: str = "mixed_churn",
    num_changes: int = 40,
    seed: int = 11,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"journal-{protocol}-{network}",
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=24, seed=seed + 1),
        workload=WorkloadSpec(kind=workload, num_changes=num_changes, seed=seed + 2),
        backend=BackendSpec(
            runner="protocol", network=network, protocol=protocol, scheduler=scheduler
        ),
    )


def _engine_spec(engine: str = "fast", num_changes: int = 40, seed: int = 11) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"journal-{engine}",
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=24, seed=seed + 1),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=num_changes, seed=seed + 2),
        backend=BackendSpec(runner="sequential", engine=engine),
    )


def _assert_snapshots_equal(folded, fresh) -> None:
    """Field-for-field equality up to node/edge enumeration order."""
    assert type(folded) is type(fresh)
    assert sorted(folded.nodes, key=repr) == sorted(fresh.nodes, key=repr)

    def canon(edges):
        return sorted(
            ((u, v) if repr(u) <= repr(v) else (v, u) for u, v in edges),
            key=repr,
        )

    assert canon(folded.edges) == canon(fresh.edges)
    assert folded.states == fresh.states
    assert folded.priority_keys == fresh.priority_keys
    if isinstance(fresh, NetworkSnapshot):
        assert folded.protocol == fresh.protocol
        assert folded.knowledge == fresh.knowledge
        assert folded.scheduler_cursor == fresh.scheduler_cursor
        assert folded.scheduler_state == fresh.scheduler_state
        assert [m.as_dict() for m in folded.metrics] == [
            m.as_dict() for m in fresh.metrics
        ]


# ----------------------------------------------------------------------
# The fold contract: folded == fresh full snapshot, at every position
# ----------------------------------------------------------------------
class TestFoldEqualsFreshSnapshot:
    @pytest.mark.parametrize("network", ["dict", "fast"])
    @pytest.mark.parametrize(
        "protocol,scheduler",
        [("buffered", None), ("async-direct", {"kind": "random", "seed": 5})],
    )
    def test_network_sessions(self, network, protocol, scheduler):
        session = Session(
            _network_spec(network, protocol, scheduler), record_journal=True
        )
        while not session.done:
            session.step()
            folded = session.journal.fold(session.position)
            _assert_snapshots_equal(folded.snapshot, session.network.snapshot())

    @pytest.mark.parametrize("engine", ["template", "fast"])
    def test_sequential_sessions(self, engine):
        session = Session(_engine_spec(engine), record_journal=True)
        reference = Session(_engine_spec(engine))
        while not session.done:
            session.step()
            reference.step()
            folded = session.journal.fold(session.position)
            _assert_snapshots_equal(folded.snapshot, session.maintainer.engine.snapshot())
            stats = folded.statistics
            assert stats.influenced_sizes == reference.maintainer.statistics.influenced_sizes
            assert stats.change_kinds == reference.maintainer.statistics.change_kinds

    def test_id_reuse_in_the_fast_core(self):
        """Deletion/reinsertion churn recycles free-list ids; the label-keyed
        fold must be oblivious to it."""
        from repro.workloads.changes import NodeDeletion, NodeInsertion

        spec = _network_spec("fast", "buffered", num_changes=10)
        session = Session(spec, record_journal=True)
        nodes = sorted(session.initial_graph.nodes())
        backend = session.network
        position = session.position
        for round_number in range(3):
            for change in (
                NodeDeletion(nodes[0]),
                NodeDeletion(nodes[1]),
                NodeInsertion(f"re{round_number}", (nodes[2], nodes[3])),
                NodeInsertion(nodes[0], (f"re{round_number}", nodes[4])),
                NodeInsertion(nodes[1], (nodes[0],)),
                NodeDeletion(f"re{round_number}"),
            ):
                removed = session.journal.pre_change(backend, change)
                record = backend.apply(change)
                position += 1
                session.journal.record_change(
                    backend, change, record, removed_edges=removed
                )
                folded = session.journal.fold(position)
                _assert_snapshots_equal(folded.snapshot, backend.snapshot())
        backend.check_interning_invariants()

    def test_adaptive_adversary_state_rides_in_entries(self):
        spec = _network_spec(workload="adaptive_adversary", num_changes=16)
        session = Session(spec, record_journal=True)
        for _ in range(9):
            session.step()
        folded = session.journal.fold(session.position)
        assert folded.workload_state == session._adversary.getstate()
        assert folded.elapsed_s == pytest.approx(session.elapsed_s)


class TestJournalGuards:
    def test_batched_specs_are_rejected(self):
        spec = dataclasses.replace(_engine_spec(), batch_size=4)
        with pytest.raises(JournalError, match="unbatched"):
            Session(spec, record_journal=True)

    def test_fold_position_must_be_in_range(self):
        session = Session(_engine_spec(num_changes=10), record_journal=True)
        session.step()
        with pytest.raises(JournalError, match="outside"):
            session.journal.fold(5)
        with pytest.raises(JournalError, match="outside"):
            session.journal.slice(-1)

    def test_node_deletion_without_pre_change_is_rejected(self):
        from repro.workloads.changes import NodeDeletion

        session = Session(_network_spec(num_changes=10), record_journal=True)
        backend = session.network
        node = sorted(session.initial_graph.nodes())[0]
        record = backend.apply(NodeDeletion(node))
        with pytest.raises(JournalError, match="pre_change"):
            session.journal.record_change(backend, NodeDeletion(node), record)

    def test_base_must_be_a_known_snapshot_flavor(self):
        with pytest.raises(JournalError, match="NetworkSnapshot"):
            DeltaJournal({"not": "a snapshot"})


# ----------------------------------------------------------------------
# Time travel: replay_to
# ----------------------------------------------------------------------
class TestReplayTo:
    def test_replayed_session_continues_identically(self):
        spec = _network_spec(
            "fast", "async-direct", {"kind": "random", "seed": 7}, num_changes=30
        )
        recorded = Session(spec, record_journal=True)
        while not recorded.done:
            recorded.step()
        reference_records = [r.as_dict() for r in recorded.network.metrics.records]
        for position in (0, 11, 23):
            replayed = recorded.replay_to(position)
            assert replayed.position == position
            while not replayed.done:
                replayed.step()
            assert replayed.states() == recorded.states()
            assert [
                r.as_dict() for r in replayed.network.metrics.records
            ] == reference_records

    def test_replay_to_needs_a_recorded_journal(self):
        session = Session(_engine_spec(num_changes=10))
        with pytest.raises(JournalError, match="record_journal"):
            session.replay_to(3)

    def test_replayed_session_can_itself_record(self):
        recorded = Session(_engine_spec(num_changes=20), record_journal=True)
        while not recorded.done:
            recorded.step()
        replayed = recorded.replay_to(8, record_journal=True)
        replayed.step()
        assert replayed.journal.position == 9


# ----------------------------------------------------------------------
# Checkpoint v2: delta checkpoints through JSON, v1 compatibility
# ----------------------------------------------------------------------
class TestCheckpointV2:
    def test_delta_checkpoint_shares_the_base_and_resolves_equal(self):
        session = Session(_network_spec(num_changes=30), record_journal=True)
        for _ in range(12):
            session.step()
        delta = session.checkpoint()
        full = session.checkpoint(full=True)
        assert delta.journal is not None
        assert delta.snapshot is session.journal.base_snapshot  # aliased, not copied
        resolved = delta.resolve()
        assert resolved.journal is None
        _assert_snapshots_equal(resolved.snapshot, full.snapshot)

    @pytest.mark.parametrize(
        "scheduler", [None, {"kind": "random", "seed": 5}], ids=["default", "random"]
    )
    def test_async_delta_checkpoint_round_trips_json(self, scheduler):
        spec = _network_spec("fast", "async-direct", scheduler, num_changes=30)
        session = Session(spec, record_journal=True)
        for _ in range(13):
            session.step()
        delta = session.checkpoint()
        wire = json.dumps(checkpoint_to_dict(delta), sort_keys=True)
        record = json.loads(wire)
        assert record["format"] == FORMAT
        resumed = Session.resume(checkpoint_from_dict(record))
        while not session.done:
            session.step()
            resumed.step()
        assert resumed.states() == session.states()
        assert [r.as_dict() for r in resumed.network.metrics.records] == [
            r.as_dict() for r in session.network.metrics.records
        ]

    def test_sequential_delta_checkpoint_round_trips_json(self):
        session = Session(_engine_spec(num_changes=30), record_journal=True)
        for _ in range(17):
            session.step()
        delta = session.checkpoint()
        resumed = Session.resume(
            checkpoint_from_dict(json.loads(json.dumps(checkpoint_to_dict(delta))))
        )
        while not session.done:
            session.step()
            resumed.step()
        assert resumed.states() == session.states()
        assert (
            resumed.maintainer.statistics.influenced_sizes
            == session.maintainer.statistics.influenced_sizes
        )

    def test_v1_records_still_decode(self):
        """A pre-journal checkpoint file (v1 format, no scheduler_state, no
        journal key) must keep loading -- the new fields default to None."""
        session = Session(_network_spec(num_changes=20))
        for _ in range(6):
            session.step()
        record = checkpoint_to_dict(session.checkpoint())
        v1 = copy.deepcopy(record)
        v1["format"] = FORMAT_V1
        v1.pop("journal", None)
        v1["snapshot"].pop("scheduler_state", None)
        checkpoint = checkpoint_from_dict(v1)
        assert checkpoint.snapshot.scheduler_state is None
        assert checkpoint.journal is None
        resumed = Session.resume(checkpoint)
        assert resumed.states() == session.states()

    def test_unsupported_formats_are_rejected(self):
        record = checkpoint_to_dict(Session(_engine_spec(num_changes=5)).checkpoint())
        record["format"] = "repro-checkpoint-v99"
        with pytest.raises(CheckpointFormatError, match="supported"):
            checkpoint_from_dict(record)


class TestRecursiveCodecs:
    def test_nested_keys_round_trip(self):
        # Reduction labels nest tuples inside priority keys; the codec must
        # rebuild the exact tuple tree, not just the top level.
        keys = [
            (0.25, 3),
            (("line", ("a", "b")), 0.5, 7),
            ((("deep", (1, ("deeper", 2))), 0.125), 4),
        ]
        for key in keys:
            assert _decode_key(_encode_key(key)) == key

    def test_state_trees_round_trip(self):
        state = ("uniform-rng", (3, tuple(range(10)), None))
        assert _decode_state_tree(_encode_state_tree(state)) == state
        assert _encode_state_tree(None) is None
        assert _decode_state_tree(None) is None

    def test_nested_reduction_labels_survive_a_checkpoint(self):
        """End-to-end: a snapshot with tuple-structured node labels and keys
        round-trips the JSON codec exactly (the v1 codec flattened these)."""
        session = Session(_engine_spec(num_changes=8))
        for _ in range(4):
            session.step()
        checkpoint = session.checkpoint()
        nodes = tuple(checkpoint.snapshot.nodes) + (("line", ("u", ("v", 2))),)
        keys = dict(checkpoint.snapshot.priority_keys)
        keys[("line", ("u", ("v", 2)))] = (("nested", (1, 2)), 0.5)
        states = dict(checkpoint.snapshot.states)
        states[("line", ("u", ("v", 2)))] = False
        snapshot = dataclasses.replace(
            checkpoint.snapshot, nodes=nodes, priority_keys=keys, states=states
        )
        checkpoint = dataclasses.replace(checkpoint, snapshot=snapshot)
        decoded = checkpoint_from_dict(
            json.loads(json.dumps(checkpoint_to_dict(checkpoint)))
        )
        assert decoded.snapshot.nodes == snapshot.nodes
        assert decoded.snapshot.priority_keys == snapshot.priority_keys


class TestSaveCheckpoint:
    def test_atomic_write_and_load(self, tmp_path):
        session = Session(_engine_spec(num_changes=10), record_journal=True)
        for _ in range(4):
            session.step()
        target = tmp_path / "checkpoint.json"
        save_checkpoint(target, session.checkpoint())
        loaded = load_checkpoint(target)
        assert loaded.position == 4
        assert loaded.journal is not None
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_failed_replace_cleans_up_the_temp_file(self, tmp_path, monkeypatch):
        session = Session(_engine_spec(num_changes=10))
        session.step()
        target = tmp_path / "checkpoint.json"

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(target, session.checkpoint())
        assert list(tmp_path.iterdir()) == []  # no orphaned .tmp sibling

    def test_concurrent_writers_use_distinct_temp_names(self, tmp_path, monkeypatch):
        session = Session(_engine_spec(num_changes=10))
        session.step()
        checkpoint = session.checkpoint()
        seen = []
        original = os.replace

        def spying_replace(src, dst):
            seen.append(pathlib.Path(src).name)
            return original(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        target = tmp_path / "checkpoint.json"
        save_checkpoint(target, checkpoint)
        save_checkpoint(target, checkpoint)
        assert len(seen) == 2 and seen[0] != seen[1]


# ----------------------------------------------------------------------
# Bisect: binary search for the first divergent change
# ----------------------------------------------------------------------
def _lying_fast_step(monkeypatch: pytest.MonkeyPatch) -> None:
    """Make the fast buffered core under-report its state changes."""
    honest = FastBufferedMISNetwork._node_step

    def lying_step(self, nid, inbox, round_no):
        outgoing, changed = honest(self, nid, inbox, round_no)
        if changed:
            return outgoing, False
        return outgoing, changed

    monkeypatch.setattr(FastBufferedMISNetwork, "_node_step", lying_step)


class TestBisect:
    def test_agreeing_backends_report_no_divergence(self):
        result = bisect_first_divergence(
            _network_spec("dict", num_changes=25), networks=("dict", "fast")
        )
        assert isinstance(result, BisectResult)
        assert not result.diverged
        assert result.position is None
        assert result.probes == (25,)  # one probe at the end settles it

    def test_planted_divergence_is_pinned_to_its_first_change(self, monkeypatch):
        reference = bisect_first_divergence(
            _network_spec("dict", num_changes=25), networks=("dict", "fast")
        )
        assert not reference.diverged
        _lying_fast_step(monkeypatch)
        result = bisect_first_divergence(
            _network_spec("dict", num_changes=25), networks=("dict", "fast")
        )
        assert result.diverged
        assert result.position is not None and 1 <= result.position <= 25
        assert result.change is not None
        assert "state_changes" in result.detail or "record" in result.detail
        # O(log N) probing, not a linear scan.
        assert len(result.probes) <= 8

    def test_resume_at_probe_passes_when_resume_is_exact(self):
        spec = _network_spec(
            "fast", "async-direct", {"kind": "random", "seed": 3}, num_changes=20
        )
        result = bisect_first_divergence(spec, resume_at=8)
        assert not result.diverged

    def test_engines_pair_bisects_sequential_scenarios(self):
        result = bisect_first_divergence(
            _engine_spec(num_changes=20), engines=("template", "fast")
        )
        assert not result.diverged

    def test_argument_validation(self):
        spec = _engine_spec(num_changes=5)
        with pytest.raises(ValueError, match="not both"):
            bisect_first_divergence(
                spec, networks=("dict", "fast"), engines=("template", "fast")
            )
        with pytest.raises(ValueError, match="nothing to compare"):
            bisect_first_divergence(spec)
        with pytest.raises(ValueError, match="exactly"):
            bisect_first_divergence(spec, engines=("template",))

    def test_cli_bisect_exits_one_on_divergence(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        _network_spec("dict", num_changes=25).save(spec_path)
        assert (
            main(["bisect", "--scenario", str(spec_path), "--networks", "dict,fast"])
            == 0
        )
        _lying_fast_step(monkeypatch)
        assert (
            main(["bisect", "--scenario", str(spec_path), "--networks", "dict,fast"])
            == 1
        )
        out = capsys.readouterr().out
        assert "first divergent change" in out
