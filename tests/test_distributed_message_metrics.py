"""Unit tests for message bit accounting and the metrics aggregator."""

from __future__ import annotations

import pytest

from repro.distributed.message import (
    Message,
    MessageKind,
    expected_comparison_bits,
    id_message_bits,
    state_message_bits,
)
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator


class TestMessageBits:
    def test_state_message_is_constant_size(self):
        message = Message(sender=1, kind=MessageKind.STATE, state="C")
        assert message.bits(10) == state_message_bits() == 2
        assert message.bits(10_000) == 2

    def test_id_message_grows_logarithmically(self):
        message = Message(sender=1, kind=MessageKind.ID_AND_STATE, state="M", random_id=(0.5,))
        small = message.bits(16)
        large = message.bits(16_384)
        assert small < large
        assert large == id_message_bits(16_384)
        assert id_message_bits(16_384) <= 2 * 14 + 2

    def test_id_bits_monotone_in_bound(self):
        previous = 0
        for bound in (2, 8, 64, 1024, 10_000):
            bits = id_message_bits(bound)
            assert bits >= previous
            previous = bits

    def test_expected_comparison_bits_is_constant(self):
        assert expected_comparison_bits() == pytest.approx(4.0)

    def test_message_defaults(self):
        message = Message(
            sender="a", kind=MessageKind.ID_AND_STATE, state="M_BAR", random_id=(0.1,)
        )
        assert message.requests_introduction is True
        assert message.round_sent == 0


class TestChangeMetrics:
    def test_as_dict_contains_core_fields(self):
        metrics = ChangeMetrics("edge_insertion", rounds=3, broadcasts=5, bits=12, adjustments=1)
        record = metrics.as_dict()
        assert record["change_kind"] == "edge_insertion"
        assert record["rounds"] == 3
        assert record["broadcasts"] == 5
        assert "async_causal_depth" not in record

    def test_as_dict_includes_async_depth_when_present(self):
        metrics = ChangeMetrics("edge_insertion", async_causal_depth=4)
        assert metrics.as_dict()["async_causal_depth"] == 4


class TestMetricsAggregator:
    def _populated(self) -> MetricsAggregator:
        aggregator = MetricsAggregator()
        aggregator.add(
            ChangeMetrics("edge_insertion", rounds=2, broadcasts=3, bits=10, adjustments=1)
        )
        aggregator.add(
            ChangeMetrics("edge_insertion", rounds=4, broadcasts=1, bits=4, adjustments=0)
        )
        aggregator.add(
            ChangeMetrics("node_deletion", rounds=6, broadcasts=9, bits=20, adjustments=3)
        )
        return aggregator

    def test_counts_and_means(self):
        aggregator = self._populated()
        assert aggregator.num_changes == 3
        assert aggregator.mean("rounds") == pytest.approx(4.0)
        assert aggregator.mean("adjustments") == pytest.approx(4 / 3)
        assert aggregator.mean("rounds", "edge_insertion") == pytest.approx(3.0)

    def test_maximum_and_total(self):
        aggregator = self._populated()
        assert aggregator.maximum("broadcasts") == 9
        assert aggregator.total("bits") == 34
        assert aggregator.total("bits", "node_deletion") == 20

    def test_change_kinds_order(self):
        aggregator = self._populated()
        assert aggregator.change_kinds() == ["edge_insertion", "node_deletion"]

    def test_by_kind_summary(self):
        aggregator = self._populated()
        summary = aggregator.by_kind_summary("adjustments")
        assert summary["edge_insertion"] == pytest.approx(0.5)
        assert summary["node_deletion"] == pytest.approx(3.0)

    def test_summary_keys(self):
        summary = self._populated().summary()
        for key in (
            "mean_adjustments",
            "mean_rounds",
            "mean_broadcasts",
            "mean_bits",
            "max_adjustments",
            "max_rounds",
            "max_broadcasts",
            "num_changes",
        ):
            assert key in summary

    def test_empty_aggregator(self):
        aggregator = MetricsAggregator()
        assert aggregator.mean("rounds") == 0.0
        assert aggregator.maximum("rounds") == 0.0
        assert aggregator.change_kinds() == []

    def test_extend(self):
        aggregator = MetricsAggregator()
        aggregator.extend([ChangeMetrics("edge_insertion"), ChangeMetrics("edge_deletion")])
        assert aggregator.num_changes == 2
