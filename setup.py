"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that editable installs work in offline environments where the ``wheel``
package (required by PEP 660 editable builds) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
