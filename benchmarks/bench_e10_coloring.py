"""E10 -- Example 3 (Section 5): coloring.

Paper claims:

* Random greedy sequential coloring 2-colors the complete-bipartite-minus-
  perfect-matching graph with probability 1 - 1/n, so its expected palette is
  a constant factor from optimal, while an adversarial insertion order forces
  first-fit into Theta(Delta) colors.
* The standard clique-blowup reduction turns the dynamic MIS into a history
  independent dynamic (Delta+1)-coloring, at a cost of up to ~2*Delta
  adjustments per change (which is why the paper leaves cheaper dynamic
  coloring open).

Reproduction: (a) measure the expected number of colors of random greedy on
the bipartite-minus-matching family vs the adversarial first-fit order;
(b) run the reduction-based dynamic coloring under edge churn, verify it stays
proper with Delta+1 colors and measure its per-change adjustment overhead.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.coloring.dynamic_coloring import DynamicColoring, total_adjustments
from repro.coloring.greedy_coloring import (
    adversarial_first_fit_coloring,
    num_colors_used,
    random_greedy_coloring,
)
from repro.graph.generators import complete_bipartite_minus_matching, near_regular_graph
from repro.graph.validation import check_proper_coloring
from repro.workloads.sequences import edge_churn_sequence

from harness import emit, emit_table, run_once

SIDE_SIZES = (4, 8, 16)
SEEDS = range(60)
CHURN_NODES = 14
CHURN_DEGREE = 3
CHURN_CHANGES = 40


def run_experiment() -> Dict:
    # Part (a): random greedy vs adversarial first-fit on K_{k,k} minus a matching.
    greedy_rows: List[List] = []
    for side in SIDE_SIZES:
        graph = complete_bipartite_minus_matching(side)
        palettes = [
            num_colors_used(random_greedy_coloring(graph, seed=seed)) for seed in SEEDS
        ]
        adversarial = num_colors_used(adversarial_first_fit_coloring(graph, side))
        expected = 2.0 * (1.0 - 1.0 / (2 * side)) + side * (1.0 / (2 * side))
        greedy_rows.append([side, 2 * side, expected, mean(palettes), adversarial])

    # Part (b): the reduction-based dynamic coloring under churn.
    base = near_regular_graph(CHURN_NODES, CHURN_DEGREE, seed=5)
    palette = CHURN_NODES  # generous Delta+1 bound that churn cannot violate
    coloring = DynamicColoring(num_colors=palette, seed=6, initial_graph=base)
    adjustments_per_change: List[int] = []
    for change in edge_churn_sequence(base, CHURN_CHANGES, seed=7):
        reports = coloring.apply(change)
        adjustments_per_change.append(total_adjustments(reports))
    check_proper_coloring(coloring.graph, coloring.colors())
    colors_used = num_colors_used(coloring.colors())

    return {
        "greedy_rows": greedy_rows,
        "dynamic_mean_adjustments": mean(adjustments_per_change),
        "dynamic_max_adjustments": max(adjustments_per_change),
        "dynamic_colors_used": colors_used,
        "palette": palette,
    }


def test_e10_coloring_examples(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E10a / Example 3 -- colors used on complete bipartite minus a perfect matching",
        [
            "side size k",
            "n",
            "paper E[colors] ~ 2 + (Delta-2)/n",
            "random greedy (measured mean)",
            "adversarial first-fit (worst order)",
        ],
        result["greedy_rows"],
    )
    emit(
        "E10b -- reduction-based dynamic (Delta+1)-coloring under edge churn",
        [
            {
                "row": "coloring remains proper with Delta+1 colors",
                "paper": "reduction preserves correctness + history independence",
                "measured": result["dynamic_colors_used"],
                "verdict": "pass"
                if result["dynamic_colors_used"] <= result["palette"]
                else "CHECK",
                "detail": f"palette {result['palette']}",
            },
            {
                "row": "mean MIS adjustments per base change",
                "paper": "up to ~2*Delta (open problem to do better)",
                "measured": result["dynamic_mean_adjustments"],
                "verdict": "pass"
                if result["dynamic_mean_adjustments"] <= 2 * result["palette"]
                else "CHECK",
            },
        ],
    )

    for side, _, expected, measured, adversarial in result["greedy_rows"]:
        assert measured < 3.0           # close to 2 in expectation
        assert adversarial == side      # the adversarial order wastes Theta(Delta) colors
        assert measured < adversarial or side == 2
    assert result["dynamic_colors_used"] <= result["palette"]
    assert result["dynamic_mean_adjustments"] <= 2 * result["palette"]
