"""A5 (extension) -- dict vs id-interned network core for the protocols.

The paper's protocol guarantees are *per change* -- O(1) expected
adjustments and broadcasts -- but the dict simulator pays O(n) per change
regardless (before/after output snapshots) plus O(n log n) per round (the
full sorted sweep), which capped protocol experiments at a few thousand
nodes.  The id-interned core (:mod:`repro.distributed.fast_network`) visits
only the active neighborhood each round and computes adjustments from an
epoch-stamped touched list, so its per-change cost tracks the repair wave.

Reproduction: sweep n with constant average degree into the tens of
thousands and drive both network backends through the identical seeded
edge-churn workload twice --

* under the **buffered** protocol (Algorithm 2), rebuilt on the declarative
  scenario API: one :class:`~repro.scenario.spec.ScenarioSpec` per sweep
  point, the backend swept over it (``spec x backend`` grid through
  ``harness.run_scenario``);
* under the **asynchronous direct** protocol (the ROADMAP "fast async at
  protocol-benchmark scale" point), with one channel-deterministic
  :class:`~repro.distributed.scheduler.AdversarialDelayScheduler` per
  backend so the dict and fast event loops see the same delay assignment
  and must agree on outputs and metrics exactly.

The shape to check: the dict cores' cost grows linearly with n while the
fast cores' stays flat, with the buffered gap at n >= 20000 far beyond the
10x acceptance bar.  Identical outputs and complexity metrics are asserted
per size -- a free conformance check on every benchmark run.

Additionally measures the checkpoint overhead of the network
snapshot/restore pair (:mod:`repro.distributed.state`): one knowledge-level
``snapshot()`` plus a ``restore()`` into a fresh simulator, per backend --
the cost a scenario session pays each time ``--checkpoint-every`` fires.
The table reports the amortized per-change overhead at a 1k-change
checkpoint cadence (roundtrip / 1000).

A5d compares that full-snapshot capture against the journal-backed *delta*
checkpoint (:mod:`repro.scenario.journal`): a journal-recording session's
``checkpoint()`` aliases the shared base snapshot and slices the entry
list, so its cost tracks the touched sets -- O(|delta|) -- instead of
O(n + m).  The acceptance bar is a >= 5x cheaper capture than the full
snapshot at n = 20000 (the one-time O(n + m) fold is deferred to restore,
where it is paid once instead of at every cadence tick).

Results are emitted as a table and as JSON
(``benchmarks/results/a5_distributed.json``) so the trajectory points are
recorded in version control and gated by ``benchmarks/report.py``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.distributed.network_api import create_network
from repro.distributed.scheduler import create_scheduler
from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once, run_scenario_session

SIZES = (2000, 5000, 20000)
AVERAGE_DEGREE = 8
NUM_CHANGES = 40
PROTOCOL = "buffered"
MASTER_SEED = 20260731
TARGET_SPEEDUP_AT_MAX_N = 10.0
#: A5d acceptance bar: a delta (journal-slice) checkpoint must capture at
#: least this much cheaper than a full snapshot at the largest sweep size.
TARGET_DELTA_CHECKPOINT_RATIO = 5.0
#: Repetitions per sweep point; the fastest is recorded.  A 40-change run on
#: the fast core finishes in ~1 ms, so single-shot timings are dominated by
#: scheduler jitter on shared runners -- best-of-N keeps the committed
#: speedup trajectory stable enough for the regression gate.
TIMING_REPS = 3


def _scenario(n: int, graph_seed: int, workload_seed: int, network_seed: int) -> ScenarioSpec:
    """One sweep point as a declarative scenario (the backend is swept over it)."""
    return ScenarioSpec(
        name=f"a5-protocol-n{n}",
        seed=network_seed,
        graph=GraphSpec(
            family="erdos_renyi",
            nodes=n,
            seed=graph_seed,
            params={"edge_probability": AVERAGE_DEGREE / (n - 1)},
        ),
        workload=WorkloadSpec(kind="edge_churn", num_changes=NUM_CHANGES, seed=workload_seed),
        backend=BackendSpec(runner="protocol", protocol=PROTOCOL, engine="fast"),
    )


def _time_network(network: str, spec: ScenarioSpec) -> Dict:
    # Keep the whole best repetition, so every recorded number (per-change
    # time, total, metrics, outputs) shares one measurement's provenance.
    best = None
    for _ in range(TIMING_REPS):
        result, session = run_scenario_session(spec.with_backend(network=network))
        if best is None or result.elapsed_s < best[0].elapsed_s:
            best = (result, session)
    result, session = best
    metrics = session.network.metrics
    return {
        "network": network,
        "per_change_us": result.per_change_us,
        "total_s": result.elapsed_s,
        "num_changes": result.num_changes,
        "final_states": session.states(),
        "mean_broadcasts": metrics.mean("broadcasts"),
        "mean_rounds": metrics.mean("rounds"),
        "total_adjustments": metrics.total("adjustments"),
        "checkpoint_us": _checkpoint_roundtrip_us(network, spec, session),
    }


def _checkpoint_roundtrip_us(network: str, spec: ScenarioSpec, session) -> float:
    """Best-of-3 cost of one knowledge-level snapshot + restore roundtrip."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        snapshot = session.network.snapshot()
        fresh = create_network(spec.backend.protocol, network=network, seed=spec.seed)
        fresh.restore(snapshot)
        best = min(best, time.perf_counter() - start)
    assert fresh.states() == session.states(), "restore diverged from the source"
    return best * 1e6


def _delta_checkpoint_run(spec: ScenarioSpec) -> Dict:
    """A5d: capture cost of a delta checkpoint vs a full snapshot checkpoint.

    One journal-recording session on the fast core, run to the end; both
    capture paths are then timed on the identical state (best-of-3,
    capture only -- the fold is a one-time restore cost, not a cadence
    cost).  Resolving the delta checkpoint must land on the same state.
    """
    from repro.scenario import Session

    session = Session(spec.with_backend(network="fast"), record_journal=True)
    while not session.done:
        session.step()
    delta_s = full_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        delta = session.checkpoint()
        delta_s = min(delta_s, time.perf_counter() - start)
        start = time.perf_counter()
        session.checkpoint(full=True)
        full_s = min(full_s, time.perf_counter() - start)
    resumed = Session.resume(delta)
    assert resumed.states() == session.states(), "delta resolve diverged from the source"
    return {"delta_us": delta_s * 1e6, "full_us": full_s * 1e6}


def _time_async_network(network: str, spec: ScenarioSpec) -> Dict:
    """Asynchronous sweep point (best-of-reps, like the buffered sweep)."""
    graph, changes = spec.materialize()
    elapsed, best_simulator = float("inf"), None
    for _ in range(TIMING_REPS):
        simulator = create_network(
            "async-direct",
            network=network,
            seed=spec.seed,
            initial_graph=graph.copy(),
            scheduler=create_scheduler("adversarial", seed=spec.seed),
        )
        start = time.perf_counter()
        simulator.apply_sequence(changes)
        rep_elapsed = time.perf_counter() - start
        if rep_elapsed < elapsed:
            elapsed, best_simulator = rep_elapsed, simulator
    simulator = best_simulator
    simulator.verify(reference_engine="fast")
    metrics = simulator.metrics
    return {
        "network": network,
        "per_change_us": elapsed / len(changes) * 1e6,
        "final_states": simulator.states(),
        "mean_broadcasts": metrics.mean("broadcasts"),
        "total_adjustments": metrics.total("adjustments"),
        "mean_causal_depth": metrics.mean("async_causal_depth"),
    }


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed, network_seed = benchmark_seeds(master_seed, 3)
    rows: List[List] = []
    async_rows: List[List] = []
    checkpoint_rows: List[List] = []
    delta_rows: List[List] = []
    series: List[Dict] = []
    async_series: List[Dict] = []
    for n in SIZES:
        spec = _scenario(n, graph_seed, workload_seed, network_seed)
        dict_run = _time_network("dict", spec)
        fast_run = _time_network("fast", spec)
        num_changes = dict_run["num_changes"]
        assert dict_run["final_states"] == fast_run["final_states"], "backends diverged!"
        assert dict_run["total_adjustments"] == fast_run["total_adjustments"]
        assert dict_run["mean_broadcasts"] == fast_run["mean_broadcasts"]
        assert dict_run["mean_rounds"] == fast_run["mean_rounds"]
        speedup = dict_run["per_change_us"] / fast_run["per_change_us"]
        rows.append([n, dict_run["per_change_us"], fast_run["per_change_us"], speedup])
        checkpoint_rows.append(
            [n, dict_run["checkpoint_us"], fast_run["checkpoint_us"]]
        )
        delta_run = _delta_checkpoint_run(spec)
        delta_ratio = delta_run["full_us"] / delta_run["delta_us"]
        delta_rows.append([n, delta_run["full_us"], delta_run["delta_us"], delta_ratio])
        series.append(
            {
                "n": n,
                "num_changes": num_changes,
                "dict_per_change_us": round(dict_run["per_change_us"], 3),
                "fast_per_change_us": round(fast_run["per_change_us"], 3),
                "speedup": round(speedup, 3),
                "dict_checkpoint_us": round(dict_run["checkpoint_us"], 3),
                "fast_checkpoint_us": round(fast_run["checkpoint_us"], 3),
                "checkpoint_speedup": round(
                    dict_run["checkpoint_us"] / fast_run["checkpoint_us"], 3
                ),
                "full_checkpoint_us": round(delta_run["full_us"], 3),
                "delta_checkpoint_us": round(delta_run["delta_us"], 3),
                "delta_vs_full": round(delta_ratio, 3),
                "mean_broadcasts": round(fast_run["mean_broadcasts"], 4),
                "mean_rounds": round(fast_run["mean_rounds"], 4),
                "final_mis_size": sum(fast_run["final_states"].values()),
            }
        )

        dict_async = _time_async_network("dict", spec)
        fast_async = _time_async_network("fast", spec)
        assert dict_async["final_states"] == fast_async["final_states"], "async diverged!"
        assert dict_async["total_adjustments"] == fast_async["total_adjustments"]
        assert dict_async["mean_broadcasts"] == fast_async["mean_broadcasts"]
        async_speedup = dict_async["per_change_us"] / fast_async["per_change_us"]
        async_rows.append(
            [n, dict_async["per_change_us"], fast_async["per_change_us"], async_speedup]
        )
        async_series.append(
            {
                "n": n,
                "num_changes": num_changes,
                "dict_per_change_us": round(dict_async["per_change_us"], 3),
                "fast_per_change_us": round(fast_async["per_change_us"], 3),
                "speedup": round(async_speedup, 3),
                "mean_broadcasts": round(fast_async["mean_broadcasts"], 4),
                "mean_causal_depth": round(fast_async["mean_causal_depth"], 4),
                "final_mis_size": sum(fast_async["final_states"].values()),
            }
        )
    return {
        "rows": rows,
        "async_rows": async_rows,
        "checkpoint_rows": checkpoint_rows,
        "delta_rows": delta_rows,
        "series": series,
        "async_series": async_series,
        "speedup_at_max_n": rows[-1][3],
        "async_speedup_at_max_n": async_rows[-1][3],
        "delta_vs_full_at_max_n": delta_rows[-1][3],
        "python": sys.version.split()[0],
        "protocol": PROTOCOL,
        "average_degree": AVERAGE_DEGREE,
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {
        "series": results["series"],
        "async_series": results["async_series"],
        "protocol": results["protocol"],
        "average_degree": results["average_degree"],
        "master_seed": results["master_seed"],
        "python": results["python"],
    }


def test_a5_distributed_network_backends(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        "A5: per-change protocol time, dict vs fast network core (identical metrics)",
        ["n", "dict us/change", "fast us/change", "speedup"],
        [[n, f"{d:.1f}", f"{f:.1f}", f"{s:.1f}x"] for n, d, f, s in results["rows"]],
    )
    emit_table(
        "A5b: per-change asynchronous protocol time, dict vs fast event loop",
        ["n", "dict us/change", "fast us/change", "speedup"],
        [[n, f"{d:.1f}", f"{f:.1f}", f"{s:.1f}x"] for n, d, f, s in results["async_rows"]],
    )
    emit_table(
        "A5c: checkpoint snapshot+restore roundtrip (buffered; per-change "
        "overhead at a 1k-change checkpoint cadence)",
        ["n", "dict us/ckpt", "fast us/ckpt", "dict us/change@1k", "fast us/change@1k"],
        [
            [n, f"{d:.0f}", f"{f:.0f}", f"{d / 1000:.2f}", f"{f / 1000:.2f}"]
            for n, d, f in results["checkpoint_rows"]
        ],
    )
    emit_table(
        "A5d: delta (journal-slice) vs full-snapshot checkpoint capture "
        "(fast core; the fold is paid once at restore, not per cadence tick)",
        ["n", "full us/ckpt", "delta us/ckpt", "full/delta"],
        [
            [n, f"{full:.0f}", f"{delta:.1f}", f"{ratio:.0f}x"]
            for n, full, delta, ratio in results["delta_rows"]
        ],
    )
    emit(
        "A5: id-interned network core",
        [
            {
                "row": f"fast-network speedup per change at n={SIZES[-1]}",
                "paper": f">= {TARGET_SPEEDUP_AT_MAX_N}x (acceptance bar)",
                "measured": f"{results['speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_MAX_N
                else "CHECK",
            },
            {
                "row": f"fast async speedup per change at n={SIZES[-1]}",
                "paper": f">= {TARGET_SPEEDUP_AT_MAX_N}x (acceptance bar)",
                "measured": f"{results['async_speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["async_speedup_at_max_n"] >= TARGET_SPEEDUP_AT_MAX_N
                else "CHECK",
            },
            {
                "row": f"delta vs full checkpoint capture at n={SIZES[-1]}",
                "paper": f">= {TARGET_DELTA_CHECKPOINT_RATIO}x cheaper (acceptance bar)",
                "measured": f"{results['delta_vs_full_at_max_n']:.0f}x",
                "verdict": "pass"
                if results["delta_vs_full_at_max_n"] >= TARGET_DELTA_CHECKPOINT_RATIO
                else "CHECK",
            },
            {
                "row": "identical outputs / broadcasts / rounds / adjustments per size",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a5_distributed", _payload(results))
    # The 10x bar is reported in the claim table (and held by the recorded
    # trajectory points); the hard assert uses a lower floor so a noisy
    # shared CI runner cannot fail the nightly on timing jitter alone.
    assert results["speedup_at_max_n"] >= 5.0
    assert results["async_speedup_at_max_n"] >= 5.0
    assert results["delta_vs_full_at_max_n"] >= TARGET_DELTA_CHECKPOINT_RATIO
    speedups = [row[3] for row in results["rows"]]
    assert speedups[-1] > speedups[0]


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a5_distributed", _payload(outcome))
    for row in outcome["rows"]:
        print(row)
    for row in outcome["async_rows"]:
        print(row)
    for row in outcome["checkpoint_rows"]:
        print(row)
    for row in outcome["delta_rows"]:
        print(row)
