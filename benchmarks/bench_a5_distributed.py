"""A5 (extension) -- dict vs id-interned network core for Algorithm 2.

The paper's protocol guarantees are *per change* -- O(1) expected
adjustments and broadcasts -- but the dict simulator pays O(n) per change
regardless (before/after output snapshots) plus O(n log n) per round (the
full sorted sweep), which capped protocol experiments at a few thousand
nodes.  The id-interned core (:mod:`repro.distributed.fast_network`) visits
only the active neighborhood each round and computes adjustments from an
epoch-stamped touched list, so its per-change cost tracks the repair wave.

Reproduction: sweep n with constant average degree into the tens of
thousands, drive both network backends through the identical seeded
edge-churn sequence under the buffered protocol (Algorithm 2), and meter the
mean per-change wall-clock time.  The shape to check: the dict core's cost
grows linearly with n while the fast core's stays flat, with the gap at
n >= 20000 far beyond the 10x acceptance bar.  Both backends must also end
with identical outputs and complexity metrics -- a free conformance check on
every benchmark run.

Results are emitted as a table and as JSON
(``benchmarks/results/a5_distributed.json``) so the trajectory point is
recorded in version control and gated by ``benchmarks/report.py``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.distributed.network_api import create_network
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once

SIZES = (2000, 5000, 20000)
AVERAGE_DEGREE = 8
NUM_CHANGES = 40
PROTOCOL = "buffered"
MASTER_SEED = 20260731
TARGET_SPEEDUP_AT_MAX_N = 10.0


def _time_network(network: str, graph, changes, seed: int) -> Dict:
    simulator = create_network(PROTOCOL, network=network, seed=seed, initial_graph=graph)
    start = time.perf_counter()
    simulator.apply_sequence(changes)
    elapsed = time.perf_counter() - start
    simulator.verify(reference_engine="fast")
    metrics = simulator.metrics
    return {
        "network": network,
        "per_change_us": elapsed / len(changes) * 1e6,
        "total_s": elapsed,
        "final_states": simulator.states(),
        "mean_broadcasts": metrics.mean("broadcasts"),
        "mean_rounds": metrics.mean("rounds"),
        "total_adjustments": metrics.total("adjustments"),
    }


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed, network_seed = benchmark_seeds(master_seed, 3)
    rows: List[List] = []
    series: List[Dict] = []
    for n in SIZES:
        graph = erdos_renyi_graph(n, AVERAGE_DEGREE / (n - 1), seed=graph_seed)
        changes = edge_churn_sequence(graph, NUM_CHANGES, seed=workload_seed)
        dict_run = _time_network("dict", graph, changes, network_seed)
        fast_run = _time_network("fast", graph, changes, network_seed)
        assert dict_run["final_states"] == fast_run["final_states"], "backends diverged!"
        assert dict_run["total_adjustments"] == fast_run["total_adjustments"]
        assert dict_run["mean_broadcasts"] == fast_run["mean_broadcasts"]
        assert dict_run["mean_rounds"] == fast_run["mean_rounds"]
        speedup = dict_run["per_change_us"] / fast_run["per_change_us"]
        rows.append([n, dict_run["per_change_us"], fast_run["per_change_us"], speedup])
        series.append(
            {
                "n": n,
                "num_changes": len(changes),
                "dict_per_change_us": round(dict_run["per_change_us"], 3),
                "fast_per_change_us": round(fast_run["per_change_us"], 3),
                "speedup": round(speedup, 3),
                "mean_broadcasts": round(fast_run["mean_broadcasts"], 4),
                "mean_rounds": round(fast_run["mean_rounds"], 4),
                "final_mis_size": sum(fast_run["final_states"].values()),
            }
        )
    return {
        "rows": rows,
        "series": series,
        "speedup_at_max_n": rows[-1][3],
        "python": sys.version.split()[0],
        "protocol": PROTOCOL,
        "average_degree": AVERAGE_DEGREE,
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {
        "series": results["series"],
        "protocol": results["protocol"],
        "average_degree": results["average_degree"],
        "master_seed": results["master_seed"],
        "python": results["python"],
    }


def test_a5_distributed_network_backends(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        "A5: per-change protocol time, dict vs fast network core (identical metrics)",
        ["n", "dict us/change", "fast us/change", "speedup"],
        [[n, f"{d:.1f}", f"{f:.1f}", f"{s:.1f}x"] for n, d, f, s in results["rows"]],
    )
    emit(
        "A5: id-interned network core",
        [
            {
                "row": f"fast-network speedup per change at n={SIZES[-1]}",
                "paper": f">= {TARGET_SPEEDUP_AT_MAX_N}x (acceptance bar)",
                "measured": f"{results['speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_MAX_N
                else "CHECK",
            },
            {
                "row": "identical outputs / broadcasts / rounds / adjustments per size",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a5_distributed", _payload(results))
    # The 10x bar is reported in the claim table (and held by the recorded
    # trajectory points); the hard assert uses a lower floor so a noisy
    # shared CI runner cannot fail the nightly on timing jitter alone.
    assert results["speedup_at_max_n"] >= 5.0
    speedups = [row[3] for row in results["rows"]]
    assert speedups[-1] > speedups[0]


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a5_distributed", _payload(outcome))
    for row in outcome["rows"]:
        print(row)
