"""E5 -- the deterministic Omega(n) adjustment lower bound (and A2 ablation).

Paper claim (Section 1.1): for any deterministic algorithm there is a topology
change that forces n adjustments -- realized by deleting, one by one, the side
of K_{k,k} the algorithm chose as its MIS.  Randomization is essential: the
paper's algorithm keeps the *expected* per-change adjustment count at ~1 on
the same kind of sequence, and no algorithm can beat 1 in expectation (the
sequence forces k adjustments in total over k changes).

Reproduction: sweep k, run the deletion sequence against the deterministic
greedy baseline and against the randomized algorithm, and report the maximum
single-change adjustments and the per-change mean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.lowerbounds.deterministic import (
    run_deterministic_lower_bound,
    run_randomized_on_lower_bound_instance,
)

from harness import emit, emit_table, run_once

SIDE_SIZES = (4, 8, 16, 32)
RANDOM_SEEDS = range(8)


def run_experiment() -> Dict:
    rows: List[List] = []
    deterministic_max: List[int] = []
    randomized_mean: List[float] = []
    for side_size in SIDE_SIZES:
        deterministic = run_deterministic_lower_bound(side_size)
        randomized_runs = [
            run_randomized_on_lower_bound_instance(side_size, seed=seed) for seed in RANDOM_SEEDS
        ]
        randomized_mean_adjustments = mean([run.mean_adjustments for run in randomized_runs])
        randomized_total = mean([run.total_adjustments for run in randomized_runs])
        rows.append(
            [
                side_size,
                deterministic.max_adjustments,
                deterministic.total_adjustments,
                randomized_mean_adjustments,
                randomized_total,
            ]
        )
        deterministic_max.append(deterministic.max_adjustments)
        randomized_mean.append(randomized_mean_adjustments)
    return {
        "rows": rows,
        "deterministic_max": deterministic_max,
        "randomized_mean": randomized_mean,
    }


def test_e5_deterministic_lower_bound(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E5 -- K_{k,k} deletion sequence: deterministic vs randomized",
        [
            "k (side size)",
            "deterministic: worst single-change adjustments",
            "deterministic: total adjustments",
            "randomized: mean adjustments per change",
            "randomized: total adjustments (mean over seeds)",
        ],
        result["rows"],
    )
    emit(
        "E5 verdicts",
        [
            {
                "row": "deterministic worst change at k=32",
                "paper": ">= k (all of one side flips)",
                "measured": result["deterministic_max"][-1],
                "verdict": "pass" if result["deterministic_max"][-1] >= 32 else "CHECK",
            },
            {
                "row": "randomized mean adjustments per change (k=32)",
                "paper": "~1, independent of k",
                "measured": result["randomized_mean"][-1],
                "verdict": "pass" if result["randomized_mean"][-1] < 3.0 else "CHECK",
            },
        ],
    )

    for side_size, worst in zip(SIDE_SIZES, result["deterministic_max"]):
        assert worst >= side_size
    # The randomized per-change mean does not grow with k.
    assert result["randomized_mean"][-1] <= result["randomized_mean"][0] + 1.5
    assert result["randomized_mean"][-1] < SIDE_SIZES[-1] / 4
