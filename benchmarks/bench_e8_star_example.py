"""E8 -- Example 1 (Section 5): MIS in an adversarially built star.

Paper claim: on the star G_star the worst-case MIS is the center alone
(size 1); because the algorithm simulates random greedy, the center is first
in the order only with probability 1/n, so the expected MIS size is
(1 - 1/n) * (n - 1) + (1/n) * 1 -- within a constant factor of the maximum
independent set -- no matter how the adversary constructed the star.

Reproduction: sweep the number of leaves, build the star through an
adversarial change history, and compare the measured expected MIS size with
the closed-form value, the maximum (all leaves) and the worst case (1), plus
the natural history-dependent baseline built center-first.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.baselines.deterministic_dynamic import NaturalGreedyDynamicMIS
from repro.core.dynamic_mis import DynamicMIS
from repro.workloads.adversary import star_construction_history
from repro.workloads.changes import NodeInsertion

from harness import emit, emit_table, run_once

LEAF_COUNTS = (5, 10, 20, 40)
SEEDS = range(120)


def _expected_size(num_leaves: int) -> float:
    num_nodes = num_leaves + 1
    return (1.0 / num_nodes) * 1.0 + (1.0 - 1.0 / num_nodes) * num_leaves


def _natural_center_first(num_leaves: int) -> int:
    algorithm = NaturalGreedyDynamicMIS()
    algorithm.apply(NodeInsertion("center"))
    for leaf in range(num_leaves):
        algorithm.apply(NodeInsertion(f"leaf{leaf}", ("center",)))
    return len(algorithm.mis())


def run_experiment() -> Dict:
    rows: List[List] = []
    deviations: List[float] = []
    for num_leaves in LEAF_COUNTS:
        history = star_construction_history(num_leaves, seed=1)
        sizes = []
        for seed in SEEDS:
            maintainer = DynamicMIS(seed=seed)
            maintainer.apply_sequence(history)
            sizes.append(len(maintainer.mis()))
        measured = mean(sizes)
        expected = _expected_size(num_leaves)
        worst_case = _natural_center_first(num_leaves)
        rows.append([num_leaves, expected, measured, num_leaves, worst_case])
        deviations.append(abs(measured - expected) / expected)
    return {"rows": rows, "deviations": deviations}


def test_e8_star_example(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E8 / Example 1 -- expected MIS size on adversarially built stars",
        [
            "leaves",
            "paper E[|MIS|]",
            "measured E[|MIS|]",
            "maximum IS",
            "natural greedy (center-first history)",
        ],
        result["rows"],
    )
    emit(
        "E8 verdicts",
        [
            {
                "row": "max relative deviation from the closed form",
                "paper": "E[|MIS|] = (1-1/n)(n-1) + 1/n",
                "measured": max(result["deviations"]),
                "verdict": "pass" if max(result["deviations"]) < 0.15 else "CHECK",
            },
            {
                "row": "ours vs worst-case MIS",
                "paper": "constant factor of maximum vs size 1",
                "measured": result["rows"][-1][2] / result["rows"][-1][4],
                "verdict": "pass",
            },
        ],
    )

    for row, deviation in zip(result["rows"], result["deviations"]):
        num_leaves, expected, measured, maximum, worst = row
        assert deviation < 0.2
        assert measured > maximum / 2          # constant factor of the maximum IS
        assert worst == 1                      # the natural baseline is stuck at the center
        assert measured > worst
