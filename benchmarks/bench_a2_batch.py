"""A2b (extension) -- batched churn: native fast-engine batches vs template batches.

The engine-API redesign made :meth:`~repro.core.engine_api.MISEngine.apply_batch`
a first-class method of every backend, replacing the template-only
``supports_batch`` path.  This benchmark records the resulting hot-path win:
drive both backends through the identical seeded churn sequence *in batches*
and meter the mean wall-clock cost per batch.

The template pays O(n) per batch regardless of the influenced set (it copies
the full state dict per propagation level and rescans all nodes for
adjustments); the fast engine applies the graph deltas to its flat arrays and
runs one mask-based repair wave over the dirty ids, so its cost tracks the
influenced neighborhood.  Acceptance bar: >= 5x at the largest size, with
identical MIS outputs (asserted -- a free conformance check every run).

Results are emitted as a table and as JSON (``benchmarks/results/``) so the
performance trajectory is recorded in version control and diffed per commit
by ``benchmarks/report.py``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.core.dynamic_mis import DynamicMIS
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once

SIZES = (500, 1000, 2000, 5000)
AVERAGE_DEGREE = 8
NUM_CHANGES = 240
BATCH_SIZE = 12
MASTER_SEED = 20260730
TARGET_SPEEDUP_AT_MAX_N = 5.0


def _time_batched(engine: str, graph, batches, seed: int) -> Dict:
    maintainer = DynamicMIS(seed=seed, initial_graph=graph, engine=engine)
    start = time.perf_counter()
    for batch in batches:
        maintainer.apply_batch(batch)
    elapsed = time.perf_counter() - start
    maintainer.verify()
    stats = maintainer.statistics
    return {
        "engine": engine,
        "per_batch_us": elapsed / len(batches) * 1e6,
        "total_s": elapsed,
        "final_mis": maintainer.mis(),
        "total_adjustments": sum(stats.batch_adjustments),
        "adjustments_per_change": stats.mean_batch_adjustments_per_change(),
    }


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed, engine_seed = benchmark_seeds(master_seed, 3)
    rows: List[List] = []
    series: List[Dict] = []
    for n in SIZES:
        graph = erdos_renyi_graph(n, AVERAGE_DEGREE / (n - 1), seed=graph_seed)
        changes = edge_churn_sequence(graph, NUM_CHANGES, seed=workload_seed)
        batches = [
            changes[start : start + BATCH_SIZE]
            for start in range(0, len(changes), BATCH_SIZE)
        ]
        template = _time_batched("template", graph, batches, engine_seed)
        fast = _time_batched("fast", graph, batches, engine_seed)
        assert template["final_mis"] == fast["final_mis"], "backends diverged!"
        assert template["total_adjustments"] == fast["total_adjustments"]
        speedup = template["per_batch_us"] / fast["per_batch_us"]
        rows.append([n, template["per_batch_us"], fast["per_batch_us"], speedup])
        series.append(
            {
                "n": n,
                "num_changes": len(changes),
                "batch_size": BATCH_SIZE,
                "template_per_batch_us": round(template["per_batch_us"], 3),
                "fast_per_batch_us": round(fast["per_batch_us"], 3),
                "speedup": round(speedup, 3),
                "adjustments_per_change": round(fast["adjustments_per_change"], 4),
                "final_mis_size": len(fast["final_mis"]),
            }
        )
    return {
        "rows": rows,
        "series": series,
        "speedup_at_max_n": rows[-1][3],
        "python": sys.version.split()[0],
        "average_degree": AVERAGE_DEGREE,
        "batch_size": BATCH_SIZE,
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {
        "series": results["series"],
        "average_degree": results["average_degree"],
        "batch_size": results["batch_size"],
        "master_seed": results["master_seed"],
        "python": results["python"],
    }


def test_a2_batched_backends(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        "A2b: per-batch apply time, template vs fast engine (identical outputs)",
        ["n", "template us/batch", "fast us/batch", "speedup"],
        [[n, f"{t:.1f}", f"{f:.1f}", f"{s:.1f}x"] for n, t, f, s in results["rows"]],
    )
    emit(
        "A2b: native vectorized batch apply",
        [
            {
                "row": f"fast-engine batched speedup at n={SIZES[-1]}",
                "paper": f">= {TARGET_SPEEDUP_AT_MAX_N}x (acceptance bar)",
                "measured": f"{results['speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_MAX_N
                else "CHECK",
            },
            {
                "row": "identical MIS outputs and adjustment totals per size",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a2_batch_backends", _payload(results))
    # The 5x bar is reported in the claim table (and held by the recorded
    # trajectory points); the hard assert uses a 2x floor so a noisy shared
    # CI runner cannot fail the nightly on timing jitter alone.
    assert results["speedup_at_max_n"] >= 2.0
    speedups = [row[3] for row in results["rows"]]
    assert speedups[-1] > speedups[0]


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a2_batch_backends", _payload(outcome))
    for row in outcome["rows"]:
        print(row)
