"""A2b (extension) -- batched churn: native fast-engine batches vs template batches.

The engine-API redesign made :meth:`~repro.core.engine_api.MISEngine.apply_batch`
a first-class method of every backend, replacing the template-only
``supports_batch`` path.  This benchmark records the resulting hot-path win:
drive both backends through the identical seeded churn sequence *in batches*
and meter the mean wall-clock cost per batch.

The template pays O(n) per batch regardless of the influenced set (it copies
the full state dict per propagation level and rescans all nodes for
adjustments); the fast engine applies the graph deltas to its flat arrays and
runs one mask-based repair wave over the dirty ids, so its cost tracks the
influenced neighborhood.  Acceptance bar: >= 5x at the largest size, with
identical MIS outputs (asserted -- a free conformance check every run).

Results are emitted as a table and as JSON (``benchmarks/results/``) so the
performance trajectory is recorded in version control and diffed per commit
by ``benchmarks/report.py``.
"""

from __future__ import annotations

import random
import sys
import time
from typing import Dict, List

from repro.core.dynamic_mis import DynamicMIS
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.changes import NodeDeletion
from repro.workloads.sequences import edge_churn_sequence

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once

SIZES = (500, 1000, 2000, 5000)
AVERAGE_DEGREE = 8
NUM_CHANGES = 240
BATCH_SIZE = 12
MASTER_SEED = 20260730
TARGET_SPEEDUP_AT_MAX_N = 5.0

# CSR-wave column: batched MIS-hub deletions.  Deleting many MIS nodes at
# once triggers wide multi-level promotion cascades -- the regime the
# vectorized CSR level evaluation is built for (wide levels amortize the
# numpy call overhead; deletions never grow a row, so row patching stays
# one join + one scatter).  (n, batch_size, num_batches) per sweep point;
# batch sizes scale with n so the level widths clear the CSR engagement
# threshold at the larger sizes.
CSR_DELETION_SWEEP = ((500, 32, 6), (1000, 64, 8), (2000, 96, 10), (5000, 192, 12))


def _time_batched(engine: str, graph, batches, seed: int, repetitions: int = 3) -> Dict:
    # Best-of-N: replays are bit-identical (asserted by the callers' output
    # checks), so the min discards scheduler jitter and one-time costs
    # (lazy numpy imports, the CSR mirror's first build) without changing
    # any measured semantics.
    elapsed = float("inf")
    for _ in range(repetitions):
        maintainer = DynamicMIS(seed=seed, initial_graph=graph, engine=engine)
        start = time.perf_counter()
        for batch in batches:
            maintainer.apply_batch(batch)
        elapsed = min(elapsed, time.perf_counter() - start)
    maintainer.verify()
    stats = maintainer.statistics
    return {
        "engine": engine,
        "per_batch_us": elapsed / len(batches) * 1e6,
        "total_s": elapsed,
        "final_mis": maintainer.mis(),
        "total_adjustments": sum(stats.batch_adjustments),
        "adjustments_per_change": stats.mean_batch_adjustments_per_change(),
    }


def _deletion_cascade_batches(
    n: int,
    batch_size: int,
    num_batches: int,
    graph_seed: int,
    workload_seed: int,
    engine_seed: int,
):
    """Seeded batches of MIS-node deletions against a shadow tracker.

    Each round samples ``batch_size`` members of the *current* MIS (replayed
    on a shadow fast engine so batch construction never touches the timed
    engines) and deletes them gracefully; survivors' neighbors promote in
    cascades over the following levels.
    """
    graph = erdos_renyi_graph(n, AVERAGE_DEGREE / (n - 1), seed=graph_seed)
    shadow = DynamicMIS(seed=engine_seed, initial_graph=graph, engine="fast")
    rng = random.Random(workload_seed)
    batches: List[List[NodeDeletion]] = []
    for _ in range(num_batches):
        mis = sorted(shadow.mis())
        if len(mis) < batch_size:
            break
        batch = [NodeDeletion(node=node, graceful=True) for node in rng.sample(mis, batch_size)]
        for change in batch:
            shadow.apply(change)
        batches.append(batch)
    return graph, batches


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed, engine_seed = benchmark_seeds(master_seed, 3)
    rows: List[List] = []
    series: List[Dict] = []
    for n in SIZES:
        graph = erdos_renyi_graph(n, AVERAGE_DEGREE / (n - 1), seed=graph_seed)
        changes = edge_churn_sequence(graph, NUM_CHANGES, seed=workload_seed)
        batches = [
            changes[start : start + BATCH_SIZE]
            for start in range(0, len(changes), BATCH_SIZE)
        ]
        template = _time_batched("template", graph, batches, engine_seed)
        fast = _time_batched("fast", graph, batches, engine_seed)
        assert template["final_mis"] == fast["final_mis"], "backends diverged!"
        assert template["total_adjustments"] == fast["total_adjustments"]
        speedup = template["per_batch_us"] / fast["per_batch_us"]
        rows.append([n, template["per_batch_us"], fast["per_batch_us"], speedup])
        series.append(
            {
                "n": n,
                "num_changes": len(changes),
                "batch_size": BATCH_SIZE,
                "template_per_batch_us": round(template["per_batch_us"], 3),
                "fast_per_batch_us": round(fast["per_batch_us"], 3),
                "speedup": round(speedup, 3),
                "adjustments_per_change": round(fast["adjustments_per_change"], 4),
                "final_mis_size": len(fast["final_mis"]),
            }
        )
    csr_rows: List[List] = []
    csr_series: List[Dict] = []
    for n, batch_size, num_batches in CSR_DELETION_SWEEP:
        graph, batches = _deletion_cascade_batches(
            n, batch_size, num_batches, graph_seed, workload_seed, engine_seed
        )
        serial = _time_batched("fast", graph, batches, engine_seed)
        csr = _time_batched("fast-csr", graph, batches, engine_seed)
        assert serial["final_mis"] == csr["final_mis"], "CSR wave diverged!"
        assert serial["total_adjustments"] == csr["total_adjustments"]
        csr_speedup = serial["per_batch_us"] / csr["per_batch_us"]
        csr_rows.append([n, batch_size, serial["per_batch_us"], csr["per_batch_us"], csr_speedup])
        csr_series.append(
            {
                "n": n,
                "batch_size": batch_size,
                "num_batches": len(batches),
                "fast_per_batch_us": round(serial["per_batch_us"], 3),
                "fast_csr_per_batch_us": round(csr["per_batch_us"], 3),
                "speedup": round(csr_speedup, 3),
                "final_mis_size": len(csr["final_mis"]),
            }
        )
    return {
        "rows": rows,
        "series": series,
        "csr_rows": csr_rows,
        "csr_series": csr_series,
        "speedup_at_max_n": rows[-1][3],
        "csr_speedup_at_max_n": csr_rows[-1][4],
        "python": sys.version.split()[0],
        "average_degree": AVERAGE_DEGREE,
        "batch_size": BATCH_SIZE,
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {
        "series": results["series"],
        "csr_series": results["csr_series"],
        "average_degree": results["average_degree"],
        "batch_size": results["batch_size"],
        "master_seed": results["master_seed"],
        "python": results["python"],
    }


def test_a2_batched_backends(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        "A2b: per-batch apply time, template vs fast engine (identical outputs)",
        ["n", "template us/batch", "fast us/batch", "speedup"],
        [[n, f"{t:.1f}", f"{f:.1f}", f"{s:.1f}x"] for n, t, f, s in results["rows"]],
    )
    emit_table(
        "A2b-CSR: per-batch deletion-cascade time, serial vs CSR wave (identical outputs)",
        ["n", "batch", "fast us/batch", "fast-csr us/batch", "speedup"],
        [
            [n, b, f"{t:.1f}", f"{c:.1f}", f"{s:.2f}x"]
            for n, b, t, c, s in results["csr_rows"]
        ],
    )
    emit(
        "A2b: native vectorized batch apply",
        [
            {
                "row": f"fast-engine batched speedup at n={SIZES[-1]}",
                "paper": f">= {TARGET_SPEEDUP_AT_MAX_N}x (acceptance bar)",
                "measured": f"{results['speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_MAX_N
                else "CHECK",
            },
            {
                "row": "CSR wave vs serial wave, deletion cascades at "
                f"n={CSR_DELETION_SWEEP[-1][0]}",
                "paper": "> 1x (vectorized levels beat the python walk)",
                "measured": f"{results['csr_speedup_at_max_n']:.2f}x",
                "verdict": "pass" if results["csr_speedup_at_max_n"] > 1.0 else "CHECK",
            },
            {
                "row": "identical MIS outputs and adjustment totals per size",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a2_batch_backends", _payload(results))
    # The 5x bar is reported in the claim table (and held by the recorded
    # trajectory points); the hard assert uses a 2x floor so a noisy shared
    # CI runner cannot fail the nightly on timing jitter alone.
    assert results["speedup_at_max_n"] >= 2.0
    speedups = [row[3] for row in results["rows"]]
    assert speedups[-1] > speedups[0]
    # Same jitter guard for the CSR column: the committed trajectory point
    # records the >1x win; the nightly floor only catches real regressions.
    assert results["csr_speedup_at_max_n"] >= 0.8


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a2_batch_backends", _payload(outcome))
    for row in outcome["rows"]:
        print(row)
