"""A1 (ablation) -- direct template vs Algorithm 2: rounds/broadcast trade-off.

Paper discussion (Section 4): the direct implementation achieves a single
round in expectation but may broadcast up to Theta(|S|^2) times because a
node can flip several times; Algorithm 2 buffers changes through the C/R
states so that each influenced node changes state at most 3 times (O(|S|)
broadcasts) at the price of a constant-factor more rounds.

Reproduction: (a) average behaviour on random churn; (b) the paper's
worst-case gadget (v* attached to the two endpoints of a long ascending path)
scaled up, where the direct implementation's flip count grows with the path
length while Algorithm 2's stays linear in |S| -- this is the ablation that
justifies the buffered design.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.priorities import DeterministicPriorityAssigner
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.changes import EdgeInsertion
from repro.workloads.sequences import mixed_churn_sequence

from harness import emit, emit_table, run_once

NUM_NODES = 40
CHANGES = 100
GADGET_LENGTHS = (5, 9, 17, 33)  # odd lengths make the far endpoint re-flip


def _gadget_graph(path_length: int) -> DynamicGraph:
    """The paper's re-flipping gadget (Section 3 example), generalized.

    Node 0 is an isolated attacker with the smallest order; node 1 is v*,
    initially in the MIS; nodes 2 .. path_length+2 form an ascending path
    whose two endpoints are both adjacent to v*.  Inserting the edge (0, 1)
    evicts v* from the MIS, the repair wave runs along the whole path, and
    (for odd path lengths) the far endpoint flips twice in the direct
    implementation -- exactly the u_2 behaviour the paper describes.
    """
    nodes = list(range(path_length + 3))
    graph = DynamicGraph(nodes=nodes)
    first_path_node = 2
    last_path_node = path_length + 2
    for node in range(first_path_node, last_path_node):
        graph.add_edge(node, node + 1)
    graph.add_edge(1, first_path_node)
    graph.add_edge(1, last_path_node)
    return graph


def run_experiment() -> Dict:
    # Part (a): average-case comparison on random churn.
    graph = erdos_renyi_graph(NUM_NODES, 3.0 / NUM_NODES, seed=1)
    changes = mixed_churn_sequence(graph, CHANGES, seed=2)
    direct = DirectMISNetwork(seed=3, initial_graph=graph)
    buffered = BufferedMISNetwork(seed=3, initial_graph=graph)
    direct.apply_sequence(changes)
    buffered.apply_sequence(changes)
    average_rows = [
        [
            "direct (Corollary 6)",
            direct.metrics.mean("rounds"),
            direct.metrics.mean("broadcasts"),
            direct.metrics.mean("state_changes"),
            direct.metrics.mean("adjustments"),
        ],
        [
            "Algorithm 2 (buffered)",
            buffered.metrics.mean("rounds"),
            buffered.metrics.mean("broadcasts"),
            buffered.metrics.mean("state_changes"),
            buffered.metrics.mean("adjustments"),
        ],
    ]

    # Part (b): the worst-case gadget, deterministic order so the wave always fires.
    gadget_rows: List[List] = []
    for path_length in GADGET_LENGTHS:
        direct_network = DirectMISNetwork(
            priorities=DeterministicPriorityAssigner(), initial_graph=_gadget_graph(path_length)
        )
        buffered_network = BufferedMISNetwork(
            priorities=DeterministicPriorityAssigner(), initial_graph=_gadget_graph(path_length)
        )
        direct_record = direct_network.apply(EdgeInsertion(0, 1))
        buffered_record = buffered_network.apply(EdgeInsertion(0, 1))
        direct_network.verify()
        buffered_network.verify()
        gadget_rows.append(
            [
                path_length,
                direct_record.state_changes,
                buffered_record.state_changes,
                direct_record.rounds,
                buffered_record.rounds,
            ]
        )
    return {"average_rows": average_rows, "gadget_rows": gadget_rows}


def test_a1_direct_vs_buffered_ablation(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "A1a -- average-case comparison on mixed churn (per change)",
        ["protocol", "mean rounds", "mean broadcasts", "mean state changes", "mean adjustments"],
        result["average_rows"],
    )
    emit_table(
        "A1b -- worst-case gadget (ascending path attached to v*)",
        [
            "path length",
            "direct: state changes",
            "Algorithm 2: state changes",
            "direct: rounds",
            "Algorithm 2: rounds",
        ],
        result["gadget_rows"],
    )
    emit(
        "A1 verdicts",
        [
            {
                "row": "adjustments agree between protocols",
                "paper": "both simulate the same random greedy MIS",
                "measured": abs(result["average_rows"][0][4] - result["average_rows"][1][4]),
                "verdict": "pass",
            },
            {
                "row": "gadget: buffered state changes stay ~3 per influenced node",
                "paper": "Lemma 8: each node changes state at most 3 times",
                "measured": result["gadget_rows"][-1][2],
                "verdict": "pass",
            },
        ],
    )

    # Both protocols produce the same outputs, so the same adjustments.
    assert abs(result["average_rows"][0][4] - result["average_rows"][1][4]) < 1e-9
    # On the gadget the buffered protocol's per-node state changes stay at 3
    # while the direct one pays extra re-flips (the far endpoint flips twice).
    for row in result["gadget_rows"]:
        path_length, direct_changes, buffered_changes, direct_rounds, buffered_rounds = row
        influenced = path_length + 2  # v*, the path, and the far endpoint
        assert buffered_changes <= 3 * (influenced + 1)
        assert direct_changes >= influenced  # at least one flip per influenced node
        assert buffered_rounds >= direct_rounds  # the price of buffering
