"""E4 -- static/dynamic separation: recompute-with-a-static-algorithm vs the paper.

Paper claim: running a static MIS algorithm after every change costs
Theta(log n) rounds (and Omega(n) broadcasts) per change -- the classic
lower bounds for the static model are super-constant -- while the paper's
dynamic algorithm pays O(1) rounds and broadcasts per change, independent of
n.  The gap must therefore *grow* with n.

Reproduction: sweep n, apply the same edge-churn sequence to (a) Algorithm 2,
(b) the direct protocol, (c) Luby-recompute and (d) Ghaffari-style-recompute,
and report mean rounds and broadcasts per change for each.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import growth_exponent
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import emit, emit_table, run_once

NODE_COUNTS = (20, 40, 80, 160)
CHANGES = 40


def run_experiment() -> Dict:
    rows: List[List] = []
    series: Dict[str, List[float]] = {
        "ours_rounds": [],
        "ours_broadcasts": [],
        "direct_rounds": [],
        "luby_rounds": [],
        "luby_broadcasts": [],
        "ghaffari_rounds": [],
    }
    for num_nodes in NODE_COUNTS:
        graph = erdos_renyi_graph(num_nodes, 4.0 / num_nodes, seed=1)
        changes = edge_churn_sequence(graph, CHANGES, seed=2)

        ours = BufferedMISNetwork(seed=3, initial_graph=graph)
        ours.apply_sequence(changes)
        direct = DirectMISNetwork(seed=3, initial_graph=graph)
        direct.apply_sequence(changes)
        luby = StaticRecomputeDynamicMIS("luby", seed=3, initial_graph=graph)
        luby.apply_sequence(changes)
        ghaffari = StaticRecomputeDynamicMIS("ghaffari", seed=3, initial_graph=graph)
        ghaffari.apply_sequence(changes)

        series["ours_rounds"].append(ours.metrics.mean("rounds"))
        series["ours_broadcasts"].append(ours.metrics.mean("broadcasts"))
        series["direct_rounds"].append(direct.metrics.mean("rounds"))
        series["luby_rounds"].append(luby.metrics.mean("rounds"))
        series["luby_broadcasts"].append(luby.metrics.mean("broadcasts"))
        series["ghaffari_rounds"].append(ghaffari.metrics.mean("rounds"))

        rows.append(
            [
                num_nodes,
                ours.metrics.mean("rounds"),
                ours.metrics.mean("broadcasts"),
                direct.metrics.mean("rounds"),
                luby.metrics.mean("rounds"),
                luby.metrics.mean("broadcasts"),
                ghaffari.metrics.mean("rounds"),
            ]
        )
    return {"rows": rows, "series": series}


def test_e4_static_vs_dynamic_separation(benchmark):
    result = run_once(benchmark, run_experiment)
    rows = result["rows"]
    series = result["series"]

    emit_table(
        "E4 -- per-change cost vs n (edge churn)",
        [
            "n",
            "Alg2 rounds",
            "Alg2 broadcasts",
            "direct rounds",
            "Luby-recompute rounds",
            "Luby-recompute broadcasts",
            "Ghaffari-recompute rounds",
        ],
        rows,
    )

    ours_growth = growth_exponent(list(NODE_COUNTS), series["ours_broadcasts"])
    luby_growth = growth_exponent(list(NODE_COUNTS), series["luby_broadcasts"])
    emit(
        "E4 verdicts",
        [
            {
                "row": "ours: broadcast growth exponent in n",
                "paper": "O(1), exponent ~0",
                "measured": ours_growth,
                "verdict": "pass" if abs(ours_growth) < 0.35 else "CHECK",
            },
            {
                "row": "Luby recompute: broadcast growth exponent in n",
                "paper": "Theta(n log n), exponent ~1",
                "measured": luby_growth,
                "verdict": "pass" if luby_growth > 0.7 else "CHECK",
            },
            {
                "row": "round gap at largest n (Luby / ours)",
                "paper": "grows with n",
                "measured": series["luby_rounds"][-1] / max(series["ours_rounds"][-1], 0.1),
                "verdict": "pass",
            },
        ],
    )

    # Shape assertions: ours is flat, the recompute baselines grow.
    assert abs(ours_growth) < 0.5
    assert luby_growth > 0.6
    assert series["luby_rounds"][-1] > series["ours_rounds"][-1]
    assert series["luby_broadcasts"][-1] > 5 * series["ours_broadcasts"][-1]
