"""A6 (service) -- daemon saturation: sessions x changes/sec across shard counts.

The service tentpole's claim is operational, not algorithmic: a sharded
``repro-mis serve`` daemon turns the per-session O(1)-adjustments guarantee
into aggregate ingestion throughput that scales with worker processes,
because each shard owns its sessions outright (no cross-shard coordination)
and the unit of work on the wire is the vectorized ``apply_batch`` path.

Reproduction: one in-process daemon per shard count, real shard worker
processes and a real localhost socket.  A fixed fleet of sessions -- all on
the batched fast sequential engine, large enough that per-batch compute
dominates the JSON/IPC overhead -- is driven to workload exhaustion by a
pool of client threads (each with its own connection, each owning a slice
of the fleet), and the aggregate rate of applied topology changes is the
saturation point for that shard count.  ``speedup`` is the multi-shard rate
over the 1-shard rate on the same machine and fleet, which is the
machine-portable number the nightly trajectory gate holds
(``report.py --speedups-only``).

A second, single-session measurement records the service-path tax directly:
changes/sec through the daemon vs the same spec stepped in-process, plus
the evict -> rehydrate round-trip cost a spool cycle adds.  Results are
emitted as tables and JSON (``benchmarks/results/a6_service.json``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List

from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, Session, WorkloadSpec
from repro.service import MISService, ServiceClient, ServiceConfig

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once

SHARD_COUNTS = (1, 2, 4)
NUM_SESSIONS = 16
NUM_CLIENT_THREADS = 4
NODES = 1500
AVERAGE_DEGREE = 8
CHANGES_PER_SESSION = 384
BATCH_SIZE = 32
MASTER_SEED = 20260808
#: Hard floor: sharding must never *cost* more than a quarter of the 1-shard
#: ingestion rate.  On a single-core machine the expected speedup is ~1.0x
#: (worker processes cannot run in parallel; the committed trajectory point
#: records the core count next to the rate); real scaling shows on
#: multi-core runners, where the trajectory gate holds it as higher-better.
MIN_SPEEDUP_AT_MAX_SHARDS = 0.75


def _fleet_spec(name: str, graph_seed: int, workload_seed: int) -> ScenarioSpec:
    """One fleet session: batched fast-engine sequential churn.

    Every session shares the graph spec (one cached build per worker
    process) and draws its own workload stream, as a multi-tenant daemon
    would see.
    """
    return ScenarioSpec(
        name=name,
        seed=workload_seed + 1,
        graph=GraphSpec(
            family="erdos_renyi",
            nodes=NODES,
            seed=graph_seed,
            params={"edge_probability": AVERAGE_DEGREE / (NODES - 1)},
        ),
        workload=WorkloadSpec(
            kind="mixed_churn", num_changes=CHANGES_PER_SESSION, seed=workload_seed
        ),
        backend=BackendSpec(runner="sequential", engine="fast"),
        batch_size=BATCH_SIZE,
    )


def _drive_slice(address: str, names: List[str], failures: List[BaseException]) -> None:
    """One client thread: its own connection, its slice of the fleet.

    Round-robins ``apply_batch`` over its sessions (one vectorized batch per
    request) until every workload is exhausted -- the per-request shape a
    change-stream ingester would produce.
    """
    try:
        with ServiceClient(address) as client:
            pending = list(names)
            while pending:
                still_running = []
                for name in pending:
                    if not client.apply_batch(name, steps=1)["done"]:
                        still_running.append(name)
                pending = still_running
    except BaseException as failure:  # noqa: BLE001 - re-raised by the driver
        failures.append(failure)


def _saturate(shards: int, specs: List[ScenarioSpec], spool_dir: str) -> Dict:
    """Drive the whole fleet to exhaustion on one daemon; measure the rate."""
    config = ServiceConfig(
        spool_dir=spool_dir, shards=shards, max_live=NUM_SESSIONS, bind="tcp:127.0.0.1:0"
    )
    with MISService(config) as service:
        names = [spec.name for spec in specs]
        with ServiceClient(service.address) as client:
            for spec in specs:
                client.create(spec.name, spec.to_dict())
        slices = [names[index::NUM_CLIENT_THREADS] for index in range(NUM_CLIENT_THREADS)]
        failures: List[BaseException] = []
        threads = [
            threading.Thread(target=_drive_slice, args=(service.address, piece, failures))
            for piece in slices
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
        with ServiceClient(service.address) as client:
            stats = client.stats()
            for name in names:  # the daemon agrees every workload is done
                assert client.query(name)["done"], name
                client.close_session(name)
    total_changes = NUM_SESSIONS * CHANGES_PER_SESSION
    assert stats["applied"] == total_changes // BATCH_SIZE  # units, not changes
    return {
        "shards": shards,
        "elapsed_s": elapsed,
        "changes_per_sec": total_changes / elapsed,
        "requests": stats["ops"],
    }


def _service_tax(spec: ScenarioSpec, spool_dir: str) -> Dict:
    """Single session: daemon-path rate vs in-process rate, plus spool cycle."""
    session = Session(spec)
    start = time.perf_counter()
    while session.step() is not None:
        pass
    inprocess_s = time.perf_counter() - start
    config = ServiceConfig(spool_dir=spool_dir, shards=1, bind="tcp:127.0.0.1:0")
    with MISService(config) as service, ServiceClient(service.address) as client:
        client.create("tax", spec.to_dict())
        units = CHANGES_PER_SESSION // BATCH_SIZE
        start = time.perf_counter()
        for _ in range(units):
            client.apply_batch("tax", steps=1)
        service_s = time.perf_counter() - start
        start = time.perf_counter()
        client.evict("tax")
        client.query("tax")  # transparent rehydration
        spool_cycle_s = time.perf_counter() - start
    return {
        "inprocess_changes_per_sec": CHANGES_PER_SESSION / inprocess_s,
        "service_changes_per_sec": CHANGES_PER_SESSION / service_s,
        "service_overhead_ratio": service_s / inprocess_s,
        "spool_cycle_ms": spool_cycle_s * 1e3,
    }


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    import tempfile

    graph_seed, workload_seed = benchmark_seeds(master_seed, 2)
    specs = [
        _fleet_spec(f"a6-fleet-{index:02d}", graph_seed, workload_seed + index)
        for index in range(NUM_SESSIONS)
    ]
    series: List[Dict] = []
    for shards in SHARD_COUNTS:
        with tempfile.TemporaryDirectory(prefix="a6-spool-") as spool_dir:
            point = _saturate(shards, specs, spool_dir)
        if series:
            point["speedup"] = round(
                point["changes_per_sec"] / series[0]["changes_per_sec"], 3
            )
        point["elapsed_s"] = round(point["elapsed_s"], 4)
        point["changes_per_sec"] = round(point["changes_per_sec"], 1)
        series.append(point)
    with tempfile.TemporaryDirectory(prefix="a6-tax-") as spool_dir:
        tax = _service_tax(specs[0], spool_dir)
    return {
        "series": series,
        "tax": {key: round(value, 3) for key, value in tax.items()},
        "sessions": NUM_SESSIONS,
        "changes_per_session": CHANGES_PER_SESSION,
        "batch_size": BATCH_SIZE,
        "nodes": NODES,
        "client_threads": NUM_CLIENT_THREADS,
        "cpus": os.cpu_count() or 1,
        "speedup_at_max_shards": series[-1]["speedup"],
        "python": sys.version.split()[0],
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {key: results[key] for key in (
        "series", "tax", "sessions", "changes_per_session", "batch_size",
        "nodes", "client_threads", "cpus", "master_seed", "python",
    )}


def test_a6_service_saturation(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        f"A6: daemon saturation, {NUM_SESSIONS} sessions x {CHANGES_PER_SESSION} "
        f"changes (batch={BATCH_SIZE}, n={NODES}, {NUM_CLIENT_THREADS} client threads)",
        ["shards", "changes/sec", "wall s", "speedup vs 1 shard"],
        [
            [
                point["shards"],
                f"{point['changes_per_sec']:.0f}",
                f"{point['elapsed_s']:.2f}",
                f"{point.get('speedup', 1.0):.2f}x",
            ]
            for point in results["series"]
        ],
    )
    tax = results["tax"]
    emit_table(
        "A6b: service-path tax, single session (socket + JSON + shard pipe)",
        ["path", "changes/sec"],
        [
            ["in-process Session.step", f"{tax['inprocess_changes_per_sec']:.0f}"],
            ["through the daemon", f"{tax['service_changes_per_sec']:.0f}"],
            ["evict -> rehydrate cycle", f"{tax['spool_cycle_ms']:.1f} ms"],
        ],
    )
    emit(
        "A6: sharded service saturation",
        [
            {
                "row": f"ingestion scaling at {SHARD_COUNTS[-1]} shards",
                "paper": f">= {MIN_SPEEDUP_AT_MAX_SHARDS}x of 1 shard (floor)",
                "measured": f"{results['speedup_at_max_shards']:.2f}x",
                "verdict": "pass"
                if results["speedup_at_max_shards"] >= MIN_SPEEDUP_AT_MAX_SHARDS
                else "CHECK",
            },
            {
                "row": "every session's workload fully ingested, every shard count",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a6_service", _payload(results))
    assert results["speedup_at_max_shards"] >= MIN_SPEEDUP_AT_MAX_SHARDS
    assert tax["spool_cycle_ms"] < 60_000  # a spool cycle is not free, but sane


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a6_service", _payload(outcome))
    for point in outcome["series"]:
        print(point)
    print(outcome["tax"])
