"""E11 -- bit complexity: O(1) expected bits per change.

Paper claim (Section 1.1, "Obtaining O(1) Broadcasts and Bits"): beyond O(1)
broadcasts, the synchronous implementation only needs a constant expected
number of *bits* per change, because state announcements take 2 bits and the
relative order between neighbors can be learned with an expected O(1) bits
per broadcast (Metivier et al.); only node arrivals pay for ID discovery.

Reproduction: meter Algorithm 2's bits per change under the standard
O(log n)-bit ID encoding and under the comparison-bit model, across a sweep of
n; the bit cost of edge churn must not grow with n under the comparison model
and only logarithmically under the explicit-ID model.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import growth_exponent
from repro.distributed.message import expected_comparison_bits, state_message_bits
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import emit, emit_table, run_once

NODE_COUNTS = (20, 40, 80, 160)
CHANGES = 60


def run_experiment() -> Dict:
    rows: List[List] = []
    explicit_bits_series: List[float] = []
    comparison_bits_series: List[float] = []
    for num_nodes in NODE_COUNTS:
        graph = erdos_renyi_graph(num_nodes, 4.0 / num_nodes, seed=1)
        network = BufferedMISNetwork(seed=2, initial_graph=graph)
        records = network.apply_sequence(edge_churn_sequence(graph, CHANGES, seed=3))
        network.verify()
        mean_broadcasts = network.metrics.mean("broadcasts")
        mean_bits_explicit = network.metrics.mean("bits")
        # Comparison-encoding model: every broadcast costs an expected O(1)
        # bits (state bits for STATE messages, ~2 extra for ID comparisons).
        mean_bits_comparison = mean_broadcasts * expected_comparison_bits()
        rows.append([num_nodes, mean_broadcasts, mean_bits_explicit, mean_bits_comparison])
        explicit_bits_series.append(mean_bits_explicit)
        comparison_bits_series.append(mean_bits_comparison)
        del records
    return {
        "rows": rows,
        "explicit_growth": growth_exponent(list(NODE_COUNTS), explicit_bits_series),
        "comparison_growth": growth_exponent(list(NODE_COUNTS), comparison_bits_series),
        "comparison_bits_at_max_n": comparison_bits_series[-1],
    }


def test_e11_bit_complexity(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E11 -- bits per change vs n (edge churn, Algorithm 2)",
        [
            "n",
            "mean broadcasts",
            "mean bits (explicit IDs, O(log n)/msg)",
            "mean bits (comparison model, O(1)/msg)",
        ],
        result["rows"],
    )
    emit(
        "E11 verdicts",
        [
            {
                "row": "comparison-model bits growth exponent in n",
                "paper": "O(1) bits per change, exponent ~0",
                "measured": result["comparison_growth"],
                "verdict": "pass" if abs(result["comparison_growth"]) < 0.35 else "CHECK",
            },
            {
                "row": "explicit-ID bits growth exponent in n",
                "paper": "O(log n) factor only",
                "measured": result["explicit_growth"],
                "verdict": "pass" if result["explicit_growth"] < 0.6 else "CHECK",
            },
            {
                "row": "state announcement size",
                "paper": "2 bits",
                "measured": state_message_bits(),
                "verdict": "pass",
            },
        ],
    )

    assert abs(result["comparison_growth"]) < 0.5
    assert result["explicit_growth"] < 0.7
    assert result["comparison_bits_at_max_n"] < 60
