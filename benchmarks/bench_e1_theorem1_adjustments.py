"""E1 -- Theorem 1: the expected influenced-set size is at most 1.

Paper claim: for any single topology change, the expectation over the random
order of the number of nodes that must change their output is at most 1
(Theorem 1), hence a single adjustment in expectation (Corollary 6).

Reproduction: apply long mixed change sequences over several graph families
with the sequential template engine and measure the per-change influenced-set
size |S|, the adjustment count and the propagation depth, overall and broken
down by change type.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.estimators import mean, summarize
from repro.core.dynamic_mis import DynamicMIS
from repro.graph.generators import random_graph_family
from repro.workloads.sequences import mixed_churn_sequence

from harness import emit, emit_table, run_once

FAMILIES = ("erdos_renyi", "preferential", "geometric", "near_regular", "star")
NUM_NODES = 40
CHANGES_PER_RUN = 80
SEEDS = range(4)


def run_experiment() -> Dict:
    per_family = {}
    by_kind: Dict[str, list] = {}
    all_sizes, all_adjustments, all_depths = [], [], []
    for family in FAMILIES:
        sizes = []
        for seed in SEEDS:
            graph = random_graph_family(family, NUM_NODES, seed=seed)
            maintainer = DynamicMIS(seed=seed + 1000, initial_graph=graph)
            for change in mixed_churn_sequence(graph, CHANGES_PER_RUN, seed=seed + 2000):
                report = maintainer.apply(change)
                sizes.append(report.influenced_size)
                all_sizes.append(report.influenced_size)
                all_adjustments.append(report.num_adjustments)
                all_depths.append(report.num_levels)
                by_kind.setdefault(report.change_type, []).append(report.influenced_size)
        per_family[family] = mean(sizes)
    return {
        "per_family": per_family,
        "by_kind": {kind: mean(values) for kind, values in by_kind.items()},
        "mean_influenced": mean(all_sizes),
        "mean_adjustments": mean(all_adjustments),
        "mean_depth": mean(all_depths),
        "summary": summarize(all_sizes),
    }


def test_e1_theorem1_expected_influenced_set(benchmark):
    result = run_once(benchmark, run_experiment)

    emit(
        "E1 / Theorem 1 -- expected influenced set and adjustments per change",
        [
            {
                "row": "E[|S|] over all changes",
                "paper": "<= 1",
                "measured": result["mean_influenced"],
                "verdict": "pass" if result["mean_influenced"] <= 1.15 else "CHECK",
            },
            {
                "row": "E[#adjustments] per change",
                "paper": "<= 1 (single adjustment)",
                "measured": result["mean_adjustments"],
                "verdict": "pass" if result["mean_adjustments"] <= 1.15 else "CHECK",
            },
            {
                "row": "E[propagation depth] (direct rounds)",
                "paper": "1 round in expectation",
                "measured": result["mean_depth"],
                "verdict": "pass" if result["mean_depth"] <= 2.0 else "CHECK",
            },
        ],
    )
    emit_table(
        "E1 breakdown: mean |S| per graph family",
        ["family", "mean |S|"],
        [[family, value] for family, value in result["per_family"].items()],
    )
    emit_table(
        "E1 breakdown: mean |S| per change type",
        ["change type", "mean |S|"],
        [[kind, value] for kind, value in result["by_kind"].items()],
    )

    assert result["mean_influenced"] <= 1.15
    assert result["mean_adjustments"] <= result["mean_influenced"] + 1e-9
    for family, value in result["per_family"].items():
        assert value <= 1.5, f"family {family} exceeded the Theorem 1 bound by too much"
