"""E6 -- random greedy is a 3-approximation for correlation clustering.

Paper claim (Section 1.1, via Ailon et al.): letting every MIS node induce a
cluster and every other node join its earliest MIS neighbor yields an expected
correlation-clustering cost of at most 3 times the optimum, maintained
dynamically for free.

Reproduction: (a) on small random graphs, compare the average dynamic
clustering cost against the brute-force optimum; (b) on larger
planted-partition graphs, compare against the planted clustering's cost and
the trivial baselines (singletons / one cluster / connected components).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.clustering.correlation import (
    clustering_cost,
    connected_component_clustering,
    exact_optimal_clustering,
    single_cluster_clustering,
    singleton_clustering,
)
from repro.clustering.dynamic_clustering import DynamicCorrelationClustering
from repro.graph.generators import erdos_renyi_graph, planted_clusters_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import emit, emit_table, run_once

SMALL_GRAPHS = [(9, 0.35, seed) for seed in range(4)]
TRIALS_PER_GRAPH = 40
PLANTED_SIZES = (8, 8, 8, 8)


def run_experiment() -> Dict:
    # Part (a): ratio to the exact optimum on small graphs.
    ratio_rows: List[List] = []
    ratios: List[float] = []
    for num_nodes, probability, seed in SMALL_GRAPHS:
        graph = erdos_renyi_graph(num_nodes, probability, seed=seed)
        _, optimal_cost = exact_optimal_clustering(graph)
        costs = []
        for trial in range(TRIALS_PER_GRAPH):
            clusterer = DynamicCorrelationClustering(seed=1000 * seed + trial, initial_graph=graph)
            costs.append(clusterer.cost())
        average_cost = mean(costs)
        ratio = average_cost / max(optimal_cost, 1)
        ratios.append(ratio)
        ratio_rows.append(
            [f"G({num_nodes},{probability}) seed={seed}", optimal_cost, average_cost, ratio]
        )

    # Part (b): planted clusters, with churn applied on top, against baselines.
    graph, planted = planted_clusters_graph(
        PLANTED_SIZES, intra_probability=0.9, inter_probability=0.05, seed=7
    )
    planted_labels = {
        node: index for index, cluster in enumerate(planted) for node in cluster
    }
    planted_cost = clustering_cost(graph, planted_labels)
    clusterer = DynamicCorrelationClustering(seed=11, initial_graph=graph)
    clusterer.apply_sequence(edge_churn_sequence(graph, 60, seed=12))
    final_graph = clusterer.graph
    ours_cost = clusterer.cost()
    baseline_rows = [
        [
            "planted partition (reference)",
            clustering_cost(
                final_graph, {n: planted_labels[n] for n in final_graph.nodes()}
            ),
        ],
        ["dynamic random greedy (ours)", ours_cost],
        ["singletons", clustering_cost(final_graph, singleton_clustering(final_graph))],
        ["one cluster", clustering_cost(final_graph, single_cluster_clustering(final_graph))],
        [
            "connected components",
            clustering_cost(final_graph, connected_component_clustering(final_graph)),
        ],
    ]
    return {
        "ratio_rows": ratio_rows,
        "ratios": ratios,
        "baseline_rows": baseline_rows,
        "ours_cost": ours_cost,
        "planted_cost": planted_cost,
    }


def test_e6_correlation_clustering_three_approximation(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E6a -- average dynamic clustering cost vs exact optimum (small graphs)",
        ["graph", "OPT", "mean cost (ours)", "ratio"],
        result["ratio_rows"],
    )
    emit_table(
        "E6b -- planted-partition graph after churn: cost by method",
        ["method", "disagreement cost"],
        result["baseline_rows"],
    )
    emit(
        "E6 verdicts",
        [
            {
                "row": "max mean-cost / OPT ratio over small graphs",
                "paper": "<= 3 (in expectation)",
                "measured": max(result["ratios"]),
                "verdict": "pass" if max(result["ratios"]) <= 3.0 else "CHECK",
            },
            {
                "row": "ours vs trivial baselines on planted graph",
                "paper": "clustering tracks the planted structure",
                "measured": result["ours_cost"],
                "verdict": "pass",
            },
        ],
    )

    assert max(result["ratios"]) <= 3.2  # 3-approximation with sampling slack
    baseline_costs = {name: cost for name, cost in result["baseline_rows"]}
    assert baseline_costs["dynamic random greedy (ours)"] <= baseline_costs["one cluster"]
    assert baseline_costs["dynamic random greedy (ours)"] <= baseline_costs["singletons"]
