"""A2 (extension) -- batched simultaneous changes (the paper's open question).

Paper discussion (Section 6): "An immediate open question is whether our
analysis can be extended to cope with more than a single failure at a time."
This benchmark does not prove anything the paper left open; it measures how
the natural batched extension of the template behaves:

* correctness is preserved for every batch size (the propagation always lands
  on the greedy MIS of the new graph), and
* the influenced set of a batch is sub-additive in practice -- applying k
  changes at once touches far fewer nodes than applying them one by one,
  because intermediate flips cancel.

The output is a batch-size sweep of mean influenced-set size and adjustments
per *individual change* (batch cost divided by batch size), compared with the
one-at-a-time baseline of Theorem 1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.core.batch import apply_batch
from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import create_engine
from repro.core.greedy import greedy_mis
from repro.core.priorities import RandomPriorityAssigner
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import mixed_churn_sequence

from harness import emit, emit_table, run_once

NUM_NODES = 40
TOTAL_CHANGES = 120
BATCH_SIZES = (1, 2, 5, 10, 20)
SEEDS = range(3)


def run_experiment() -> Dict:
    rows: List[List] = []
    per_change_costs: Dict[int, float] = {}
    for batch_size in BATCH_SIZES:
        influenced_per_change, adjustments_per_change, depths = [], [], []
        for seed in SEEDS:
            graph = erdos_renyi_graph(NUM_NODES, 3.0 / NUM_NODES, seed=seed)
            sequence = mixed_churn_sequence(graph, TOTAL_CHANGES, seed=seed + 50)
            engine = create_engine(
                "template",
                priorities=RandomPriorityAssigner(seed + 7),
                initial_graph=graph,
            )
            for start in range(0, len(sequence), batch_size):
                batch = sequence[start : start + batch_size]
                report = apply_batch(engine, batch)
                influenced_per_change.append(report.influenced_size / len(batch))
                adjustments_per_change.append(report.num_adjustments / len(batch))
                depths.append(report.num_levels)
            assert engine.mis() == greedy_mis(engine.graph, engine.priorities)
        rows.append(
            [
                batch_size,
                mean(influenced_per_change),
                mean(adjustments_per_change),
                mean(depths),
            ]
        )
        per_change_costs[batch_size] = mean(influenced_per_change)

    # The one-at-a-time reference (Theorem 1) with the usual statistics object.
    reference_adjustments = []
    for seed in SEEDS:
        graph = erdos_renyi_graph(NUM_NODES, 3.0 / NUM_NODES, seed=seed)
        maintainer = DynamicMIS(seed=seed + 7, initial_graph=graph)
        maintainer.apply_sequence(mixed_churn_sequence(graph, TOTAL_CHANGES, seed=seed + 50))
        reference_adjustments.append(maintainer.statistics.mean_adjustments())
    return {
        "rows": rows,
        "per_change_costs": per_change_costs,
        "reference_mean_adjustments": mean(reference_adjustments),
    }


def test_a2_batched_changes_extension(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "A2 -- batched simultaneous changes: cost per individual change",
        [
            "batch size",
            "mean |S| / change",
            "mean adjustments / change",
            "mean propagation depth / batch",
        ],
        result["rows"],
    )
    emit(
        "A2 verdicts",
        [
            {
                "row": "batch size 1 equals the Theorem 1 baseline",
                "paper": "E[|S|] <= 1 per change",
                "measured": result["per_change_costs"][1],
                "verdict": "pass" if result["per_change_costs"][1] <= 1.15 else "CHECK",
            },
            {
                "row": "per-change cost at batch size 20",
                "paper": "open question; sub-additivity expected",
                "measured": result["per_change_costs"][20],
                "verdict": "pass"
                if result["per_change_costs"][20] <= result["per_change_costs"][1] + 0.25
                else "CHECK",
            },
            {
                "row": "one-at-a-time reference mean adjustments",
                "paper": "<= 1",
                "measured": result["reference_mean_adjustments"],
                "verdict": "pass",
            },
        ],
    )

    assert result["per_change_costs"][1] <= 1.15
    # Batching never blows the per-change cost up; in practice it shrinks it.
    assert result["per_change_costs"][BATCH_SIZES[-1]] <= result["per_change_costs"][1] + 0.3
