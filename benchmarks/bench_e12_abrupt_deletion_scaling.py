"""E12 -- abrupt node deletion: the only super-constant broadcast case.

Paper claim (Theorem 7 / Lemma 13): an abrupt deletion of a node v* costs
O(min(log n, d(v*))) broadcasts in expectation -- the deleted node cannot hand
off its role, so up to d(v*) neighbors may seed the repair, but Lemma 12 caps
the number of times any node re-enters C by both log(n) and d(v*).

Reproduction: abruptly delete hub nodes of increasing degree (hubs embedded in
sparse random graphs).  Two measurements are reported:

* the *unconditional* expected broadcasts (the paper's quantity, which also
  contains the probability ~1/(d+1) that the hub is in the MIS at all), and
* the *conditional* expected broadcasts given that the hub was an MIS node
  (obtained by rejection sampling), which isolates the interesting repair
  cost and must stay well below the trivial Theta(d) bound.

Graceful deletions of the same hubs are included as the O(1) reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.estimators import growth_exponent, mean
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.changes import NodeDeletion

from harness import emit, emit_table, run_once

HUB_DEGREES = (4, 8, 16, 32)
BACKGROUND_NODES = 30
UNCONDITIONAL_SEEDS = range(40)
CONDITIONAL_TARGET = 5
CONDITIONAL_MAX_ATTEMPTS = 400


def _hub_graph(hub_degree: int, seed: int) -> DynamicGraph:
    """A sparse random graph plus one hub adjacent to ``hub_degree`` nodes."""
    graph = erdos_renyi_graph(
        max(BACKGROUND_NODES, hub_degree + 5), 2.0 / BACKGROUND_NODES, seed=seed
    )
    graph.add_node("hub")
    for node in sorted(graph.nodes(), key=repr):
        if node == "hub":
            continue
        if graph.degree("hub") >= hub_degree:
            break
        graph.add_edge("hub", node)
    return graph


def _one_abrupt_deletion(hub_degree: int, seed: int) -> Dict:
    graph = _hub_graph(hub_degree, seed)
    network = BufferedMISNetwork(seed=seed + 100, initial_graph=graph)
    hub_in_mis = "hub" in network.mis()
    record = network.apply(NodeDeletion("hub", graceful=False))
    network.verify()
    return {
        "broadcasts": record.broadcasts,
        "adjustments": record.adjustments,
        "hub_in_mis": hub_in_mis,
    }


def run_experiment() -> Dict:
    rows: List[List] = []
    unconditional_series: List[float] = []
    conditional_series: List[Optional[float]] = []
    graceful_series: List[float] = []
    for hub_degree in HUB_DEGREES:
        unconditional, graceful_broadcasts = [], []
        for seed in UNCONDITIONAL_SEEDS:
            outcome = _one_abrupt_deletion(hub_degree, seed)
            unconditional.append(outcome["broadcasts"])

            graceful_graph = _hub_graph(hub_degree, seed)
            graceful_network = BufferedMISNetwork(seed=seed + 100, initial_graph=graceful_graph)
            graceful_record = graceful_network.apply(NodeDeletion("hub", graceful=True))
            graceful_network.verify()
            graceful_broadcasts.append(graceful_record.broadcasts)

        conditional: List[float] = []
        attempt = 0
        while len(conditional) < CONDITIONAL_TARGET and attempt < CONDITIONAL_MAX_ATTEMPTS:
            outcome = _one_abrupt_deletion(hub_degree, 10_000 + attempt)
            attempt += 1
            if outcome["hub_in_mis"]:
                conditional.append(outcome["broadcasts"])

        conditional_mean = mean(conditional) if conditional else None
        rows.append(
            [
                hub_degree,
                mean(unconditional),
                conditional_mean,
                len(conditional),
                mean(graceful_broadcasts),
            ]
        )
        unconditional_series.append(mean(unconditional))
        conditional_series.append(conditional_mean)
        graceful_series.append(mean(graceful_broadcasts))
    return {
        "rows": rows,
        "unconditional_growth": growth_exponent(list(HUB_DEGREES), unconditional_series),
        "unconditional_series": unconditional_series,
        "conditional_series": conditional_series,
        "graceful_series": graceful_series,
    }


def test_e12_abrupt_deletion_scaling(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E12 -- deleting a hub of degree d: expected broadcasts",
        [
            "hub degree d",
            "abrupt (unconditional mean)",
            "abrupt (conditioned on hub in MIS)",
            "conditional samples",
            "graceful (mean)",
        ],
        result["rows"],
    )
    emit(
        "E12 verdicts",
        [
            {
                "row": "unconditional abrupt broadcasts growth exponent in d",
                "paper": "O(min(log n, d)): sublinear in d",
                "measured": result["unconditional_growth"],
                "verdict": "pass" if result["unconditional_growth"] < 0.8 else "CHECK",
            },
            {
                "row": "conditional abrupt broadcasts at max degree",
                "paper": "~3 per influenced node (Lemma 8), i.e. ~3*d when the hub was in the MIS",
                "measured": result["conditional_series"][-1],
                "verdict": "pass",
            },
            {
                "row": "graceful deletion broadcasts at max degree",
                "paper": "O(1)",
                "measured": result["graceful_series"][-1],
                "verdict": "pass" if result["graceful_series"][-1] < 15 else "CHECK",
            },
        ],
    )

    # The unconditional cost grows clearly slower than linearly in d.
    assert result["unconditional_growth"] < 0.9
    assert result["unconditional_series"][-1] < HUB_DEGREES[-1]
    # Graceful deletions stay flat.
    assert result["graceful_series"][-1] <= result["graceful_series"][0] + 10
    # Conditional repair cost, when observed, stays well below 3 * degree.
    for degree, conditional in zip(HUB_DEGREES, result["conditional_series"]):
        if conditional is not None:
            assert conditional <= 3 * degree + 10
