"""E3 -- Theorem 7: per-change-type round and broadcast complexity of Algorithm 2.

Paper claim (Theorem 7): the constant-broadcast implementation needs, in
expectation, a single adjustment and O(1) rounds for all topology changes;
O(1) broadcasts for edge insertions/deletions, graceful node deletions and
node unmuting; O(min(log n, d(v*))) broadcasts for an abrupt node deletion;
and O(d(v*)) broadcasts for a node insertion (ID discovery).

Reproduction: drive the Algorithm 2 network with dedicated per-change-type
workloads and report the mean rounds / broadcasts / adjustments per type.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analysis.estimators import mean
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)

from harness import emit, emit_table, run_once

NUM_NODES = 40
OPERATIONS_PER_TYPE = 40
SEEDS = range(3)


def _workload(network: BufferedMISNetwork, rng: random.Random, kind: str) -> List:
    """Produce one valid change of the requested kind for the current graph."""
    graph = network.graph
    nodes = sorted(graph.nodes(), key=repr)
    if kind == "edge_insertion":
        for _ in range(200):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v and not graph.has_edge(u, v):
                return [EdgeInsertion(u, v)]
        return []
    if kind == "edge_deletion":
        edges = graph.edges()
        if not edges:
            return []
        return [EdgeDeletion(*rng.choice(edges), graceful=bool(rng.getrandbits(1)))]
    if kind == "node_insertion":
        name = f"ins{rng.getrandbits(30)}"
        neighbors = tuple(node for node in nodes if rng.random() < 0.15)
        return [NodeInsertion(name, neighbors)]
    if kind == "node_unmuting":
        name = f"unm{rng.getrandbits(30)}"
        neighbors = tuple(node for node in nodes if rng.random() < 0.15)
        return [NodeUnmuting(name, neighbors)]
    if kind == "graceful_node_deletion":
        return [NodeDeletion(rng.choice(nodes), graceful=True)] if nodes else []
    if kind == "abrupt_node_deletion":
        return [NodeDeletion(rng.choice(nodes), graceful=False)] if nodes else []
    raise ValueError(kind)


KINDS = (
    "edge_insertion",
    "edge_deletion",
    "graceful_node_deletion",
    "abrupt_node_deletion",
    "node_insertion",
    "node_unmuting",
)

PAPER_CLAIMS = {
    "edge_insertion": "O(1) broadcasts",
    "edge_deletion": "O(1) broadcasts",
    "graceful_node_deletion": "O(1) broadcasts",
    "abrupt_node_deletion": "O(min(log n, d)) broadcasts",
    "node_insertion": "O(d(v*)) broadcasts",
    "node_unmuting": "O(1) broadcasts",
}


def run_experiment() -> Dict:
    per_kind: Dict[str, Dict[str, List[float]]] = {
        kind: {"rounds": [], "broadcasts": [], "adjustments": [], "degree": []} for kind in KINDS
    }
    for seed in SEEDS:
        for kind in KINDS:
            graph = erdos_renyi_graph(NUM_NODES, 3.0 / NUM_NODES, seed=seed)
            network = BufferedMISNetwork(seed=seed + 5, initial_graph=graph)
            rng = random.Random(seed + hash(kind) % 1000)
            for _ in range(OPERATIONS_PER_TYPE):
                changes = _workload(network, rng, kind)
                if not changes:
                    continue
                change = changes[0]
                degree = 0
                if isinstance(change, (NodeInsertion, NodeUnmuting)):
                    degree = len(change.neighbors)
                elif isinstance(change, NodeDeletion):
                    degree = network.graph.degree(change.node)
                record = network.apply(change)
                bucket = per_kind[kind]
                bucket["rounds"].append(record.rounds)
                bucket["broadcasts"].append(record.broadcasts)
                bucket["adjustments"].append(record.adjustments)
                bucket["degree"].append(degree)
            network.verify()
    return {
        kind: {
            "mean_rounds": mean(bucket["rounds"]),
            "mean_broadcasts": mean(bucket["broadcasts"]),
            "mean_adjustments": mean(bucket["adjustments"]),
            "mean_degree": mean(bucket["degree"]),
        }
        for kind, bucket in per_kind.items()
    }


def test_e3_theorem7_per_change_type_costs(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E3 / Theorem 7 -- Algorithm 2 cost per change type",
        [
            "change type",
            "paper broadcasts",
            "mean broadcasts",
            "mean rounds",
            "mean adjustments",
            "mean degree",
        ],
        [
            [
                kind,
                PAPER_CLAIMS[kind],
                stats["mean_broadcasts"],
                stats["mean_rounds"],
                stats["mean_adjustments"],
                stats["mean_degree"],
            ]
            for kind, stats in result.items()
        ],
    )
    emit(
        "E3 verdicts",
        [
            {
                "row": "adjustments per change (all types)",
                "paper": "1 in expectation",
                "measured": max(stats["mean_adjustments"] for stats in result.values()),
                "verdict": "pass",
            },
            {
                "row": "rounds per change (all types)",
                "paper": "O(1)",
                "measured": max(stats["mean_rounds"] for stats in result.values()),
                "verdict": "pass",
            },
        ],
    )

    # O(1)-broadcast change types stay genuinely small.
    for kind in ("edge_insertion", "edge_deletion", "graceful_node_deletion", "node_unmuting"):
        assert result[kind]["mean_broadcasts"] <= 12.0, kind
    # Node insertion is allowed its Theta(d) discovery cost but not much more.
    assert (
        result["node_insertion"]["mean_broadcasts"]
        <= result["node_insertion"]["mean_degree"] + 8.0
    )
    # Every change type keeps the single-adjustment expectation (with slack).
    for kind, stats in result.items():
        assert stats["mean_adjustments"] <= 1.6, kind
        assert stats["mean_rounds"] <= 10.0, kind
