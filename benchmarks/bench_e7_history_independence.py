"""E7 -- history independence (Definition 14).

Paper claim: the distribution of the output structure depends only on the
current graph, not on the change history that produced it; the adversary
cannot bias the output through its choice of changes.  The natural
history-dependent greedy algorithm does not have this property.

Reproduction: build the same target graph through several very different
change histories.  For the paper's algorithm, (a) the per-seed outputs are
*identical* across histories, and (b) the empirical output distributions over
seeds coincide (total variation distance 0 up to sampling).  For the natural
greedy baseline the outputs genuinely differ across histories.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.analysis.history_independence import (
    max_pairwise_distance,
    mis_distribution_over_histories,
    outputs_identical_across_histories,
)
from repro.baselines.deterministic_dynamic import NaturalGreedyDynamicMIS
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.workloads.sequences import alternative_histories

from harness import emit, run_once

NUM_HISTORIES = 4
SEEDS = range(40)


def _natural_greedy_output(history, seed) -> FrozenSet:
    del seed  # the natural algorithm has no randomness; history is everything
    algorithm = NaturalGreedyDynamicMIS()
    for change in history:
        algorithm.apply(change)
    return frozenset(algorithm.mis())


def run_experiment() -> Dict:
    graph = erdos_renyi_graph(14, 0.25, seed=3)
    histories = alternative_histories(graph, num_histories=NUM_HISTORIES, seed=4)

    per_seed_identical = all(
        outputs_identical_across_histories(histories, seed) for seed in range(10)
    )
    distributions = mis_distribution_over_histories(histories, seeds=SEEDS)
    ours_distance = max_pairwise_distance(distributions)

    natural_outputs = {
        tuple(sorted(map(repr, _natural_greedy_output(history, 0)))) for history in histories
    }

    # The star example in distribution form: the adversary builds a star in
    # whatever order it likes; ours still picks the leaves w.p. 1 - 1/n.
    star_histories = alternative_histories(star_graph(9), num_histories=3, seed=6)
    star_distributions = mis_distribution_over_histories(star_histories, seeds=SEEDS)
    star_distance = max_pairwise_distance(star_distributions)

    return {
        "per_seed_identical": per_seed_identical,
        "ours_distance": ours_distance,
        "natural_distinct_outputs": len(natural_outputs),
        "star_distance": star_distance,
    }


def test_e7_history_independence(benchmark):
    result = run_once(benchmark, run_experiment)

    emit(
        "E7 -- history independence across change histories of the same graph",
        [
            {
                "row": "ours: identical output per seed across histories",
                "paper": "output distribution depends only on G",
                "measured": "yes" if result["per_seed_identical"] else "no",
                "verdict": "pass" if result["per_seed_identical"] else "CHECK",
            },
            {
                "row": "ours: max TV distance between history distributions",
                "paper": "0",
                "measured": result["ours_distance"],
                "verdict": "pass" if result["ours_distance"] < 1e-9 else "CHECK",
            },
            {
                "row": "ours on adversarial star histories: max TV distance",
                "paper": "0",
                "measured": result["star_distance"],
                "verdict": "pass" if result["star_distance"] < 1e-9 else "CHECK",
            },
            {
                "row": "natural greedy: distinct outputs across histories",
                "paper": "history dependent (adversary can steer it)",
                "measured": result["natural_distinct_outputs"],
                "verdict": "pass" if result["natural_distinct_outputs"] > 1 else "CHECK",
            },
        ],
    )

    assert result["per_seed_identical"]
    assert result["ours_distance"] < 1e-9
    assert result["star_distance"] < 1e-9
    assert result["natural_distinct_outputs"] > 1
