"""Benchmark trajectory report: diff the latest results against a git baseline.

Every trajectory-tracked benchmark overwrites one JSON file under
``benchmarks/results/`` per run (see ``harness.emit_json``), so successive
commits record the performance trajectory in version control.  This script
closes the loop (ROADMAP "benchmark trajectory tracking"): it compares the
*working-tree* result files against the same files at a baseline git ref
(default ``HEAD``, i.e. "what was last committed") and **fails with exit
code 1 when any timing regresses by more than the threshold** (default 30%).

Metric classification is by key name, so new benchmarks are picked up with
zero configuration:

* keys ending in ``_us`` / ``_ms`` / ``_s`` / ``_seconds`` are timings --
  *lower is better*;
* keys named ``speedup`` are ratios -- *higher is better*;
* everything else (sizes, seeds, counters) is informational and ignored.

Usage::

    python benchmarks/report.py                  # working tree vs HEAD
    python benchmarks/report.py --against HEAD~1 # last commit vs its parent
    python benchmarks/report.py --threshold 0.5  # tolerate up to 50%

Wired into the nightly CI workflow right after the benchmark runs; a result
file with no baseline (a brand-new benchmark) is reported but never fails.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

TIMING_SUFFIXES = ("_us", "_ms", "_s", "_seconds")
HIGHER_IS_BETTER_KEYS = ("speedup",)


@dataclass
class MetricDelta:
    """One compared metric: its JSON path, both values and the relative change.

    ``relative_regression`` is positive when the metric got *worse* (slower
    timing or smaller speedup), regardless of the metric's direction.
    """

    benchmark: str
    path: str
    baseline: float
    current: float
    higher_is_better: bool

    @property
    def relative_regression(self) -> float:
        if self.baseline == 0:
            return 0.0
        change = (self.current - self.baseline) / abs(self.baseline)
        return -change if self.higher_is_better else change

    def describe(self) -> str:
        arrow = f"{self.baseline:g} -> {self.current:g}"
        direction = "higher=better" if self.higher_is_better else "lower=better"
        return (
            f"{self.benchmark}:{self.path} ({direction}) {arrow} "
            f"({self.relative_regression:+.1%} regression)"
        )


def iter_metrics(document: Dict, path: str = "") -> Iterator[Tuple[str, str, float]]:
    """Yield ``(path, key, value)`` for every tracked numeric leaf.

    Walks dicts and lists; list positions become ``[i]`` path segments, so
    metrics pair up positionally between two runs of the same benchmark.
    """
    if isinstance(document, dict):
        for key, value in sorted(document.items()):
            sub_path = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from iter_metrics(value, sub_path)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if key in HIGHER_IS_BETTER_KEYS or key.endswith(TIMING_SUFFIXES):
                    yield sub_path, key, float(value)
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from iter_metrics(value, f"{path}[{index}]")


def compare_documents(
    name: str, current: Dict, baseline: Dict
) -> List[MetricDelta]:
    """Pair up the tracked metrics of two result documents by JSON path."""
    current_metrics = {p: (k, v) for p, k, v in iter_metrics(current.get("results", current))}
    baseline_metrics = {p: (k, v) for p, k, v in iter_metrics(baseline.get("results", baseline))}
    deltas: List[MetricDelta] = []
    for metric_path, (key, value) in current_metrics.items():
        if metric_path not in baseline_metrics:
            continue
        deltas.append(
            MetricDelta(
                benchmark=name,
                path=metric_path,
                baseline=baseline_metrics[metric_path][1],
                current=value,
                higher_is_better=key in HIGHER_IS_BETTER_KEYS,
            )
        )
    return deltas


def load_baseline(relative_path: Path, ref: str) -> Optional[Dict]:
    """The committed version of ``relative_path`` at ``ref`` (None if absent)."""
    completed = subprocess.run(
        ["git", "show", f"{ref}:{relative_path.as_posix()}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        return None
    try:
        return json.loads(completed.stdout)
    except json.JSONDecodeError:
        return None


def baseline_ref_exists(ref: str) -> bool:
    """Whether ``ref`` resolves to a commit in this checkout.

    Returns False -- instead of exploding later on every ``git show`` -- on
    shallow checkouts that did not fetch the ref, on first-commit or empty
    repositories where ``HEAD``/``HEAD~1`` does not exist yet, and when
    ``git`` itself is unavailable.  :func:`run_report` turns that into a
    clear skip message with exit code 0, so the trajectory gate degrades
    gracefully instead of failing CI for reasons unrelated to performance.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", f"{ref}^{{commit}}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
    except OSError:
        return False
    return completed.returncode == 0


def _delta_dict(delta: MetricDelta) -> Dict:
    return {
        "benchmark": delta.benchmark,
        "path": delta.path,
        "baseline": delta.baseline,
        "current": delta.current,
        "higher_is_better": delta.higher_is_better,
        "relative_regression": delta.relative_regression,
    }


def run_report(
    against: str = "HEAD",
    threshold: float = 0.30,
    results_dir: Path = RESULTS_DIR,
    speedups_only: bool = False,
    output_format: str = "text",
) -> int:
    """Print the trajectory diff; return the process exit code (1 = regression).

    ``speedups_only`` restricts the gate to ratio metrics (``speedup``),
    which are machine-portable; absolute ``*_us`` timings are only
    comparable when baseline and current run on the same machine.

    With ``output_format="json"`` stdout carries exactly one JSON document
    (the per-benchmark rows plus every regression), so
    ``python benchmarks/report.py --json | jq ...`` works; all human-readable
    lines move to stderr.  In text mode the report itself is the stdout
    payload, as before.
    """
    human = sys.stdout if output_format == "text" else sys.stderr
    document: Dict = {
        "against": against,
        "threshold": threshold,
        "speedups_only": speedups_only,
        "skipped": None,
        "benchmarks": [],
        "regressions": [],
    }

    def finish(exit_code: int) -> int:
        if output_format == "json":
            json.dump(document, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        return exit_code

    result_files = sorted(results_dir.glob("*.json"))
    if not result_files:
        document["skipped"] = "no results"
        print(f"no benchmark results under {results_dir}", file=human)
        return finish(0)
    if not baseline_ref_exists(against):
        document["skipped"] = "baseline ref not found"
        print(
            f"baseline ref {against!r} not found (shallow checkout, first commit, "
            f"or git unavailable); skipping the trajectory comparison",
            file=human,
        )
        return finish(0)

    regressions: List[MetricDelta] = []
    for result_file in result_files:
        name = result_file.stem
        current = json.loads(result_file.read_text())
        baseline = load_baseline(result_file.relative_to(REPO_ROOT), against)
        if baseline is None:
            document["benchmarks"].append(
                {"benchmark": name, "status": "new", "metrics": 0, "worst": None}
            )
            print(
                f"[new]  {name}: no baseline at {against} (first trajectory point)",
                file=human,
            )
            continue
        deltas = compare_documents(name, current, baseline)
        if speedups_only:
            deltas = [d for d in deltas if d.higher_is_better]
        worst = max(deltas, key=lambda d: d.relative_regression, default=None)
        bad = [d for d in deltas if d.relative_regression > threshold]
        status = "FAIL" if bad else "ok"
        worst_text = worst.describe() if worst else "no comparable metrics"
        document["benchmarks"].append(
            {
                "benchmark": name,
                "status": status,
                "metrics": len(deltas),
                "worst": _delta_dict(worst) if worst else None,
            }
        )
        print(
            f"[{status:4}] {name}: {len(deltas)} metrics vs {against}; worst: {worst_text}",
            file=human,
        )
        for delta in bad:
            print(f"       REGRESSION > {threshold:.0%}: {delta.describe()}", file=human)
        regressions.extend(bad)

    document["regressions"] = [_delta_dict(delta) for delta in regressions]
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond {threshold:.0%} -- failing",
            file=human,
        )
        return finish(1)
    print(f"\nno regression beyond {threshold:.0%}", file=human)
    return finish(0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--against",
        default="HEAD",
        help="git ref holding the baseline result files (default: HEAD)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="relative regression that fails the report (default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--speedups-only",
        action="store_true",
        help="gate only on speedup ratios (machine-portable); use on CI runners "
        "whose absolute timings are not comparable to the committed baselines",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document on stdout (human lines go to stderr)",
    )
    arguments = parser.parse_args(argv)
    return run_report(
        against=arguments.against,
        threshold=arguments.threshold,
        speedups_only=arguments.speedups_only,
        output_format="json" if arguments.json else "text",
    )


if __name__ == "__main__":
    sys.exit(main())
