"""E9 -- Example 2 (Section 5): maximal matching of n/4 disjoint 3-edge paths.

Paper claim: the maximal matching maintained by running the algorithm on the
line graph has expected size 5n/12 on the graph made of n/4 disjoint 3-edge
paths (per path: size 2 with probability 2/3, size 1 with probability 1/3),
versus the worst-case maximal matching of size n/4 and the maximum matching
of size n/2.

Reproduction: sweep the number of paths, build the graph through a dynamic
change history, measure the expected matching size of the dynamic maintainer
and compare with the closed form, the worst case and the maximum.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.graph.generators import disjoint_paths_graph
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.matching.greedy_matching import (
    expected_random_greedy_matching_size_3paths,
    maximum_matching_size_3paths,
    worst_case_maximal_matching_3paths,
)
from repro.workloads.adversary import three_paths_construction_history

from harness import emit, emit_table, run_once

PATH_COUNTS = (3, 6, 12)
SEEDS = range(80)


def run_experiment() -> Dict:
    rows: List[List] = []
    deviations: List[float] = []
    for num_paths in PATH_COUNTS:
        history = three_paths_construction_history(num_paths, seed=2)
        sizes = []
        for seed in SEEDS:
            matcher = DynamicMaximalMatching(seed=seed)
            for change in history:
                matcher.apply(change)
            sizes.append(matcher.matching_size())
        measured = mean(sizes)
        expected = expected_random_greedy_matching_size_3paths(num_paths)
        worst = len(worst_case_maximal_matching_3paths(disjoint_paths_graph(num_paths)))
        maximum = maximum_matching_size_3paths(num_paths)
        num_nodes = 4 * num_paths
        rows.append([num_paths, num_nodes, expected, measured, worst, maximum])
        deviations.append(abs(measured - expected) / expected)
    return {"rows": rows, "deviations": deviations}


def test_e9_matching_three_paths_example(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "E9 / Example 2 -- expected maximal matching size on n/4 disjoint 3-paths",
        [
            "paths",
            "n (nodes)",
            "paper E[size] = 5n/12",
            "measured E[size]",
            "worst-case maximal matching (n/4)",
            "maximum matching (n/2)",
        ],
        result["rows"],
    )
    emit(
        "E9 verdicts",
        [
            {
                "row": "max relative deviation from 5n/12",
                "paper": "E[size] = 5n/12",
                "measured": max(result["deviations"]),
                "verdict": "pass" if max(result["deviations"]) < 0.1 else "CHECK",
            },
        ],
    )

    for row, deviation in zip(result["rows"], result["deviations"]):
        _, _, expected, measured, worst, maximum = row
        assert deviation < 0.12
        assert worst < measured < maximum
