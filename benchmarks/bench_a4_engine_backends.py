"""A4 (extension) -- template vs fast engine backends on growing graphs.

The paper's Theorem 1 makes the *expected adjustment count* per change O(1);
the reproduction's production goal (ROADMAP) additionally needs the
*wall-clock* per-change cost to be dominated by the influenced-set walk, not
by bookkeeping.  The template engine pays O(n) per change regardless of |S|
(it snapshots the full state dict and rescans all nodes for adjustments); the
array-backed fast engine touches only the influenced neighborhood.

Reproduction: sweep n with constant average degree, drive both backends
through the identical seeded edge-churn sequence, and meter the mean
per-change apply time.  The shape to check: the template's per-change cost
grows linearly with n while the fast engine's stays flat, with the gap
crossing 3x well before n = 5000 (the acceptance bar for the backend).  Both
backends must also end with identical MIS outputs -- a free conformance
check on every benchmark run.

Results are emitted as a table and as JSON (``benchmarks/results/``) so the
performance trajectory is recorded in version control.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once, run_scenario_session

SIZES = (500, 1000, 2000, 5000)
AVERAGE_DEGREE = 8
NUM_CHANGES = 400
MASTER_SEED = 20260729
TARGET_SPEEDUP_AT_5000 = 3.0


def _scenario(n: int, graph_seed: int, workload_seed: int, engine_seed: int) -> ScenarioSpec:
    """One sweep point as a declarative scenario (the backend is swept over it)."""
    return ScenarioSpec(
        name=f"a4-edge-churn-n{n}",
        seed=engine_seed,
        graph=GraphSpec(
            family="erdos_renyi",
            nodes=n,
            seed=graph_seed,
            params={"edge_probability": AVERAGE_DEGREE / (n - 1)},
        ),
        workload=WorkloadSpec(kind="edge_churn", num_changes=NUM_CHANGES, seed=workload_seed),
        backend=BackendSpec(runner="sequential"),
    )


def _time_engine(engine: str, spec: ScenarioSpec) -> Dict:
    result, session = run_scenario_session(spec.with_backend(engine=engine))
    return {
        "engine": engine,
        "per_change_us": result.per_change_us,
        "total_s": result.elapsed_s,
        "num_changes": result.num_changes,
        "final_mis": session.mis(),
        "mean_adjustments": session.maintainer.statistics.mean_adjustments(),
    }


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed, engine_seed = benchmark_seeds(master_seed, 3)
    rows: List[List] = []
    series: List[Dict] = []
    csr_series: List[Dict] = []
    for n in SIZES:
        spec = _scenario(n, graph_seed, workload_seed, engine_seed)
        template = _time_engine("template", spec)
        fast = _time_engine("fast", spec)
        fast_csr = _time_engine("fast-csr", spec)
        assert template["final_mis"] == fast["final_mis"], "backends diverged!"
        assert template["mean_adjustments"] == fast["mean_adjustments"]
        # The CSR-wave variant must stay on the identical trajectory: the
        # mirror only changes how a level is evaluated, never its outcome.
        assert fast_csr["final_mis"] == fast["final_mis"], "CSR backend diverged!"
        assert fast_csr["mean_adjustments"] == fast["mean_adjustments"]
        speedup = template["per_change_us"] / fast["per_change_us"]
        csr_speedup = template["per_change_us"] / fast_csr["per_change_us"]
        rows.append(
            [n, template["per_change_us"], fast["per_change_us"], speedup]
        )
        series.append(
            {
                "n": n,
                "num_changes": template["num_changes"],
                "template_per_change_us": round(template["per_change_us"], 3),
                "fast_per_change_us": round(fast["per_change_us"], 3),
                "speedup": round(speedup, 3),
                "mean_adjustments": round(fast["mean_adjustments"], 4),
                "final_mis_size": len(fast["final_mis"]),
            }
        )
        csr_series.append(
            {
                "n": n,
                "fast_csr_per_change_us": round(fast_csr["per_change_us"], 3),
                "speedup": round(csr_speedup, 3),
            }
        )
    return {
        "rows": rows,
        "series": series,
        "csr_series": csr_series,
        "speedup_at_max_n": rows[-1][3],
        "csr_speedup_at_max_n": csr_series[-1]["speedup"],
        "python": sys.version.split()[0],
        "average_degree": AVERAGE_DEGREE,
        "master_seed": master_seed,
    }


def test_a4_engine_backends(benchmark):
    results = run_once(benchmark, run_experiment)
    emit_table(
        "A4: per-change apply time, template vs fast engine (identical outputs)",
        ["n", "template us/change", "fast us/change", "speedup", "fast-csr us/change", "csr x"],
        [
            [
                n,
                f"{t:.1f}",
                f"{f:.1f}",
                f"{s:.1f}x",
                f"{c['fast_csr_per_change_us']:.1f}",
                f"{c['speedup']:.1f}x",
            ]
            for (n, t, f, s), c in zip(results["rows"], results["csr_series"])
        ],
    )
    emit(
        "A4: array-backed engine backend",
        [
            {
                "row": "fast-engine speedup per change at n=5000",
                "paper": f">= {TARGET_SPEEDUP_AT_5000}x (acceptance bar)",
                "measured": f"{results['speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_5000
                else "CHECK",
            },
            {
                "row": "fast-csr engine speedup per change at n=5000",
                "paper": f">= {TARGET_SPEEDUP_AT_5000}x (per-change parity with fast)",
                "measured": f"{results['csr_speedup_at_max_n']:.1f}x",
                "verdict": "pass"
                if results["csr_speedup_at_max_n"] >= TARGET_SPEEDUP_AT_5000
                else "CHECK",
            },
            {
                "row": "identical MIS outputs on every size",
                "paper": "exact",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a4_engine_backends", _payload(results))
    # The fast engine's per-change cost must stay roughly flat while the
    # template's grows ~linearly: require the acceptance bar at n=5000 and
    # monotone separation across the sweep.
    assert results["speedup_at_max_n"] >= TARGET_SPEEDUP_AT_5000
    speedups = [row[3] for row in results["rows"]]
    assert speedups[-1] > speedups[0]
    # Per-change churn rarely clears the CSR engagement threshold, so the
    # CSR variant must simply stay at parity -- same acceptance bar.
    assert results["csr_speedup_at_max_n"] >= TARGET_SPEEDUP_AT_5000


def _payload(results: Dict) -> Dict:
    return {
        "series": results["series"],
        "csr_series": results["csr_series"],
        "average_degree": results["average_degree"],
        "master_seed": results["master_seed"],
        "python": results["python"],
    }


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a4_engine_backends", _payload(outcome))
    for row in outcome["rows"]:
        print(row)
