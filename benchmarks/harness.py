"""Shared helpers for the experiment benchmarks.

Every ``bench_e*.py`` file reproduces one claim of the paper (see DESIGN.md's
experiment index).  The benchmarks follow a common pattern:

* a ``run_*`` function executes the experiment and returns a plain dict of
  measured quantities;
* the pytest-benchmark fixture times that function (one round -- we care about
  the measured quantities, the wall-clock time is just a bonus);
* the test prints the standard paper-vs-measured claim table (visible with
  ``pytest -s`` and recorded in EXPERIMENTS.md) and asserts the *shape* of the
  claim (who wins, constant vs growing, within the paper's bound up to
  sampling slack).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_claim_table, format_table
from repro.core.rng import spawn_seeds

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, claims: Iterable[Dict]) -> None:
    """Print the standard claim table (captured unless ``-s`` is used)."""
    print()
    print(format_claim_table(title, list(claims)))


def emit_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print a free-form series table (for sweeps / figure-style results)."""
    print()
    print(format_table(headers, rows, title=title))


def emit_json(name: str, payload: Dict[str, Any], results_dir: Optional[Path] = None) -> Path:
    """Write a benchmark's measured quantities as JSON under ``benchmarks/results/``.

    This is the harness's machine-readable output format: one file per
    benchmark, overwritten on every run, so successive commits record the
    performance trajectory in version control.  The payload is wrapped with
    the benchmark name and a unix timestamp; everything else is up to the
    benchmark (keep it to plain dicts/lists/numbers so diffs stay readable).

    Overwriting is never silent: when the target file already exists, the
    previous numeric values that changed are printed first, so a local run
    shows its delta against the committed trajectory point immediately
    (the same values ``report.py`` would diff against the git baseline).
    """
    target_dir = Path(results_dir) if results_dir is not None else RESULTS_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name}.json"
    document = {"benchmark": name, "created_unix": int(time.time()), "results": payload}
    previous = _load_previous_result(path)
    if previous is not None:
        _log_overwrite(path, previous, document)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _load_previous_result(path: Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _numeric_leaves(document: Any, path: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(json_path, value)`` for every numeric leaf (bools excluded)."""
    if isinstance(document, dict):
        for key, value in sorted(document.items()):
            yield from _numeric_leaves(value, f"{path}.{key}" if path else str(key))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from _numeric_leaves(value, f"{path}[{index}]")
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        yield path, float(document)


def _log_overwrite(
    path: Path, previous: Dict[str, Any], document: Dict[str, Any], limit: int = 16
) -> None:
    """Report the numeric deltas of an ``emit_json`` overwrite (best effort).

    Goes to *stderr*: this is progress chatter, and a benchmark's stdout may
    be piped into tooling that expects machine output only.
    """
    created = previous.get("created_unix")
    print(f"emit_json: overwriting {path} (previous created_unix={created})", file=sys.stderr)
    old = dict(_numeric_leaves(previous.get("results", {})))
    new = dict(_numeric_leaves(document.get("results", {})))
    changed = [(p, old[p], new[p]) for p in sorted(old) if p in new and old[p] != new[p]]
    for leaf_path, old_value, new_value in changed[:limit]:
        print(f"  {leaf_path}: {old_value:g} -> {new_value:g}", file=sys.stderr)
    if len(changed) > limit:
        print(f"  ... and {len(changed) - limit} more changed values", file=sys.stderr)
    dropped = sorted(set(old) - set(new))
    if dropped:
        print(f"  dropped values: {dropped[:limit]}", file=sys.stderr)


def run_scenario_session(spec, observers: Iterable = (), verify: bool = True):
    """Benchmark entry for the declarative scenario API: run one spec.

    Builds a :class:`repro.scenario.Session` for ``spec``, streams it to the
    end and returns ``(result, session)`` -- the
    :class:`~repro.scenario.session.ScenarioResult` carries the wall-clock
    numbers (``elapsed_s`` covers only the apply calls), the session gives
    access to final states for cross-backend equality asserts.  Sweeps call
    this once per point of a ``spec x backend`` grid (see
    ``bench_a4_engine_backends.py`` / ``bench_a5_distributed.py``).

    Deliberately *not* named ``run_scenario``: that name is the library
    entry (:func:`repro.scenario.run_scenario`) with a different return
    contract (the result alone).
    """
    from repro.scenario import Session

    session = Session(spec, observers=observers)
    result = session.run(verify=verify)
    return result, session


def benchmark_seeds(seed: Any, repetitions: int) -> List[int]:
    """Independent per-repetition seeds from one master seed.

    ``seed`` may be an int or a ``numpy.random.Generator`` / ``SeedSequence``
    (anything :func:`repro.core.rng.normalize_seed` accepts), so experiment scripts
    can pass their own Generator end-to-end without touching module-level
    randomness.
    """
    return spawn_seeds(seed, repetitions)
