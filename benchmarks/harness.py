"""Shared helpers for the experiment benchmarks.

Every ``bench_e*.py`` file reproduces one claim of the paper (see DESIGN.md's
experiment index).  The benchmarks follow a common pattern:

* a ``run_*`` function executes the experiment and returns a plain dict of
  measured quantities;
* the pytest-benchmark fixture times that function (one round -- we care about
  the measured quantities, the wall-clock time is just a bonus);
* the test prints the standard paper-vs-measured claim table (visible with
  ``pytest -s`` and recorded in EXPERIMENTS.md) and asserts the *shape* of the
  claim (who wins, constant vs growing, within the paper's bound up to
  sampling slack).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.reporting import format_claim_table, format_table
from repro.core.rng import spawn_seeds

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, claims: Iterable[Dict]) -> None:
    """Print the standard claim table (captured unless ``-s`` is used)."""
    print()
    print(format_claim_table(title, list(claims)))


def emit_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print a free-form series table (for sweeps / figure-style results)."""
    print()
    print(format_table(headers, rows, title=title))


def emit_json(name: str, payload: Dict[str, Any], results_dir: Optional[Path] = None) -> Path:
    """Write a benchmark's measured quantities as JSON under ``benchmarks/results/``.

    This is the harness's machine-readable output format: one file per
    benchmark, overwritten on every run, so successive commits record the
    performance trajectory in version control.  The payload is wrapped with
    the benchmark name and a unix timestamp; everything else is up to the
    benchmark (keep it to plain dicts/lists/numbers so diffs stay readable).
    """
    target_dir = Path(results_dir) if results_dir is not None else RESULTS_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name}.json"
    document = {"benchmark": name, "created_unix": int(time.time()), "results": payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def benchmark_seeds(seed: Any, repetitions: int) -> List[int]:
    """Independent per-repetition seeds from one master seed.

    ``seed`` may be an int or a ``numpy.random.Generator`` / ``SeedSequence``
    (anything :func:`repro.core.rng.normalize_seed` accepts), so experiment scripts
    can pass their own Generator end-to-end without touching module-level
    randomness.
    """
    return spawn_seeds(seed, repetitions)
