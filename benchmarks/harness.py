"""Shared helpers for the experiment benchmarks.

Every ``bench_e*.py`` file reproduces one claim of the paper (see DESIGN.md's
experiment index).  The benchmarks follow a common pattern:

* a ``run_*`` function executes the experiment and returns a plain dict of
  measured quantities;
* the pytest-benchmark fixture times that function (one round -- we care about
  the measured quantities, the wall-clock time is just a bonus);
* the test prints the standard paper-vs-measured claim table (visible with
  ``pytest -s`` and recorded in EXPERIMENTS.md) and asserts the *shape* of the
  claim (who wins, constant vs growing, within the paper's bound up to
  sampling slack).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.reporting import format_claim_table, format_table


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, claims: Iterable[Dict]) -> None:
    """Print the standard claim table (captured unless ``-s`` is used)."""
    print()
    print(format_claim_table(title, list(claims)))


def emit_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print a free-form series table (for sweeps / figure-style results)."""
    print()
    print(format_table(headers, rows, title=title))
