"""A7 (parallel) -- shared-memory evaluation pool: speedup across worker counts.

The parallel tentpole's claim is architectural: the per-level frontier of
the batched repair wave and the per-round guard evaluation of the
synchronous protocols are embarrassingly parallel (within a level / round
every evaluation reads a frozen pre-commit snapshot), so a
``multiprocessing.shared_memory`` worker pool can evaluate them chunk-wise
**without changing a single output bit** -- parity is proven by the
differential suites in ``tests/test_parallel.py``; this benchmark records
what the parallelism buys in wall-clock.

Reproduction: the same seeded churn scenario runs serially and with 2- and
4-worker pools, through the real ``ScenarioSpec.parallel`` plumbing (so the
benchmark exercises exactly the path ``repro-mis run --workers`` takes),
once on the batched fast sequential engine and once on the fast buffered
protocol simulator.  ``speedup`` is the serial wall-clock over the pooled
wall-clock -- the machine-portable ratio the nightly trajectory gate holds
(``report.py --speedups-only``).  Every pooled run asserts the pool really
engaged (``tasks_run > 0``) and that the final MIS matches the serial run.

**Single-core caveat**: the committed trajectory point records ``cpus``
next to the ratios.  On a 1-CPU machine the expected speedup is *below*
1.0x (workers cannot run concurrently, so only the dispatch overhead
remains); real scaling shows on multi-core runners.  The floor below is
therefore an overhead bound, not a scaling claim.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional

from repro.scenario import (
    BackendSpec,
    GraphSpec,
    ParallelSpec,
    ScenarioSpec,
    Session,
    WorkloadSpec,
)

from harness import benchmark_seeds, emit, emit_json, emit_table, run_once

#: 0 = the serial baseline; the pooled points divide by its wall-clock.
WORKER_COUNTS = (0, 2, 4)
#: Small enough that realistic frontiers engage the pool, large enough that
#: a worker never receives a trivial chunk.
MIN_CHUNK = 32

ENGINE_NODES = 2400
ENGINE_CHANGES = 512
ENGINE_BATCH = 64

PROTOCOL_NODES = 700
PROTOCOL_CHANGES = 160

AVERAGE_DEGREE = 8
MASTER_SEED = 20260808
#: Hard floor on the 4-worker ratio: pool dispatch must never cost more
#: than 60% of the serial wall-clock.  On single-core CI this bounds the
#: overhead; on multi-core machines measured ratios sit above 1x and the
#: trajectory gate holds them as higher-better.
MIN_SPEEDUP_AT_MAX_WORKERS = 0.4


def _spec(
    runner: str, workers: int, graph_seed: int, workload_seed: int
) -> ScenarioSpec:
    parallel: Optional[ParallelSpec] = None
    if workers > 1:
        parallel = ParallelSpec(workers=workers, min_chunk=MIN_CHUNK)
    if runner == "sequential":
        backend = BackendSpec(runner="sequential", engine="fast", parallel=parallel)
        nodes, changes, batch = ENGINE_NODES, ENGINE_CHANGES, ENGINE_BATCH
    else:
        backend = BackendSpec(
            runner="protocol", protocol="buffered", network="fast", parallel=parallel
        )
        nodes, changes, batch = PROTOCOL_NODES, PROTOCOL_CHANGES, 0
    return ScenarioSpec(
        name=f"a7-{runner}-w{workers}",
        seed=workload_seed + 1,
        graph=GraphSpec(
            family="erdos_renyi",
            nodes=nodes,
            seed=graph_seed,
            params={"edge_probability": AVERAGE_DEGREE / (nodes - 1)},
        ),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=changes, seed=workload_seed),
        backend=backend,
        batch_size=batch,
    )


def _measure(runner: str, workers: int, graph_seed: int, workload_seed: int) -> Dict:
    session = Session(_spec(runner, workers, graph_seed, workload_seed))
    start = time.perf_counter()
    result = session.run(verify=False)
    elapsed = time.perf_counter() - start
    pool = session.parallel_pool
    if workers > 1:
        assert pool is not None and not pool.broken
        assert pool.tasks_run > 0, "pool never engaged -- thresholds are off"
    point = {
        "workers": workers,
        "elapsed_s": round(elapsed, 4),
        "changes_per_sec": round(result.num_changes / elapsed, 1),
        "pool_tasks": pool.tasks_run if pool is not None else 0,
        "final_mis_size": result.final_mis_size,
    }
    if pool is not None:
        pool.close()
    return point


def _series(runner: str, graph_seed: int, workload_seed: int) -> List[Dict]:
    series: List[Dict] = []
    for workers in WORKER_COUNTS:
        point = _measure(runner, workers, graph_seed, workload_seed)
        if series:
            # Parallel evaluation is an accelerator, never a semantic change:
            # the pooled runs must land on the serial MIS exactly.
            assert point["final_mis_size"] == series[0]["final_mis_size"]
            point["speedup"] = round(
                series[0]["elapsed_s"] / point["elapsed_s"], 3
            )
        series.append(point)
    return series


def run_experiment(master_seed: int = MASTER_SEED) -> Dict:
    graph_seed, workload_seed = benchmark_seeds(master_seed, 2)
    engine_series = _series("sequential", graph_seed, workload_seed)
    protocol_series = _series("protocol", graph_seed, workload_seed)
    return {
        "engine_series": engine_series,
        "protocol_series": protocol_series,
        "engine_nodes": ENGINE_NODES,
        "engine_changes": ENGINE_CHANGES,
        "engine_batch": ENGINE_BATCH,
        "protocol_nodes": PROTOCOL_NODES,
        "protocol_changes": PROTOCOL_CHANGES,
        "min_chunk": MIN_CHUNK,
        "cpus": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "master_seed": master_seed,
    }


def _payload(results: Dict) -> Dict:
    return {key: results[key] for key in (
        "engine_series", "protocol_series", "engine_nodes", "engine_changes",
        "engine_batch", "protocol_nodes", "protocol_changes", "min_chunk",
        "cpus", "master_seed", "python",
    )}


def _series_rows(series: List[Dict]) -> List[List]:
    return [
        [
            point["workers"] or "serial",
            f"{point['changes_per_sec']:.0f}",
            f"{point['elapsed_s']:.2f}",
            point["pool_tasks"],
            f"{point.get('speedup', 1.0):.2f}x",
        ]
        for point in series
    ]


def test_a7_parallel_scaling(benchmark):
    results = run_once(benchmark, run_experiment)
    cpus = results["cpus"]
    emit_table(
        f"A7a: batched repair wave, n={ENGINE_NODES}, {ENGINE_CHANGES} changes "
        f"(batch={ENGINE_BATCH}, min_chunk={MIN_CHUNK}, {cpus} cpu(s))",
        ["workers", "changes/sec", "wall s", "pool dispatches", "speedup vs serial"],
        _series_rows(results["engine_series"]),
    )
    emit_table(
        f"A7b: buffered protocol rounds, n={PROTOCOL_NODES}, "
        f"{PROTOCOL_CHANGES} changes (min_chunk={MIN_CHUNK}, {cpus} cpu(s))",
        ["workers", "changes/sec", "wall s", "pool dispatches", "speedup vs serial"],
        _series_rows(results["protocol_series"]),
    )
    engine_speedup = results["engine_series"][-1]["speedup"]
    protocol_speedup = results["protocol_series"][-1]["speedup"]
    emit(
        "A7: shared-memory parallel evaluation",
        [
            {
                "row": f"repair-wave wall-clock at {WORKER_COUNTS[-1]} workers",
                "paper": f">= {MIN_SPEEDUP_AT_MAX_WORKERS}x of serial "
                f"(overhead floor; {cpus} cpu(s))",
                "measured": f"{engine_speedup:.2f}x",
                "verdict": "pass"
                if engine_speedup >= MIN_SPEEDUP_AT_MAX_WORKERS
                else "CHECK",
            },
            {
                "row": f"protocol-round wall-clock at {WORKER_COUNTS[-1]} workers",
                "paper": f">= {MIN_SPEEDUP_AT_MAX_WORKERS}x of serial",
                "measured": f"{protocol_speedup:.2f}x",
                "verdict": "pass"
                if protocol_speedup >= MIN_SPEEDUP_AT_MAX_WORKERS
                else "CHECK",
            },
            {
                "row": "pooled final MIS == serial final MIS, both runners",
                "paper": "bit-identical (differential suites)",
                "measured": "exact (asserted)",
                "verdict": "pass",
            },
        ],
    )
    emit_json("a7_parallel", _payload(results))
    assert engine_speedup >= MIN_SPEEDUP_AT_MAX_WORKERS
    assert protocol_speedup >= MIN_SPEEDUP_AT_MAX_WORKERS


if __name__ == "__main__":
    outcome = run_experiment()
    emit_json("a7_parallel", _payload(outcome))
    for point in outcome["engine_series"]:
        print("engine:", point)
    for point in outcome["protocol_series"]:
        print("protocol:", point)
