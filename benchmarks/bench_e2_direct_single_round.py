"""E2 -- Corollary 6: the direct implementation needs one adjustment and one
round per change in expectation, in the synchronous AND asynchronous models.

Paper claim: a direct distributed implementation of the template has, in
expectation, a single adjustment and a single round, both synchronously and
asynchronously (where "round" is the longest communication path).

Reproduction: run the direct synchronous protocol and the asynchronous
event-driven engine (with random and adversarial delay schedulers) over the
same change sequences and report the mean adjustments, rounds and causal
depth.
"""

from __future__ import annotations

from typing import Dict

from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.scheduler import create_scheduler
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import mixed_churn_sequence

from harness import emit, run_once

NUM_NODES = 50
CHANGES = 120
SEEDS = range(3)


def run_experiment() -> Dict:
    sync_rounds, sync_adjustments = [], []
    async_random_depth, async_adversarial_depth, async_adjustments = [], [], []
    for seed in SEEDS:
        graph = erdos_renyi_graph(NUM_NODES, 3.0 / NUM_NODES, seed=seed)
        changes = mixed_churn_sequence(graph, CHANGES, seed=seed + 10)

        synchronous = DirectMISNetwork(seed=seed + 20, initial_graph=graph)
        for record in synchronous.apply_sequence(changes):
            sync_rounds.append(record.rounds)
            sync_adjustments.append(record.adjustments)
        synchronous.verify()

        asynchronous = AsyncDirectMISNetwork(
            seed=seed + 20,
            initial_graph=graph,
            scheduler=create_scheduler("random", seed=seed + 30),
        )
        for record in asynchronous.apply_sequence(changes):
            async_random_depth.append(record.async_causal_depth)
            async_adjustments.append(record.adjustments)
        asynchronous.verify()

        adversarial = AsyncDirectMISNetwork(
            seed=seed + 20,
            initial_graph=graph,
            scheduler=create_scheduler("adversarial", seed=seed + 40),
        )
        for record in adversarial.apply_sequence(changes):
            async_adversarial_depth.append(record.async_causal_depth)
        adversarial.verify()

    def average(values):
        return sum(values) / len(values) if values else 0.0

    return {
        "sync_mean_rounds": average(sync_rounds),
        "sync_mean_adjustments": average(sync_adjustments),
        "async_mean_adjustments": average(async_adjustments),
        "async_random_mean_depth": average(async_random_depth),
        "async_adversarial_mean_depth": average(async_adversarial_depth),
        "sync_max_rounds": max(sync_rounds) if sync_rounds else 0,
    }


def test_e2_direct_single_round_and_adjustment(benchmark):
    result = run_once(benchmark, run_experiment)

    emit(
        "E2 / Corollary 6 -- direct implementation, synchronous and asynchronous",
        [
            {
                "row": "sync: mean adjustments per change",
                "paper": "1 in expectation",
                "measured": result["sync_mean_adjustments"],
                "verdict": "pass" if result["sync_mean_adjustments"] <= 1.15 else "CHECK",
            },
            {
                "row": "sync: mean rounds per change",
                "paper": "1 in expectation",
                "measured": result["sync_mean_rounds"],
                "verdict": "pass" if result["sync_mean_rounds"] <= 2.0 else "CHECK",
            },
            {
                "row": "async: mean adjustments per change",
                "paper": "1 in expectation",
                "measured": result["async_mean_adjustments"],
                "verdict": "pass" if result["async_mean_adjustments"] <= 1.15 else "CHECK",
            },
            {
                "row": "async (random delays): mean causal depth",
                "paper": "1 in expectation",
                "measured": result["async_random_mean_depth"],
                "verdict": "pass" if result["async_random_mean_depth"] <= 2.0 else "CHECK",
            },
            {
                "row": "async (adversarial delays): mean causal depth",
                "paper": "1 in expectation",
                "measured": result["async_adversarial_mean_depth"],
                "verdict": "pass" if result["async_adversarial_mean_depth"] <= 2.0 else "CHECK",
            },
        ],
    )

    assert result["sync_mean_adjustments"] <= 1.15
    assert result["async_mean_adjustments"] <= 1.15
    assert result["sync_mean_rounds"] <= 2.5
    assert result["async_random_mean_depth"] <= 2.5
    assert result["async_adversarial_mean_depth"] <= 2.5
