"""A3 (extension) -- sequential dynamic update time (Section 6 discussion).

Paper discussion (Section 6): the template can be implemented in the
*sequential* dynamic-graph-algorithms setting; a direct implementation pays
O(Delta) per influenced node for the update because the neighbors of every
node in the analyzed set must be accessed, even though only E[|S|] <= 1 nodes
change output.  (Designing a cheaper sequential dynamic MIS is listed as
future work.)

Reproduction: meter the sequential update *work* (neighbor inspections) of
the template engine per change, sweep the expected degree of the graph, and
compare against the Theta(n + m) work of recomputing the greedy MIS from
scratch.  The shape to check: the per-change update work grows with the
average degree (the O(Delta) factor) but stays far below the recompute work,
and the number of *output changes* stays ~1 regardless.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.estimators import mean
from repro.core.dynamic_mis import DynamicMIS
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.sequences import edge_churn_sequence

from harness import emit, emit_table, run_once

NUM_NODES = 60
AVERAGE_DEGREES = (2, 4, 8, 16)
CHANGES = 80
SEEDS = range(3)


def run_experiment() -> Dict:
    rows: List[List] = []
    work_series: List[float] = []
    for degree in AVERAGE_DEGREES:
        works, adjustments, recompute_work = [], [], []
        for seed in SEEDS:
            graph = erdos_renyi_graph(NUM_NODES, degree / (NUM_NODES - 1), seed=seed)
            maintainer = DynamicMIS(seed=seed + 3, initial_graph=graph)
            for change in edge_churn_sequence(graph, CHANGES, seed=seed + 9):
                report = maintainer.apply(change)
                works.append(report.update_work)
                adjustments.append(report.num_adjustments)
            recompute_work.append(maintainer.graph.num_nodes() + maintainer.graph.num_edges())
        rows.append(
            [
                degree,
                mean(works),
                mean(adjustments),
                mean(recompute_work),
            ]
        )
        work_series.append(mean(works))
    return {"rows": rows, "work_series": work_series}


def test_a3_sequential_update_work(benchmark):
    result = run_once(benchmark, run_experiment)

    emit_table(
        "A3 -- sequential update work per change vs average degree",
        [
            "average degree",
            "mean update work (neighbor inspections)",
            "mean output adjustments",
            "recompute-from-scratch work (n + m)",
        ],
        result["rows"],
    )
    emit(
        "A3 verdicts",
        [
            {
                "row": "update work grows with Delta",
                "paper": "O(Delta) per influenced node (Section 6)",
                "measured": result["work_series"][-1] / max(result["work_series"][0], 0.1),
                "verdict": "pass"
                if result["work_series"][-1] > result["work_series"][0]
                else "CHECK",
                "detail": "ratio between densest and sparsest setting",
            },
            {
                "row": "update work vs recompute work at highest degree",
                "paper": "far below Theta(n + m)",
                "measured": result["rows"][-1][1] / result["rows"][-1][3],
                "verdict": "pass" if result["rows"][-1][1] < result["rows"][-1][3] else "CHECK",
            },
        ],
    )

    # Output adjustments stay ~1 regardless of density.
    for _, work, adjustments, recompute in result["rows"]:
        assert adjustments <= 1.2
        assert work < recompute
    # The Delta dependence is visible: denser graphs cost more work per change.
    assert result["work_series"][-1] > result["work_series"][0]
