"""Scenario API tour: one spec, many backends, checkpoint/resume.

Run with::

    python examples/scenario_session.py

The script declares one experiment as a :class:`repro.scenario.ScenarioSpec`
(graph family + workload + backend + sinks), round-trips it through JSON
(the exact text ``repro-mis run --scenario`` consumes), streams it through a
:class:`~repro.scenario.session.Session` on every engine backend, then
interrupts a run halfway, resumes it from the checkpoint and shows that the
resumed run lands on the identical outputs and statistics.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.scenario import (
    BackendSpec,
    GraphSpec,
    ScenarioSpec,
    Session,
    WorkloadSpec,
    create_sink,
    run_scenario_grid,
)


def main() -> None:
    # 1. One declarative experiment: sparse random graph, 200 mixed changes
    #    (all of the paper's Section 2 change types), sequential maintainer.
    spec = ScenarioSpec(
        name="scenario-tour",
        seed=42,
        graph=GraphSpec(family="erdos_renyi", nodes=60, seed=7),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=200, seed=11),
        backend=BackendSpec(runner="sequential", engine="template"),
    )

    # 2. The spec IS the experiment: it serializes to the JSON the CLI runs.
    text = spec.to_json()
    assert ScenarioSpec.from_json(text) == spec
    print(f"spec round-trips through {len(text)} bytes of JSON "
          "(save it and replay with: repro-mis run --scenario spec.json)")

    # 3. Same scenario, every backend: a spec x backend grid.
    results = run_scenario_grid(
        spec,
        [
            ("template", {"engine": "template"}),
            ("fast", {"engine": "fast"}),
            ("protocol", {"runner": "protocol", "protocol": "buffered", "network": "fast"}),
        ],
    )
    print()
    print(
        format_table(
            ["backend", "changes", "final MIS", "per-change us"],
            [
                [r.backend, r.num_changes, r.final_mis_size, r.per_change_us]
                for r in results
            ],
            title="Same scenario across backends (identical workload by construction)",
            float_format=".1f",
        )
    )
    assert len({r.final_mis_size for r in results}) == 1

    # 4. Checkpoint/resume: interrupt halfway, resume in a fresh session --
    #    on a different engine backend, even -- and land on identical outputs.
    uninterrupted = Session(spec)
    full = uninterrupted.run()

    interrupted = Session(spec)
    for _ in range(100):
        interrupted.step()
    checkpoint = interrupted.checkpoint()

    sink = create_sink("summary")
    resumed = Session.resume(checkpoint, observers=(sink,), engine="fast")
    resumed_result = resumed.run()
    assert resumed.states() == uninterrupted.states()
    assert resumed_result.summary == full.summary
    print()
    print(
        format_table(
            ["check", "value"],
            [
                ["changes before the checkpoint", checkpoint.position],
                ["changes replayed after resume", sink.num_changes],
                ["resumed == uninterrupted outputs", "yes (asserted)"],
                ["resumed engine backend", "fast (checkpoint taken on template)"],
            ],
            title="Checkpoint/resume is exact",
        )
    )


if __name__ == "__main__":
    main()
