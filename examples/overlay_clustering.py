"""Scenario: correlation clustering of a churning peer-to-peer overlay.

Run with::

    python examples/overlay_clustering.py

A peer-to-peer overlay starts as a set of well-connected communities.  Peers
continuously join, leave and rewire.  The operator wants to keep the overlay
partitioned into clusters for routing/replication, with as few
"disagreements" as possible (links across clusters, missing links within
clusters) -- this is exactly correlation clustering, and the paper's dynamic
MIS gives a 3-approximation that updates with a single expected adjustment
per change and cannot be biased by the order in which peers joined.

The script compares the maintained clustering against the planted communities
and against trivial baselines as churn accumulates.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.clustering.correlation import (
    clustering_cost,
    connected_component_clustering,
    singleton_clustering,
)
from repro.clustering.dynamic_clustering import DynamicCorrelationClustering
from repro.graph.generators import planted_clusters_graph
from repro.workloads.sequences import mixed_churn_sequence


def main() -> None:
    # 1. The overlay starts with four planted communities of 10 peers each.
    graph, planted = planted_clusters_graph(
        [10, 10, 10, 10], intra_probability=0.85, inter_probability=0.03, seed=5
    )
    planted_labels = {peer: index for index, community in enumerate(planted) for peer in community}
    print(
        f"overlay: {graph.num_nodes()} peers, {graph.num_edges()} links, "
        f"4 planted communities"
    )

    # 2. Maintain the clustering while the overlay churns.
    clusterer = DynamicCorrelationClustering(seed=3, initial_graph=graph)
    churn = mixed_churn_sequence(graph, num_changes=200, seed=9)

    checkpoints = [0, 50, 100, 150, 200]
    rows = []
    applied = 0
    for index, change in enumerate([None] + churn):
        if change is not None:
            clusterer.apply(change)
            applied += 1
        if applied in checkpoints and (change is not None or applied == 0):
            current = clusterer.graph
            ours = clusterer.cost()
            surviving_planted = {
                peer: planted_labels.get(peer, -1) for peer in current.nodes()
            }
            rows.append(
                [
                    applied,
                    current.num_nodes(),
                    current.num_edges(),
                    clusterer.num_clusters(),
                    ours,
                    clustering_cost(current, surviving_planted),
                    clustering_cost(current, singleton_clustering(current)),
                    clustering_cost(current, connected_component_clustering(current)),
                ]
            )
            checkpoints.remove(applied)

    print()
    print(
        format_table(
            [
                "changes",
                "peers",
                "links",
                "clusters",
                "ours (cost)",
                "planted (cost)",
                "singletons (cost)",
                "components (cost)",
            ],
            rows,
            title="Correlation-clustering disagreement cost as the overlay churns",
            float_format=".1f",
        )
    )

    stats = clusterer.mis_maintainer.statistics
    print()
    print(
        f"per-change maintenance cost: mean adjustments "
        f"{stats.mean_adjustments():.3f} (paper: <= 1 in expectation), "
        f"worst {stats.max_adjustments()}"
    )


if __name__ == "__main__":
    main()
