"""Service layer tour: a sharded daemon, many sessions, eviction, resume.

Run with::

    python examples/service_client.py

The script starts an in-process ``repro-mis serve`` daemon (real shard
worker processes, real socket on an ephemeral localhost port) with a
deliberately tiny live-session budget, drives a handful of dynamic-MIS
sessions through the :class:`~repro.service.client.ServiceClient`, watches
idle sessions get evicted to JSON spool checkpoints and transparently
rehydrated, then stops the daemon (the SIGTERM drain path), restarts it on
the same spool directory and shows every session resuming exactly where it
left off.  Outside a script you would run the daemon standalone::

    repro-mis serve --spool /tmp/mis-spool --shards 2 --bind tcp:127.0.0.1:7411
    repro-mis client ping --connect tcp:127.0.0.1:7411
"""

from __future__ import annotations

import tempfile

from repro.analysis.reporting import format_table
from repro.scenario import BackendSpec, GraphSpec, ScenarioSpec, WorkloadSpec
from repro.service import MISService, ServiceClient, ServiceConfig


def _spec(name: str, seed: int, runner: str) -> ScenarioSpec:
    backend = (
        BackendSpec(runner="sequential", engine="fast")
        if runner == "sequential"
        else BackendSpec(runner="protocol", protocol="buffered", network="fast")
    )
    return ScenarioSpec(
        name=name,
        seed=seed,
        graph=GraphSpec(family="erdos_renyi", nodes=24, seed=seed),
        workload=WorkloadSpec(kind="mixed_churn", num_changes=40, seed=seed + 1),
        backend=backend,
    )


def main() -> None:
    spool = tempfile.mkdtemp(prefix="repro-mis-spool-")
    config = ServiceConfig(spool_dir=spool, shards=2, max_live=2)
    sessions = [
        ("city-a", _spec("city-a", seed=1, runner="sequential")),
        ("city-b", _spec("city-b", seed=2, runner="protocol")),
        ("city-c", _spec("city-c", seed=3, runner="sequential")),
        ("city-d", _spec("city-d", seed=4, runner="protocol")),
        ("city-e", _spec("city-e", seed=5, runner="sequential")),
    ]

    # 1. First daemon life: create five sessions on two shards with only two
    #    live slots per shard -- eviction to the spool is part of normal
    #    operation, not an error path.
    with MISService(config) as service:
        print(f"daemon listening on {service.address} "
              f"({service.num_shards} shard workers, spool={spool})")
        with ServiceClient(service.address) as client:
            for name, spec in sessions:
                client.create(name, spec.to_dict())
            for name, _ in sessions:
                client.apply_batch(name, steps=15)
            rows = [
                [row["session"], "live" if row["live"] else "evicted",
                 row.get("position", 15)]
                for row in client.list_sessions()
            ]
            print()
            print(format_table(
                ["session", "state", "changes applied"],
                rows,
                title="Mid-run: every session at change 15, the idle ones "
                "evicted to spool checkpoints",
            ))
            stats = client.stats()
            print(f"evictions so far: {stats['evictions']}, "
                  f"transparent rehydrations: {stats['rehydrations']}")
        drained = service.stop()
    print(f"daemon stopped; drained {len(drained)} live session(s) to the spool")

    # 2. Second daemon life, same spool: every session resumes exactly at
    #    change 15 and runs to completion -- identical to a never-evicted run.
    reference = {}
    for name, spec in sessions:
        from repro.scenario import Session

        session = Session(spec)
        session.run(verify=False)
        reference[name] = session.states()

    with MISService(config) as service, ServiceClient(service.address) as client:
        rows = []
        for name, spec in sessions:
            resumed_at = client.query(name)["position"]
            final = client.apply_batch(name, steps=999)
            states = client.query(name, "states")["states"]
            expected = sorted(([node, flag] for node, flag in reference[name].items()),
                              key=repr)
            assert states == expected, name
            rows.append([name, resumed_at, final["position"], "yes (asserted)"])
        print()
        print(format_table(
            ["session", "resumed at", "final position", "matches never-evicted run"],
            rows,
            title="After restart: resume is exact",
        ))
        client.shutdown()


if __name__ == "__main__":
    main()
