"""Scenario: history-independent matching and coloring via the MIS reductions.

Run with::

    python examples/matching_and_coloring.py

Two classic by-products of a dynamic MIS (paper, Section 5):

* **Maximal matching** -- run the algorithm on the line graph L(G).  The
  example models a switch fabric that must keep a maximal set of
  non-conflicting links active while ports and cables are added and removed.
* **(Delta+1)-coloring** -- run the algorithm on the clique-blowup of G.  The
  example models frequency assignment in an access-point graph that keeps
  changing.

Both outputs are *history independent*: the distribution of the matching /
coloring depends only on the current topology, so an adversary controlling
the order of reconfigurations cannot bias which links or frequencies win.
The script demonstrates this by rebuilding the same final topology through
three different histories and checking the outputs coincide.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.coloring.dynamic_coloring import DynamicColoring
from repro.coloring.greedy_coloring import num_colors_used
from repro.graph.generators import near_regular_graph
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.workloads.sequences import alternative_histories, edge_churn_sequence


def main() -> None:
    fabric = near_regular_graph(num_nodes=24, degree=4, seed=13)
    print(f"switch fabric: {fabric.num_nodes()} ports, {fabric.num_edges()} cables")

    # ------------------------------------------------------------------
    # Maximal matching under cable churn.
    # ------------------------------------------------------------------
    matcher = DynamicMaximalMatching(seed=5, initial_graph=fabric)
    churn = edge_churn_sequence(fabric, num_changes=80, seed=7)
    adjustments = []
    for change in churn:
        reports = matcher.apply(change)
        adjustments.append(sum(report.num_adjustments for report in reports))
    matcher.verify()
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["active (matched) links", matcher.matching_size()],
                ["ports covered", 2 * matcher.matching_size()],
                [
                    "mean matching adjustments per cable change",
                    sum(adjustments) / len(adjustments),
                ],
                ["max matching adjustments for one cable change", max(adjustments)],
            ],
            title="History-independent maximal matching under cable churn",
            float_format=".3f",
        )
    )

    # ------------------------------------------------------------------
    # (Delta+1)-coloring of an access-point graph.
    # ------------------------------------------------------------------
    access_points = near_regular_graph(num_nodes=18, degree=3, seed=29)
    palette = 18  # a safe Delta+1 bound for the churned graph
    colorer = DynamicColoring(num_colors=palette, seed=8, initial_graph=access_points)
    for change in edge_churn_sequence(access_points, num_changes=40, seed=31):
        colorer.apply(change)
    colorer.verify()
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["access points", colorer.graph.num_nodes()],
                ["interference edges", colorer.graph.num_edges()],
                ["frequencies available (palette)", palette],
                ["frequencies actually used", num_colors_used(colorer.colors())],
                ["max interference degree", colorer.graph.max_degree()],
            ],
            title="History-independent frequency assignment (Delta+1 coloring)",
        )
    )

    # ------------------------------------------------------------------
    # History independence: three different reconfiguration histories of the
    # same final fabric produce the same matching (per seed).
    # ------------------------------------------------------------------
    histories = alternative_histories(fabric, num_histories=3, seed=41)
    matchings = set()
    for history in histories:
        replayed = DynamicMaximalMatching(seed=99)
        for change in history:
            replayed.apply(change)
        matchings.add(frozenset(replayed.matching()))
    print()
    print(
        f"history independence: {len(histories)} different histories of the same fabric "
        f"produced {len(matchings)} distinct matching(s) (expected: 1)"
    )


if __name__ == "__main__":
    main()
