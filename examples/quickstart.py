"""Quickstart: maintain a maximal independent set under topology changes.

Run with::

    python examples/quickstart.py

The script builds a random network, installs the dynamic MIS maintainer,
applies a mixed stream of edge/node insertions and deletions, and prints the
per-change cost statistics that the paper bounds (expected one adjustment per
change), together with a comparison against recomputing from scratch.
"""

from __future__ import annotations

from repro import DynamicMIS
from repro.analysis.reporting import format_table
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.graph.generators import erdos_renyi_graph
from repro.graph.validation import check_maximal_independent_set
from repro.workloads.sequences import mixed_churn_sequence


def main() -> None:
    # 1. A starting topology: a sparse random network on 60 nodes.
    graph = erdos_renyi_graph(num_nodes=60, edge_probability=0.06, seed=7)
    print(f"initial graph: {graph.num_nodes()} nodes, {graph.num_edges()} edges")

    # 2. The dynamic MIS maintainer (the paper's algorithm, sequential view).
    maintainer = DynamicMIS(seed=42, initial_graph=graph)
    print(f"initial MIS size: {len(maintainer.mis())}")

    # 3. A fully dynamic workload: 300 mixed topology changes.
    changes = mixed_churn_sequence(graph, num_changes=300, seed=11)
    for change in changes:
        maintainer.apply(change)
    maintainer.verify()
    check_maximal_independent_set(maintainer.graph, maintainer.mis())

    stats = maintainer.statistics
    print()
    print(
        format_table(
            ["quantity", "paper claim", "measured"],
            [
                ["changes applied", "-", stats.num_changes],
                ["mean influenced set |S|", "<= 1 (Theorem 1)", stats.mean_influenced_size()],
                ["mean adjustments per change", "<= 1", stats.mean_adjustments()],
                [
                    "mean propagation depth (rounds)",
                    "1 in expectation",
                    stats.mean_propagation_depth(),
                ],
                [
                    "worst single-change adjustments",
                    "rare, unbounded only w.p. 1/k",
                    stats.max_adjustments(),
                ],
                ["final MIS size", "-", len(maintainer.mis())],
            ],
            title="Dynamic MIS under 300 topology changes",
        )
    )

    # 4. Contrast with the standard approach: rerun a static algorithm (Luby)
    #    after every change.
    baseline = StaticRecomputeDynamicMIS("luby", seed=42, initial_graph=graph)
    baseline.apply_sequence(changes)
    print()
    print(
        format_table(
            ["algorithm", "mean rounds / change", "mean broadcasts / change"],
            [
                [
                    "dynamic MIS (this paper)",
                    stats.mean_propagation_depth(),
                    stats.mean_influenced_size(),
                ],
                [
                    "Luby recompute baseline",
                    baseline.metrics.mean("rounds"),
                    baseline.metrics.mean("broadcasts"),
                ],
            ],
            title="Why dynamic beats recompute",
        )
    )


if __name__ == "__main__":
    main()
