"""Scenario: leader scheduling in an unreliable sensor network.

Run with::

    python examples/sensor_network_scheduling.py

A field of sensors communicates over a geometric radio graph.  An MIS of the
communication graph is the classic choice of "cluster heads": no two heads
interfere and every sensor has a head in range.  Sensors crash abruptly, are
redeployed, wake up from sleep mode (the paper's "unmuting"), and links
appear/disappear as the radio environment changes.

This example runs the paper's *constant-broadcast* distributed protocol
(Algorithm 2) on a simulated synchronous radio network and reports, per type
of event, how many rounds and broadcasts the repair took -- the quantities
bounded by Theorem 7.  It then shows the same workload handled by re-running
Luby's static algorithm after every event, which is what the paper improves
on.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import format_table
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.graph.generators import random_geometric_graph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
)


def build_event_stream(network, num_events: int, seed: int):
    """Generate a sensor-network event stream that is valid for the evolving graph."""
    rng = random.Random(seed)
    events = []
    working = network.graph.copy()
    asleep = []
    fresh = 0
    for _ in range(num_events):
        nodes = sorted(working.nodes(), key=repr)
        roll = rng.random()
        if roll < 0.25 and len(nodes) > 4:
            victim = rng.choice(nodes)
            events.append(NodeDeletion(victim, graceful=rng.random() < 0.4))
            neighbors = sorted(working.neighbors(victim), key=repr)
            asleep.append((victim, tuple(neighbors)))
            working.remove_node(victim)
        elif roll < 0.40 and asleep:
            sensor, old_neighbors = asleep.pop(0)
            alive = tuple(v for v in old_neighbors if working.has_node(v))
            events.append(NodeUnmuting(sensor, alive))
            working.add_node_with_edges(sensor, alive)
        elif roll < 0.55:
            fresh += 1
            name = f"sensor{fresh}"
            alive = tuple(v for v in nodes if rng.random() < 0.1)
            events.append(NodeInsertion(name, alive))
            working.add_node_with_edges(name, alive)
        elif roll < 0.8 and working.num_edges() > 0:
            u, v = rng.choice(working.edges())
            events.append(EdgeDeletion(u, v, graceful=rng.random() < 0.5))
            working.remove_edge(u, v)
        else:
            for _ in range(50):
                u, v = rng.choice(nodes), rng.choice(nodes)
                if u != v and not working.has_edge(u, v):
                    events.append(EdgeInsertion(u, v))
                    working.add_edge(u, v)
                    break
    return events


def main() -> None:
    field = random_geometric_graph(num_nodes=50, radius=0.25, seed=3)
    network = BufferedMISNetwork(seed=17, initial_graph=field)
    print(
        f"sensor field: {field.num_nodes()} sensors, {field.num_edges()} radio links, "
        f"{len(network.mis())} cluster heads initially"
    )

    events = build_event_stream(network, num_events=150, seed=23)
    for event in events:
        network.apply(event)
    network.verify()

    metrics = network.metrics
    rows = []
    for kind in metrics.change_kinds():
        rows.append(
            [
                kind,
                metrics.mean("adjustments", kind),
                metrics.mean("rounds", kind),
                metrics.mean("broadcasts", kind),
                metrics.maximum("broadcasts", kind),
            ]
        )
    print()
    print(
        format_table(
            ["event type", "mean adjustments", "mean rounds", "mean broadcasts", "max broadcasts"],
            rows,
            title="Algorithm 2: repair cost per sensor-network event (Theorem 7)",
            float_format=".3f",
        )
    )

    baseline = StaticRecomputeDynamicMIS("luby", seed=17, initial_graph=field)
    baseline.apply_sequence(events)
    print()
    print(
        format_table(
            ["algorithm", "mean rounds / event", "mean broadcasts / event"],
            [
                ["Algorithm 2 (this paper)", metrics.mean("rounds"), metrics.mean("broadcasts")],
                [
                    "Luby recompute after every event",
                    baseline.metrics.mean("rounds"),
                    baseline.metrics.mean("broadcasts"),
                ],
            ],
            title="Total repair cost comparison",
            float_format=".2f",
        )
    )
    print()
    print(f"final cluster heads: {len(network.mis())} of {network.graph.num_nodes()} sensors")


if __name__ == "__main__":
    main()
