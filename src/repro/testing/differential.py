"""Differential conformance harness for dynamic-MIS engine backends.

The fast array-backed engine is only allowed to exist because it is
*bit-identical* in output to the paper-shaped template engine.  This module
makes that claim machine-checked: :func:`replay_differential` drives two (or
more) backends through the same seeded change sequence and asserts, after
every single change,

* identical MIS sets,
* identical per-change adjustment counts, influenced-set sizes and the other
  :class:`~repro.core.dynamic_mis.MaintainerStatistics` counters,
* identical influenced-set *membership*, and
* identical correlation-clustering views.

:func:`conformance_workload` generates the replayed sequences: mixed
edge/node churn interleaved with adversarial deletion bursts that always
target the *current* MIS (via
:class:`repro.workloads.adversary.AdaptiveAdversary`), which is exactly the
workload that maximizes influenced-set propagation and free-list churn.  The
bursts are adaptive against the same seed the replay uses, so they hit the
replayed engines' actual MIS nodes, including delete-then-reinsert of the
same label.

Both entry points drive **any registered engine pair** through the public
backend registry (:mod:`repro.core.engine_api`): pass registered names in
``engines=(...)`` and the harness builds each backend with
:class:`~repro.core.dynamic_mis.DynamicMIS` -- validating a new
(third-party, compiled) backend requires no edits anywhere in core.
:func:`replay_batch_differential` extends the check to batch semantics
(:meth:`~repro.core.engine_api.MISEngine.apply_batch`): per-batch equality of
MIS sets, influenced sets and every cost counter, plus -- via the engines'
``snapshot()``/``restore()`` pair -- agreement between the batched and the
one-at-a-time application of every single batch.

Both replays also accept a declarative scenario
(:class:`repro.scenario.spec.ScenarioSpec`) in place of an explicit
``(initial_graph, changes)`` pair: pass ``scenario=spec`` and the harness
materializes the workload and takes the algorithm seed from the spec, so a
conformance run is "same scenario, two backends" *by construction* -- the
exact same spec a benchmark or the CLI ran can be handed to the harness
unchanged.

Used by ``tests/conformance/``; importable by anyone adding a new backend
(Rust/Cython slots are ROADMAP open items).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import BATCH_REPORT_FIELDS
from repro.core.fast_engine import FastEngine
from repro.core.rng import normalize_seed, spawn_seeds
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.workloads.adversary import AdaptiveAdversary
from repro.workloads.changes import TopologyChange
from repro.workloads.sequences import mixed_churn_sequence

Node = Hashable

REPORT_FIELDS = (
    "change_type",
    "num_adjustments",
    "influenced_size",
    "num_levels",
    "state_flips",
    "update_work",
)


def resolve_scenario_inputs(initial_graph, changes, seed, scenario):
    """Shared ``scenario=`` handling of the replay entry points.

    With ``scenario`` given, the explicit ``initial_graph``/``changes``/
    ``seed`` must be left unset (they would be silently overridden
    otherwise); the workload is materialized from the spec and the
    algorithm seed is the spec's ``seed``.  Returns the resolved
    ``(initial_graph, changes, seed)`` triple.
    """
    if scenario is None:
        return initial_graph, changes, (0 if seed is None else seed)
    if initial_graph is not None or (changes is not None and len(changes)) or seed is not None:
        raise ValueError(
            "pass either scenario= or explicit initial_graph/changes/seed, not both"
        )
    graph, materialized = scenario.materialize()
    return graph, materialized, scenario.seed


class ConformanceMismatch(AssertionError):
    """Two engine backends disagreed while replaying the same sequence."""

    def __init__(self, step: int, change: TopologyChange, detail: str) -> None:
        super().__init__(
            f"engines diverged at step {step} applying {change!r}: {detail}"
        )
        self.step = step
        self.change = change
        self.detail = detail


@dataclass
class DifferentialResult:
    """Summary of one successful differential replay."""

    engines: Tuple[str, ...]
    num_changes: int
    total_adjustments: int
    max_influenced_size: int
    final_mis_size: int
    final_num_nodes: int


def replay_differential(
    initial_graph: Optional[DynamicGraph] = None,
    changes: Optional[Sequence[TopologyChange]] = None,
    seed: Optional[int] = None,
    engines: Tuple[str, ...] = ("template", "fast"),
    check_clustering: bool = True,
    check_influenced_membership: bool = True,
    verify_every: int = 25,
    scenario=None,
) -> DifferentialResult:
    """Replay ``changes`` through every backend and assert stepwise equality.

    Each backend gets its own maintainer built from the same ``seed`` and a
    copy of ``initial_graph``, so their random orders ``pi`` coincide.  Raises
    :class:`ConformanceMismatch` at the first divergence; returns a
    :class:`DifferentialResult` summary when all backends agree everywhere.

    Instead of explicit ``initial_graph``/``changes``/``seed``, pass
    ``scenario=`` (a :class:`repro.scenario.spec.ScenarioSpec`) to replay a
    declarative scenario -- same workload and seed on every backend by
    construction.

    ``verify_every`` additionally re-checks the MIS invariant inside every
    backend each that-many steps (0 disables; the final state is always
    verified).
    """
    initial_graph, changes, seed = resolve_scenario_inputs(
        initial_graph, changes, seed, scenario
    )
    changes = list(changes or ())
    seed = normalize_seed(seed)
    maintainers = [
        DynamicMIS(seed=seed, initial_graph=initial_graph, engine=name) for name in engines
    ]
    reference = maintainers[0]
    baseline_mis = reference.mis()
    for name, maintainer in zip(engines[1:], maintainers[1:]):
        if maintainer.mis() != baseline_mis:
            raise ConformanceMismatch(
                -1, None, f"initial MIS differs between {engines[0]} and {name}"
            )

    total_adjustments = 0
    max_influenced = 0
    for step, change in enumerate(changes):
        reports = [maintainer.apply(change) for maintainer in maintainers]
        head = reports[0]
        total_adjustments += head.num_adjustments
        max_influenced = max(max_influenced, head.influenced_size)
        expected_mis = reference.mis()
        for name, maintainer, report in zip(engines[1:], maintainers[1:], reports[1:]):
            for field in REPORT_FIELDS:
                lhs, rhs = getattr(head, field), getattr(report, field)
                if lhs != rhs:
                    raise ConformanceMismatch(
                        step,
                        change,
                        f"{field}: {engines[0]}={lhs!r} vs {name}={rhs!r}",
                    )
            if check_influenced_membership and head.influenced_set != report.influenced_set:
                raise ConformanceMismatch(
                    step,
                    change,
                    f"influenced set: {engines[0]}={sorted(head.influenced_set, key=repr)} "
                    f"vs {name}={sorted(report.influenced_set, key=repr)}",
                )
            actual_mis = maintainer.mis()
            if actual_mis != expected_mis:
                raise ConformanceMismatch(
                    step,
                    change,
                    f"MIS: only-in-{engines[0]}={sorted(expected_mis - actual_mis, key=repr)} "
                    f"only-in-{name}={sorted(actual_mis - expected_mis, key=repr)}",
                )
        if check_clustering:
            expected_clusters = reference.clustering()
            for name, maintainer in zip(engines[1:], maintainers[1:]):
                actual_clusters = maintainer.clustering()
                if actual_clusters != expected_clusters:
                    diff = {
                        node: (expected_clusters.get(node), actual_clusters.get(node))
                        for node in set(expected_clusters) | set(actual_clusters)
                        if expected_clusters.get(node) != actual_clusters.get(node)
                    }
                    raise ConformanceMismatch(
                        step, change, f"clustering ({engines[0]} vs {name}): {diff}"
                    )
        if verify_every and (step + 1) % verify_every == 0:
            _verify_all(engines, maintainers)

    _verify_all(engines, maintainers)
    return DifferentialResult(
        engines=tuple(engines),
        num_changes=len(changes),
        total_adjustments=total_adjustments,
        max_influenced_size=max_influenced,
        final_mis_size=len(reference.mis()),
        final_num_nodes=reference.graph.num_nodes(),
    )


def _verify_all(engines: Tuple[str, ...], maintainers: List[DynamicMIS]) -> None:
    for name, maintainer in zip(engines, maintainers):
        maintainer.verify()
        engine = maintainer.engine
        if isinstance(engine, FastEngine):
            engine.check_interning_invariants()


# ----------------------------------------------------------------------
# Batched replay
# ----------------------------------------------------------------------
def split_into_batches(
    changes: Sequence[TopologyChange], seed: int = 0, max_batch: int = 8
) -> List[List[TopologyChange]]:
    """Deterministically split ``changes`` into variable-size batches.

    Batch sizes are drawn uniformly from ``1..max_batch`` with the given
    seed, so a replay exercises singleton batches, medium batches and
    everything in between.
    """
    rng = random.Random(normalize_seed(seed))
    batches: List[List[TopologyChange]] = []
    position = 0
    while position < len(changes):
        size = rng.randint(1, max(1, max_batch))
        batches.append(list(changes[position : position + size]))
        position += size
    return batches


def replay_batch_differential(
    initial_graph: Optional[DynamicGraph] = None,
    changes: Optional[Sequence[TopologyChange]] = None,
    seed: Optional[int] = None,
    engines: Tuple[str, ...] = ("template", "fast"),
    max_batch: int = 8,
    check_clustering: bool = True,
    check_against_sequence: bool = True,
    verify_every: int = 5,
    scenario=None,
) -> DifferentialResult:
    """Replay ``changes`` in batches through every backend; assert equality.

    The sequence is deterministically chunked into variable-size batches
    (:func:`split_into_batches` with the same ``seed``), every batch is
    applied through :meth:`DynamicMIS.apply_batch` on every backend, and
    after each batch the harness asserts

    * equality of every :data:`~repro.core.engine_api.BATCH_REPORT_FIELDS`
      counter, the influenced-set membership and the seed-node sets,
    * identical MIS sets (and clustering views with ``check_clustering``),
      and
    * with ``check_against_sequence``, that the *reference* backend reaches
      exactly the same states applying the batch one change at a time --
      checked by rewinding it with the engine ``snapshot()``/``restore()``
      pair, so batched and sequential semantics are machine-tied together.

    Accepts ``scenario=`` in place of explicit inputs, exactly like
    :func:`replay_differential`.

    Raises :class:`ConformanceMismatch` at the first divergence; returns a
    :class:`DifferentialResult` (``num_changes`` counts individual changes).
    """
    initial_graph, changes, seed = resolve_scenario_inputs(
        initial_graph, changes, seed, scenario
    )
    changes = list(changes or ())
    seed = normalize_seed(seed)
    maintainers = [
        DynamicMIS(seed=seed, initial_graph=initial_graph, engine=name) for name in engines
    ]
    reference = maintainers[0]
    baseline_mis = reference.mis()
    for name, maintainer in zip(engines[1:], maintainers[1:]):
        if maintainer.mis() != baseline_mis:
            raise ConformanceMismatch(
                -1, None, f"initial MIS differs between {engines[0]} and {name}"
            )

    batches = split_into_batches(changes, seed=seed, max_batch=max_batch)
    total_adjustments = 0
    max_influenced = 0
    for step, batch in enumerate(batches):
        sequential_states = None
        if check_against_sequence:
            rewind = reference.engine.snapshot()
            for change in batch:
                reference.apply(change)
            sequential_states = reference.states()
            reference.engine.restore(rewind)

        reports = [maintainer.apply_batch(batch) for maintainer in maintainers]
        head = reports[0]
        total_adjustments += head.num_adjustments
        max_influenced = max(max_influenced, head.influenced_size)

        if sequential_states is not None and reference.states() != sequential_states:
            diff = {
                node: (sequential_states.get(node), reference.states().get(node))
                for node in set(sequential_states) | set(reference.states())
                if sequential_states.get(node) != reference.states().get(node)
            }
            raise ConformanceMismatch(
                step,
                batch[0] if batch else None,
                f"{engines[0]} batched states diverge from its own one-at-a-time "
                f"application of the same batch: {diff}",
            )

        expected_mis = reference.mis()
        for name, maintainer, report in zip(engines[1:], maintainers[1:], reports[1:]):
            for field in BATCH_REPORT_FIELDS:
                lhs, rhs = getattr(head, field), getattr(report, field)
                if lhs != rhs:
                    raise ConformanceMismatch(
                        step,
                        batch[0] if batch else None,
                        f"batch {field}: {engines[0]}={lhs!r} vs {name}={rhs!r}",
                    )
            if head.influenced_set != report.influenced_set:
                raise ConformanceMismatch(
                    step,
                    batch[0] if batch else None,
                    f"batch influenced set: "
                    f"{engines[0]}={sorted(head.influenced_set, key=repr)} "
                    f"vs {name}={sorted(report.influenced_set, key=repr)}",
                )
            if head.seed_nodes != report.seed_nodes:
                raise ConformanceMismatch(
                    step,
                    batch[0] if batch else None,
                    f"batch seed nodes: {engines[0]}={sorted(head.seed_nodes, key=repr)} "
                    f"vs {name}={sorted(report.seed_nodes, key=repr)}",
                )
            actual_mis = maintainer.mis()
            if actual_mis != expected_mis:
                raise ConformanceMismatch(
                    step,
                    batch[0] if batch else None,
                    f"MIS after batch: "
                    f"only-in-{engines[0]}={sorted(expected_mis - actual_mis, key=repr)} "
                    f"only-in-{name}={sorted(actual_mis - expected_mis, key=repr)}",
                )
            if check_clustering and maintainer.clustering() != reference.clustering():
                raise ConformanceMismatch(
                    step, batch[0] if batch else None, f"clustering ({engines[0]} vs {name})"
                )
        if verify_every and (step + 1) % verify_every == 0:
            _verify_all(engines, maintainers)

    _verify_all(engines, maintainers)
    return DifferentialResult(
        engines=tuple(engines),
        num_changes=len(changes),
        total_adjustments=total_adjustments,
        max_influenced_size=max_influenced,
        final_mis_size=len(reference.mis()),
        final_num_nodes=reference.graph.num_nodes(),
    )


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def conformance_workload(
    seed: int = 0,
    num_changes: int = 200,
    start_nodes: int = 30,
    edge_probability: float = 0.12,
    churn_segment: int = 20,
    burst_length: int = 6,
) -> Tuple[DynamicGraph, List[TopologyChange]]:
    """Build ``(initial_graph, changes)`` for one conformance replay.

    The sequence alternates mixed edge/node churn segments with adversarial
    deletion bursts targeting the current MIS of a tracker maintainer that
    runs under the *same* seed as the replay -- so the bursts are adaptive
    against the engines being tested.  Deleted fresh labels are later reused
    by the churn generator, exercising delete-then-reinsert interning.
    """
    seed = normalize_seed(seed)
    graph = erdos_renyi_graph(start_nodes, edge_probability, seed=seed)
    tracker = DynamicMIS(seed=seed, initial_graph=graph, engine="template")
    sub_seeds = iter(spawn_seeds(seed, 4 * (num_changes // max(1, churn_segment) + 2)))

    changes: List[TopologyChange] = []
    while len(changes) < num_changes:
        segment = mixed_churn_sequence(
            tracker.graph.copy(), churn_segment, seed=next(sub_seeds)
        )
        for change in segment:
            tracker.apply(change)
            changes.append(change)
            if len(changes) >= num_changes:
                break
        if len(changes) >= num_changes:
            break
        if tracker.graph.num_nodes() > 4:
            burst = adversarial_burst_sequence(tracker, burst_length, seed=next(sub_seeds))
            changes.extend(burst)
    return graph, changes[:num_changes]


def adversarial_burst_sequence(
    tracker: DynamicMIS, burst_length: int, seed: int = 0
) -> List[TopologyChange]:
    """A burst of deletions that always hit the tracker's *current* MIS.

    The tracker is advanced as the burst is generated, so every deletion in
    the returned list targeted an MIS node at its position in the sequence.
    """
    adversary = AdaptiveAdversary(tracker.mis, burst_length, rng_seed=normalize_seed(seed))
    burst: List[TopologyChange] = []
    for change in adversary:
        if tracker.graph.num_nodes() <= 2:
            break
        tracker.apply(change)
        burst.append(change)
    return burst
