"""Differential conformance harness for the distributed network backends.

The id-interned network core (:mod:`repro.distributed.fast_network`) is only
allowed to exist because it is *observably identical* to the dict/set
simulators.  :func:`replay_protocol_differential` makes that claim
machine-checked: it drives every requested network backend through the same
seeded change sequence under the same protocol and asserts, after every
single change,

* identical per-change metrics -- rounds, broadcasts, bits, state changes,
  adjustment counts and the adjusted-node *sets* (plus the causal depth for
  the asynchronous protocol),
* identical round-by-round traces (messages delivered, broadcasts in order,
  state changes per round) for the synchronous protocols, and
* identical output maps ``node -> in MIS?``.

Backends are resolved through the network registry
(:mod:`repro.distributed.network_api`), so a third-party core is validated
by passing its registered name in ``networks=(...)`` -- no edits anywhere in
the distributed subsystem.

When the replay diverges, the harness writes a JSON *divergence dump* --
the offending step and change, both backends' metrics, round traces and
output maps, and the exact field that differed -- before raising
:class:`~repro.testing.differential.ConformanceMismatch`.  The dump
directory defaults to the ``REPRO_PROTOCOL_DIFF_DUMP_DIR`` environment
variable (CI points it at an uploaded artifact path) and can be overridden
per call; without either, no file is written.

The asynchronous protocol needs a *channel-deterministic* scheduler (the
delay must be a function of the channel, not of the global message
sequence): the harness builds one
:class:`~repro.distributed.scheduler.AdversarialDelayScheduler` per backend
by default (or the scenario's ``backend.scheduler``, when one is declared).

:func:`replay_resume_differential` extends the same discipline to the
checkpointable-state pair (:mod:`repro.distributed.state`): checkpoint a
run mid-way on one backend, resume it on another, and assert the remaining
run is observably identical to an uninterrupted one -- per-change metrics,
round traces, outputs and the accumulated record list.  The uninterrupted
run records a :class:`~repro.scenario.journal.DeltaJournal`, so every
resume test exercises the delta-checkpoint path (journal slice -> JSON
codec -> fold at restore) rather than only full snapshots.  Since the
``"random"`` scheduler's RNG stream rides in the snapshot, *same-backend*
resumes (``networks=("fast", "fast")``) are exact for every scheduler kind
including the default random one; only cross-backend resumes still require
a channel-deterministic scheduler (the two cores enumerate receivers in
different orders, so sequence-dependent delays legitimately diverge).
Failed resumes dump through the same artifact mechanism
(``resume_divergence_*.json``) together with a sibling
``*_journal.json`` delta checkpoint of the reference run -- enough to
``repro bisect --from-dump`` the divergence offline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.rng import normalize_seed
from repro.distributed.network_api import create_network
from repro.distributed.scheduler import (
    CHANNEL_DETERMINISTIC_SCHEDULERS,
    DelayScheduler,
    create_scheduler,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.testing.differential import ConformanceMismatch, resolve_scenario_inputs
from repro.workloads.changes import TopologyChange

#: Per-change metric fields every backend must agree on, protocol by protocol.
PROTOCOL_METRIC_FIELDS = (
    "change_kind",
    "rounds",
    "broadcasts",
    "bits",
    "adjustments",
    "state_changes",
)
ASYNC_METRIC_FIELDS = PROTOCOL_METRIC_FIELDS + ("async_causal_depth",)

#: Environment variable pointing divergence dumps at a directory (used by CI
#: to upload them as failure artifacts).
DUMP_DIR_ENV = "REPRO_PROTOCOL_DIFF_DUMP_DIR"

_SYNC_PROTOCOLS = ("buffered", "direct")


@dataclass
class ProtocolDifferentialResult:
    """Summary of one successful protocol differential replay."""

    protocol: str
    networks: Tuple[str, ...]
    num_changes: int
    total_broadcasts: int
    total_rounds: int
    max_rounds: int
    final_mis_size: int
    final_num_nodes: int


def replay_protocol_differential(
    initial_graph: Optional[DynamicGraph] = None,
    changes: Optional[Sequence[TopologyChange]] = None,
    seed: Optional[int] = None,
    protocol: Optional[str] = None,
    networks: Tuple[str, ...] = ("dict", "fast"),
    compare_round_traces: bool = True,
    reference_engine: Optional[str] = None,
    verify_every: int = 10,
    scheduler_factory: Optional[Callable[[str], DelayScheduler]] = None,
    dump_dir: Optional[Path] = None,
    scenario=None,
) -> ProtocolDifferentialResult:
    """Replay ``changes`` through every network backend; assert equality.

    Each backend gets its own simulator built from the same ``seed`` and a
    copy of ``initial_graph``, so their random orders ``pi`` coincide.
    Raises :class:`ConformanceMismatch` at the first divergence (after
    writing a divergence dump, see the module docstring); returns a
    :class:`ProtocolDifferentialResult` when all backends agree everywhere.

    Parameters
    ----------
    scenario:
        A :class:`repro.scenario.spec.ScenarioSpec` replacing the explicit
        ``initial_graph``/``changes``/``seed`` *and* ``protocol`` /
        ``reference_engine`` (taken from the spec's backend part; passing
        any of them alongside ``scenario`` raises): the conformance run
        replays the exact scenario on every requested network backend --
        "same scenario, two backends" by construction.
    protocol:
        ``"buffered"`` (the default), ``"direct"`` or ``"async-direct"``.
    networks:
        Registered backend names; the first is the reference.
    compare_round_traces:
        Also assert the round-by-round observability traces (synchronous
        protocols only; the asynchronous protocol has no round structure).
    reference_engine:
        Engine backend computing the expected MIS in the periodic
        ``verify()`` calls.
    verify_every:
        Verify every backend against the sequential reference each
        that-many steps (0 disables; the final state is always verified).
    scheduler_factory:
        For the asynchronous protocol: builds one delay scheduler per
        backend name.  Must be channel-deterministic; defaults to the
        scenario's ``backend.scheduler`` (when given), then to
        ``AdversarialDelayScheduler(seed)``.
    dump_dir:
        Where to write divergence dumps; defaults to the
        ``REPRO_PROTOCOL_DIFF_DUMP_DIR`` environment variable.
    """
    if len(networks) < 2:
        raise ValueError("need at least two network backends to compare")
    initial_graph, changes, seed = resolve_scenario_inputs(
        initial_graph, changes, seed, scenario
    )
    if scenario is not None:
        if protocol is not None or reference_engine is not None:
            raise ValueError(
                "pass either scenario= or explicit protocol/reference_engine, not both"
            )
        protocol = scenario.backend.protocol
        reference_engine = scenario.backend.engine
    protocol = protocol or "buffered"
    reference_engine = reference_engine or "fast"
    changes = list(changes or ())
    seed = normalize_seed(seed)
    is_async = protocol not in _SYNC_PROTOCOLS
    trace_enabled = compare_round_traces and not is_async

    if is_async and scenario is not None:
        _check_scenario_scheduler(scenario, required=False)
    simulators = []
    for name in networks:
        kwargs = {"seed": seed, "initial_graph": initial_graph}
        if is_async:
            if scheduler_factory is not None:
                kwargs["scheduler"] = scheduler_factory(name)
            elif scenario is not None and scenario.backend.scheduler is not None:
                # The spec's scheduler field pins the delay adversary down;
                # one fresh instance per backend (schedulers may cache).
                kwargs["scheduler"] = scenario.backend.build_scheduler()
            else:
                kwargs["scheduler"] = create_scheduler("adversarial", seed=seed)
        simulator = create_network(protocol, network=name, **kwargs)
        if trace_enabled:
            simulator.enable_round_logging(True)
        simulators.append(simulator)

    reference = simulators[0]
    metric_fields = ASYNC_METRIC_FIELDS if is_async else PROTOCOL_METRIC_FIELDS

    def mismatch(step: int, change, detail: str) -> ConformanceMismatch:
        _write_divergence_dump(
            dump_dir,
            protocol,
            networks,
            seed,
            step,
            change,
            detail,
            simulators,
            trace_enabled,
            scenario=scenario,
        )
        return ConformanceMismatch(step, change, detail)

    baseline_states = reference.states()
    for name, simulator in zip(networks[1:], simulators[1:]):
        if simulator.states() != baseline_states:
            raise mismatch(-1, None, f"initial states differ between {networks[0]} and {name}")

    total_broadcasts = 0
    total_rounds = 0
    max_rounds = 0
    for step, change in enumerate(changes):
        metrics_records = [simulator.apply(change) for simulator in simulators]
        head = metrics_records[0]
        total_broadcasts += head.broadcasts
        total_rounds += head.rounds
        max_rounds = max(max_rounds, head.rounds)
        expected_states = reference.states()
        expected_trace = _trace_tuples(reference) if trace_enabled else None
        for name, simulator, record in zip(networks[1:], simulators[1:], metrics_records[1:]):
            for field in metric_fields:
                lhs, rhs = getattr(head, field), getattr(record, field)
                if lhs != rhs:
                    raise mismatch(
                        step, change, f"{field}: {networks[0]}={lhs!r} vs {name}={rhs!r}"
                    )
            if head.adjusted_nodes != record.adjusted_nodes:
                raise mismatch(
                    step,
                    change,
                    f"adjusted nodes: "
                    f"{networks[0]}={sorted(head.adjusted_nodes, key=repr)} "
                    f"vs {name}={sorted(record.adjusted_nodes, key=repr)}",
                )
            if trace_enabled:
                actual_trace = _trace_tuples(simulator)
                if actual_trace != expected_trace:
                    raise mismatch(
                        step,
                        change,
                        f"round trace ({networks[0]} vs {name}): "
                        f"{expected_trace!r} vs {actual_trace!r}",
                    )
            actual_states = simulator.states()
            if actual_states != expected_states:
                diff = {
                    node: (expected_states.get(node), actual_states.get(node))
                    for node in set(expected_states) | set(actual_states)
                    if expected_states.get(node) != actual_states.get(node)
                }
                raise mismatch(
                    step, change, f"states ({networks[0]} vs {name}): {diff}"
                )
        if verify_every and (step + 1) % verify_every == 0:
            _verify_all(networks, simulators, reference_engine)

    _verify_all(networks, simulators, reference_engine)
    return ProtocolDifferentialResult(
        protocol=protocol,
        networks=tuple(networks),
        num_changes=len(changes),
        total_broadcasts=total_broadcasts,
        total_rounds=total_rounds,
        max_rounds=max_rounds,
        final_mis_size=len(reference.mis()),
        final_num_nodes=reference.graph.num_nodes(),
    )


def _check_scenario_scheduler(scenario, required: bool) -> None:
    """Enforce the harnesses' channel-determinism precondition on async specs.

    A scheduler whose delays depend on the global message sequence (the
    ``"random"`` kind) legitimately diverges *across backends*: the two
    cores enumerate a broadcast's receivers in different orders, so the same
    RNG stream hands out different delays.  Feeding one to a cross-backend
    differential would therefore report false protocol divergence.
    ``required`` additionally rejects *absent* schedulers (they default to
    the random kind).  Same-backend resume differentials skip this check
    entirely: the scheduler's RNG stream rides in the snapshot, so resume
    is exact for every kind.
    """
    declared = scenario.backend.scheduler
    if declared is None:
        if required:
            raise ValueError(
                "async resume differentials need the scenario to declare a "
                "channel-deterministic backend.scheduler (kind 'adversarial' "
                "or 'fixed'); without one the resumed session falls back to "
                "the random scheduler and legitimately diverges"
            )
        return
    if declared.get("kind") not in CHANNEL_DETERMINISTIC_SCHEDULERS:
        raise ValueError(
            f"scenario scheduler kind {declared.get('kind')!r} is not "
            f"channel-deterministic ({CHANNEL_DETERMINISTIC_SCHEDULERS}); the "
            "differential harnesses would report false divergence under it"
        )


@dataclass
class ResumeDifferentialResult:
    """Summary of one successful checkpoint/resume differential replay."""

    protocol: str
    networks: Tuple[str, ...]
    positions: Tuple[int, ...]
    num_changes: int
    final_mis_size: int


def replay_resume_differential(
    scenario,
    positions: Sequence[int],
    networks: Tuple[str, str] = ("dict", "fast"),
    compare_round_traces: bool = True,
    through_json: bool = True,
    dump_dir: Optional[Path] = None,
) -> ResumeDifferentialResult:
    """Checkpoint mid-run on one backend, resume on another, assert equality.

    For every position ``p`` the harness runs the scenario *uninterrupted*
    on ``networks[0]``, takes a knowledge-level checkpoint of a second run
    at ``p`` (optionally round-tripped through the JSON codec of
    :mod:`repro.scenario.checkpoint_io` -- the default, since that is the
    path the CLI's ``--checkpoint-path`` files take), resumes it on
    ``networks[1]``, and then steps both sessions in lockstep, asserting
    after every post-resume change

    * identical per-change metrics (rounds, broadcasts, bits, state changes,
      adjustments, adjusted-node sets; plus causal depth for async),
    * identical round-by-round traces (synchronous protocols),
    * identical output maps, and -- at the end --
    * identical *accumulated* metric records (the pre-checkpoint records
      ride along in the snapshot) and a passing ``verify()`` on both sides.

    The checkpoint taken at ``p`` is a *delta* checkpoint (the
    uninterrupted session records a journal), so the JSON round-trip
    exercises the journal codec and the fold-at-restore path on every run.
    Same-backend pairs (``source == target``) accept any scheduler kind --
    including an absent/``"random"`` one, whose RNG stream rides in the
    snapshot; cross-backend pairs still require a declared
    channel-deterministic scheduler (see
    :func:`_check_scenario_scheduler`).

    Dynamic (adaptive-adversary) scenarios additionally assert that the
    resumed adversary generates the identical deletion stream.  On
    divergence a JSON dump is written next to the protocol-differential
    dumps (``resume_divergence_*.json``; same
    ``REPRO_PROTOCOL_DIFF_DUMP_DIR`` artifact mechanism), embedding the
    scenario spec and accompanied by a ``*_journal.json`` delta checkpoint
    of the reference run, before
    :class:`~repro.testing.differential.ConformanceMismatch` is raised.
    """
    from repro.scenario.checkpoint_io import checkpoint_from_dict, checkpoint_to_dict
    from repro.scenario.session import Session

    if scenario.backend.runner != "protocol":
        raise ValueError(
            "replay_resume_differential drives protocol scenarios; sequential "
            "checkpoint differentials live in tests/test_scenario_session.py"
        )
    if len(networks) != 2:
        raise ValueError("need exactly (source, resume) network backends")
    source, target = networks
    protocol = scenario.backend.protocol
    is_async = protocol not in _SYNC_PROTOCOLS
    if is_async and source != target:
        # A same-backend resume is exact for every scheduler kind (the RNG
        # stream rides in the snapshot); only crossing cores needs
        # channel-deterministic delays.
        _check_scenario_scheduler(scenario, required=True)
    trace_enabled = compare_round_traces and not is_async
    metric_fields = ASYNC_METRIC_FIELDS if is_async else PROTOCOL_METRIC_FIELDS

    num_changes = 0
    final_mis_size = 0
    for position in positions:
        uninterrupted = Session(scenario.with_backend(network=source), record_journal=True)
        if trace_enabled:
            uninterrupted.network.enable_round_logging(True)
        for _ in range(position):
            if uninterrupted.step() is None:
                raise ValueError(
                    f"scenario exhausted before checkpoint position {position}"
                )
        checkpoint = uninterrupted.checkpoint()
        if through_json:
            checkpoint = checkpoint_from_dict(checkpoint_to_dict(checkpoint))
        resumed = Session.resume(checkpoint, network=target)
        if trace_enabled:
            resumed.network.enable_round_logging(True)

        def mismatch(step: int, change, detail: str) -> ConformanceMismatch:
            _write_divergence_dump(
                dump_dir,
                protocol,
                (source, target),
                scenario.seed,
                step,
                change,
                detail,
                [uninterrupted.network, resumed.network],
                trace_enabled,
                tag=f"resume_divergence_pos{position}",
                scenario=scenario,
                journal_checkpoint=uninterrupted.checkpoint(),
            )
            return ConformanceMismatch(step, change, detail)

        while not uninterrupted.done:
            expected_record = uninterrupted.step()
            actual_record = resumed.step()
            step = uninterrupted.position - 1
            if expected_record is None or actual_record is None:
                if (expected_record is None) != (actual_record is None):
                    raise mismatch(
                        step, None, "resumed run exhausted at a different point"
                    )
                break
            # Session.changes is the full materialized list for static
            # workloads and the generated-so-far list for dynamic ones; the
            # change just applied sits at the position index either way.
            change = uninterrupted.changes[step] if step < len(uninterrupted.changes) else None
            if scenario.workload.is_dynamic and resumed.changes:
                if resumed.changes[-1] != change:
                    raise mismatch(
                        step,
                        change,
                        f"resumed workload diverged: {source} applied {change!r}, "
                        f"{target} applied {resumed.changes[-1]!r}",
                    )
            for field in metric_fields:
                lhs = getattr(expected_record, field)
                rhs = getattr(actual_record, field)
                if lhs != rhs:
                    raise mismatch(
                        step,
                        change,
                        f"{field} after resume at {position}: "
                        f"{source}={lhs!r} vs {target}={rhs!r}",
                    )
            if expected_record.adjusted_nodes != actual_record.adjusted_nodes:
                raise mismatch(
                    step,
                    change,
                    f"adjusted nodes after resume at {position}: "
                    f"{source}={sorted(expected_record.adjusted_nodes, key=repr)} "
                    f"vs {target}={sorted(actual_record.adjusted_nodes, key=repr)}",
                )
            if trace_enabled:
                expected_trace = _trace_tuples(uninterrupted.network)
                actual_trace = _trace_tuples(resumed.network)
                if expected_trace != actual_trace:
                    raise mismatch(
                        step,
                        change,
                        f"round trace after resume at {position}: "
                        f"{expected_trace!r} vs {actual_trace!r}",
                    )
            if uninterrupted.states() != resumed.states():
                raise mismatch(
                    step, change, f"states diverged after resume at {position}"
                )
        expected_records = [record.as_dict() for record in uninterrupted.network.metrics.records]
        actual_records = [record.as_dict() for record in resumed.network.metrics.records]
        if expected_records != actual_records:
            raise mismatch(
                -1, None, "accumulated metric records differ after resume"
            )
        for session in (uninterrupted, resumed):
            session.verify()
            checker = getattr(session.network, "check_interning_invariants", None)
            if checker is not None:
                checker()
        num_changes = uninterrupted.position
        final_mis_size = len(uninterrupted.mis())
    return ResumeDifferentialResult(
        protocol=protocol,
        networks=(source, target),
        positions=tuple(positions),
        num_changes=num_changes,
        final_mis_size=final_mis_size,
    )


def _trace_tuples(simulator) -> List[Tuple[int, int, int, List[Tuple]]]:
    """The last change's round trace as comparable plain tuples."""
    return [
        (record.round_number, record.messages_delivered, record.state_changes, record.broadcasts)
        for record in simulator.last_change_trace()
    ]


def _verify_all(networks: Tuple[str, ...], simulators: List, reference_engine: str) -> None:
    for name, simulator in zip(networks, simulators):
        simulator.verify(reference_engine=reference_engine)
        checker = getattr(simulator, "check_interning_invariants", None)
        if checker is not None:
            checker()


# ----------------------------------------------------------------------
# Divergence dumps (uploaded as CI artifacts on nightly failures)
# ----------------------------------------------------------------------
def _write_divergence_dump(
    dump_dir: Optional[Path],
    protocol: str,
    networks: Tuple[str, ...],
    seed: int,
    step: int,
    change,
    detail: str,
    simulators: List,
    trace_enabled: bool,
    tag: str = "divergence",
    scenario=None,
    journal_checkpoint=None,
) -> Optional[Path]:
    """Write one JSON dump describing a divergent replay step (best effort).

    ``tag`` prefixes the file name; the resume differential uses
    ``resume_divergence_pos<p>`` so checkpoint failures are distinguishable
    in the uploaded CI artifacts.  When the caller ran from a scenario spec
    the dump embeds ``scenario.to_dict()`` (so ``repro bisect --from-dump``
    can rebuild the run), and when it recorded a journal a sibling
    ``<stem>_journal.json`` delta checkpoint of the reference run is written
    next to the dump.
    """
    if dump_dir is None:
        from_env = os.environ.get(DUMP_DIR_ENV)
        if not from_env:
            return None
        dump_dir = Path(from_env)
    try:
        dump_dir = Path(dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        document = {
            "protocol": protocol,
            "networks": list(networks),
            "seed": seed,
            "step": step,
            "change": repr(change),
            "detail": detail,
            "backends": {
                name: _describe_simulator(simulator, trace_enabled)
                for name, simulator in zip(networks, simulators)
            },
        }
        if scenario is not None:
            document["scenario"] = scenario.to_dict()
        stem = f"{tag}_{protocol}_seed{seed}_step{step}"
        if journal_checkpoint is not None:
            from repro.scenario.checkpoint_io import save_checkpoint

            journal_path = dump_dir / f"{stem}_journal.json"
            save_checkpoint(journal_path, journal_checkpoint)
            document["journal_checkpoint"] = journal_path.name
        path = dump_dir / f"{stem}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True, default=repr) + "\n")
        return path
    except OSError:  # pragma: no cover - never fail the assertion over a dump
        return None


def _describe_simulator(simulator, trace_enabled: bool) -> Dict:
    """One backend's post-divergence state, JSON-ready."""
    last = simulator.metrics.records[-1] if simulator.metrics.records else None
    description: Dict = {
        "num_nodes": simulator.graph.num_nodes(),
        "num_edges": simulator.graph.num_edges(),
        "mis": sorted(simulator.mis(), key=repr),
        "states": {repr(node): in_mis for node, in_mis in sorted(
            simulator.states().items(), key=lambda item: repr(item[0])
        )},
        "last_change_metrics": last.as_dict() if last is not None else None,
    }
    if trace_enabled:
        description["last_change_trace"] = [
            {
                "round": record.round_number,
                "messages_delivered": record.messages_delivered,
                "state_changes": record.state_changes,
                "broadcasts": [list(map(repr, entry)) for entry in record.broadcasts],
            }
            for record in simulator.last_change_trace()
        ]
    return description
