"""Reusable test harnesses shipped with the library.

:mod:`repro.testing.differential` replays identical seeded change sequences
through two engine backends and asserts step-by-step output equality;
:mod:`repro.testing.protocol_differential` does the same for the distributed
network backends, round by round.  Both are the machinery behind
``tests/conformance/`` and are importable by downstream users who add their
own backends.
"""

from repro.testing.differential import (
    ConformanceMismatch,
    DifferentialResult,
    adversarial_burst_sequence,
    conformance_workload,
    replay_batch_differential,
    replay_differential,
    split_into_batches,
)
from repro.testing.protocol_differential import (
    ProtocolDifferentialResult,
    replay_protocol_differential,
)

__all__ = [
    "ConformanceMismatch",
    "DifferentialResult",
    "ProtocolDifferentialResult",
    "adversarial_burst_sequence",
    "conformance_workload",
    "replay_batch_differential",
    "replay_differential",
    "replay_protocol_differential",
    "split_into_batches",
]
