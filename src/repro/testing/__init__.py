"""Reusable test harnesses shipped with the library.

:mod:`repro.testing.differential` replays identical seeded change sequences
through two engine backends and asserts step-by-step output equality; it is
the machinery behind ``tests/conformance/`` and is importable by downstream
users who add their own backends.
"""

from repro.testing.differential import (
    ConformanceMismatch,
    DifferentialResult,
    adversarial_burst_sequence,
    conformance_workload,
    replay_batch_differential,
    replay_differential,
    split_into_batches,
)

__all__ = [
    "ConformanceMismatch",
    "DifferentialResult",
    "adversarial_burst_sequence",
    "conformance_workload",
    "replay_batch_differential",
    "replay_differential",
    "split_into_batches",
]
