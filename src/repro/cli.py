"""Command-line interface for quick experiments.

The CLI exposes the most common workflows without writing any Python:

``repro-mis churn``
    Maintain an MIS (or matching / clustering) over a random change sequence
    on a chosen graph family and print the per-change cost summary.

``repro-mis protocol``
    Run one of the distributed protocols (Algorithm 2, the direct protocol or
    the asynchronous engine) on the same kind of workload and print the
    round / broadcast / adjustment metrics per change type.

``repro-mis lowerbound``
    Run the K_{k,k} deletion sequence against the deterministic baseline and
    the randomized algorithm (the paper's Omega(n) separation).

``repro-mis history``
    Check history independence on a random graph by replaying several
    different change histories.

``repro-mis families``
    List the available graph families.

Run ``repro-mis <command> --help`` for the options of each command.  The CLI
only prints plain-text tables (via :mod:`repro.analysis.reporting`), so its
output can be pasted into notes or issues directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.estimators import mean
from repro.analysis.history_independence import (
    max_pairwise_distance,
    mis_distribution_over_histories,
    outputs_identical_across_histories,
    replay_history_mis,
)
from repro.analysis.reporting import format_table
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import available_engines
from repro.distributed.network_api import NETWORK_NAMES, create_network
from repro.graph.generators import FAMILY_NAMES, random_graph_family
from repro.lowerbounds.deterministic import (
    run_deterministic_lower_bound,
    run_randomized_on_lower_bound_instance,
)
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.workloads.sequences import alternative_histories, mixed_churn_sequence


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Dynamic distributed MIS reproduction -- quick experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    churn = subparsers.add_parser("churn", help="sequential maintainer under random churn")
    _add_workload_arguments(churn)
    churn.add_argument(
        "--structure",
        choices=("mis", "matching", "clustering"),
        default="mis",
        help="which structure to maintain",
    )

    protocol = subparsers.add_parser("protocol", help="distributed protocol under random churn")
    _add_workload_arguments(protocol)
    protocol.add_argument(
        "--protocol",
        choices=("buffered", "direct", "async"),
        default="buffered",
        help="buffered = Algorithm 2, direct = Corollary 6, async = event-driven",
    )
    protocol.add_argument(
        "--network",
        choices=NETWORK_NAMES,
        default="dict",
        help="network state core ('dict' = paper-shaped runtimes, 'fast' = id-interned "
        "arrays; identical metrics and outputs for buffered/direct -- async uses the "
        "global-stream random scheduler, whose delay assignment is core-specific; "
        "any registered backend works)",
    )
    protocol.add_argument(
        "--compare-recompute",
        action="store_true",
        help="also run the Luby-recompute baseline on the same workload",
    )

    lowerbound = subparsers.add_parser("lowerbound", help="K_{k,k} deterministic lower bound")
    lowerbound.add_argument("--side-size", type=int, default=16, help="k, the size of each side")
    lowerbound.add_argument("--seeds", type=int, default=5, help="seeds for the randomized run")
    _add_engine_argument(lowerbound, "drives the randomized maintainer on the K_{k,k} instance")

    history = subparsers.add_parser("history", help="history-independence check")
    _add_workload_arguments(history)
    history.add_argument("--histories", type=int, default=4, help="number of different histories")
    history.add_argument("--samples", type=int, default=30, help="seeds per distribution estimate")

    subparsers.add_parser("families", help="list available graph families")
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=FAMILY_NAMES, default="erdos_renyi")
    parser.add_argument("--nodes", type=int, default=40, help="number of nodes of the start graph")
    parser.add_argument("--changes", type=int, default=100, help="number of topology changes")
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for graph, workload and algorithm"
    )
    _add_engine_argument(
        parser,
        "drives the maintainer for churn/history, and selects the verification "
        "reference for protocol",
    )
    parser.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the generated workload (graph + changes) to a JSON trace file",
    )
    parser.add_argument(
        "--load-trace",
        metavar="PATH",
        default=None,
        help="replay a workload previously written with --save-trace instead of generating one",
    )


def _add_engine_argument(parser: argparse.ArgumentParser, role: str) -> None:
    """Add ``--engine`` with choices sourced live from the backend registry."""
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default="template",
        help="sequential MIS backend ('template' = paper-shaped reference, 'fast' = "
        f"array-backed, identical outputs; any registered backend works); {role}",
    )


def _resolve_workload(arguments):
    """Return (graph, changes) from a trace file or by generating them."""
    from repro.workloads.trace import load_trace, save_trace

    if getattr(arguments, "load_trace", None):
        loaded = load_trace(arguments.load_trace)
        graph = loaded["initial_graph"]
        if graph is None:
            raise SystemExit("the trace file does not contain an initial graph")
        return graph, loaded["changes"]
    graph = random_graph_family(arguments.family, arguments.nodes, seed=arguments.seed)
    changes = mixed_churn_sequence(graph, arguments.changes, seed=arguments.seed + 1)
    if getattr(arguments, "save_trace", None):
        save_trace(
            arguments.save_trace,
            changes,
            graph,
            metadata={
                "family": arguments.family,
                "nodes": arguments.nodes,
                "seed": arguments.seed,
            },
        )
    return graph, changes


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    command = arguments.command
    if command == "families":
        return _run_families()
    if command == "churn":
        return _run_churn(arguments)
    if command == "protocol":
        return _run_protocol(arguments)
    if command == "lowerbound":
        return _run_lowerbound(arguments)
    if command == "history":
        return _run_history(arguments)
    raise AssertionError(f"unhandled command {command!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _run_families() -> int:
    print(format_table(["family"], [[name] for name in FAMILY_NAMES], title="Graph families"))
    return 0


def _run_churn(arguments) -> int:
    graph, changes = _resolve_workload(arguments)

    if arguments.structure == "matching":
        matcher = DynamicMaximalMatching(
            seed=arguments.seed + 2, initial_graph=graph, engine=arguments.engine
        )
        adjustments: List[int] = []
        for change in changes:
            reports = matcher.apply(change)
            adjustments.append(sum(report.num_adjustments for report in reports))
        matcher.verify()
        rows = [
            ["structure", "maximal matching (MIS on L(G))"],
            ["changes applied", len(changes)],
            ["mean adjustments per change", mean(adjustments)],
            ["max adjustments for one change", max(adjustments) if adjustments else 0],
            ["final matching size", matcher.matching_size()],
        ]
    else:
        maintainer = DynamicMIS(
            seed=arguments.seed + 2, initial_graph=graph, engine=arguments.engine
        )
        maintainer.apply_sequence(changes)
        maintainer.verify()
        stats = maintainer.statistics
        rows = [
            ["structure", f"{arguments.structure} (engine={arguments.engine})"],
            ["changes applied", stats.num_changes],
            ["mean influenced set |S| (Theorem 1: <= 1)", stats.mean_influenced_size()],
            ["mean adjustments per change (<= 1)", stats.mean_adjustments()],
            ["max adjustments for one change", stats.max_adjustments()],
            ["final MIS size", len(maintainer.mis())],
        ]
        if arguments.structure == "clustering":
            rows.append(["clusters (= MIS size)", len(maintainer.mis())])
            rows.append(["cluster assignment of every node", "node -> earliest MIS neighbor"])
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"{arguments.structure} under {len(changes)} changes on "
            f"{arguments.family}(n={graph.num_nodes()})",
            float_format=".3f",
        )
    )
    return 0


def _run_protocol(arguments) -> int:
    graph, changes = _resolve_workload(arguments)
    protocol = {"buffered": "buffered", "direct": "direct", "async": "async-direct"}[
        arguments.protocol
    ]
    network = create_network(
        protocol,
        network=arguments.network,
        seed=arguments.seed + 2,
        initial_graph=graph,
    )
    network.apply_sequence(changes)
    network.verify(reference_engine=arguments.engine)
    metrics = network.metrics
    rows = []
    for kind in metrics.change_kinds():
        rows.append(
            [
                kind,
                metrics.mean("adjustments", kind),
                metrics.mean("rounds", kind),
                metrics.mean("broadcasts", kind),
                metrics.mean("bits", kind),
            ]
        )
    rows.append(
        [
            "ALL",
            metrics.mean("adjustments"),
            metrics.mean("rounds"),
            metrics.mean("broadcasts"),
            metrics.mean("bits"),
        ]
    )
    print(
        format_table(
            ["change type", "mean adjustments", "mean rounds", "mean broadcasts", "mean bits"],
            rows,
            title=f"protocol={arguments.protocol} on {arguments.family}(n={graph.num_nodes()}), "
            f"{len(changes)} changes",
            float_format=".3f",
        )
    )
    if getattr(arguments, "compare_recompute", False):
        baseline = StaticRecomputeDynamicMIS("luby", seed=arguments.seed + 2, initial_graph=graph)
        baseline.apply_sequence(changes)
        print()
        print(
            format_table(
                ["algorithm", "mean rounds", "mean broadcasts"],
                [
                    ["this protocol", metrics.mean("rounds"), metrics.mean("broadcasts")],
                    [
                        "Luby recompute per change",
                        baseline.metrics.mean("rounds"),
                        baseline.metrics.mean("broadcasts"),
                    ],
                ],
                title="Comparison with the static recompute baseline",
                float_format=".2f",
            )
        )
    return 0


def _run_lowerbound(arguments) -> int:
    deterministic = run_deterministic_lower_bound(arguments.side_size)
    randomized = [
        run_randomized_on_lower_bound_instance(
            arguments.side_size, seed=seed, engine=arguments.engine
        )
        for seed in range(arguments.seeds)
    ]
    print(
        format_table(
            [
                "algorithm",
                "worst single-change adjustments",
                "total adjustments",
                "mean per change",
            ],
            [
                [
                    "deterministic greedy",
                    deterministic.max_adjustments,
                    deterministic.total_adjustments,
                    deterministic.mean_adjustments,
                ],
                [
                    f"randomized (mean over {arguments.seeds} seeds)",
                    mean([run.max_adjustments for run in randomized]),
                    mean([run.total_adjustments for run in randomized]),
                    mean([run.mean_adjustments for run in randomized]),
                ],
            ],
            title=f"K_{{{arguments.side_size},{arguments.side_size}}} deletion sequence "
            "(paper, Section 1.1 lower bound)",
            float_format=".3f",
        )
    )
    return 0


def _run_history(arguments) -> int:
    graph = random_graph_family(arguments.family, arguments.nodes, seed=arguments.seed)
    histories = alternative_histories(
        graph, num_histories=arguments.histories, seed=arguments.seed + 1
    )

    def runner(history, seed):
        return replay_history_mis(history, seed, engine=arguments.engine)

    identical = all(
        outputs_identical_across_histories(histories, seed, runner=runner) for seed in range(10)
    )
    distributions = mis_distribution_over_histories(
        histories, seeds=range(arguments.samples), runner=runner
    )
    distance = max_pairwise_distance(distributions)
    print(
        format_table(
            ["check", "result"],
            [
                ["histories compared", len(histories)],
                ["identical output per seed across histories", "yes" if identical else "NO"],
                ["max total-variation distance between history distributions", distance],
            ],
            title=f"History independence on {arguments.family}(n={arguments.nodes})",
            float_format=".4f",
        )
    )
    return 0 if identical and distance < 1e-9 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
