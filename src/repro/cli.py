"""Command-line interface for quick experiments.

The CLI is a thin layer over the declarative scenario API
(:mod:`repro.scenario`): the workload-driving subcommands build a
:class:`~repro.scenario.spec.ScenarioSpec` from their flags and stream it
through a :class:`~repro.scenario.session.Session`, so anything the CLI runs
can also be saved as a spec file (``--save-scenario``) and replayed,
reparameterized or handed to the conformance harness later.

``repro-mis run``
    Execute a serialized scenario file end-to-end (``--scenario spec.json``)
    on any registered engine/network backend and print the cost summary.
    ``--checkpoint-every N --checkpoint-path p.json`` writes a resumable
    JSON checkpoint every N changes (both runners -- protocol sessions
    checkpoint through the simulators' knowledge-level snapshots);
    ``--resume-from p.json`` continues one, optionally on a different
    backend via ``--engine`` / ``--network``.

``repro-mis churn``
    Maintain an MIS (or matching / clustering) over a random change sequence
    on a chosen graph family and print the per-change cost summary.

``repro-mis protocol``
    Run one of the distributed protocols (Algorithm 2, the direct protocol or
    the asynchronous engine) on the same kind of workload and print the
    round / broadcast / adjustment metrics per change type.

``repro-mis lowerbound``
    Run the K_{k,k} deletion sequence against the deterministic baseline and
    the randomized algorithm (the paper's Omega(n) separation).

``repro-mis history``
    Check history independence on a random graph by replaying several
    different change histories.

``repro-mis bisect``
    Binary-search a recorded scenario for the first change where two runs
    diverge -- either two backends (``--networks a,b`` / ``--engines a,b``)
    or a checkpoint/resume round-trip (``--resume-at N``).  ``--from-dump``
    seeds the search from a divergence dump written by the conformance
    harness (the dump embeds the scenario spec).  Exits 1 when a divergence
    is found, so the command scripts cleanly.

``repro-mis families``
    List the available graph families.

``repro-mis serve``
    Run the sharded multi-session service daemon (:mod:`repro.service`):
    many concurrent sessions behind a JSON socket API, idle sessions
    evicted to spool checkpoints, SIGTERM drains every shard.

``repro-mis client``
    Talk to a running daemon: create/apply/query/checkpoint/close sessions,
    list them, read aggregate stats, or ask the daemon to shut down.

``repro-mis lint``
    Run the stdlib-``ast`` contract checkers (:mod:`repro.analysis.lint`):
    determinism hazards, checkpoint parity, registry discipline, wire
    protocol consistency and shared-plane safety.  Exits 1 on findings not
    in the committed ``lint-baseline.json``.

``repro-mis --list-engines`` / ``--list-networks`` / ``--list-sinks`` /
``--list-schedulers``
    Print the live backend, sink and scheduler registries with their
    capability flags.

Run ``repro-mis <command> --help`` for the options of each command.  The CLI
only prints plain-text tables (via :mod:`repro.analysis.reporting`), so its
output can be pasted into notes or issues directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.estimators import mean
from repro.analysis.history_independence import (
    max_pairwise_distance,
    mis_distribution_over_histories,
    outputs_identical_across_histories,
    replay_history_mis,
)
from repro.analysis.reporting import format_table
from repro.baselines.recompute import StaticRecomputeDynamicMIS
from repro.core.engine_api import available_engines, create_engine
from repro.distributed.network_api import (
    NETWORK_NAMES,
    available_networks,
    network_protocols,
    resolve_network,
)
from repro.graph.generators import FAMILY_NAMES
from repro.lowerbounds.deterministic import (
    run_deterministic_lower_bound,
    run_randomized_on_lower_bound_instance,
)
from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.scenario import (
    BackendSpec,
    CheckpointFormatError,
    GraphSpec,
    ParallelSpec,
    ScenarioSpec,
    ScenarioSpecError,
    Session,
    WorkloadSpec,
    available_sinks,
    load_checkpoint,
    save_checkpoint,
)
from repro.scenario.sinks import get_sink_factory
from repro.workloads.sequences import alternative_histories


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Dynamic distributed MIS reproduction -- quick experiments",
    )
    parser.add_argument(
        "--list-engines",
        action="store_true",
        help="print the registered sequential engine backends with capability flags",
    )
    parser.add_argument(
        "--list-networks",
        action="store_true",
        help="print the registered distributed network backends with their protocols",
    )
    parser.add_argument(
        "--list-sinks",
        action="store_true",
        help="print the registered metric sinks (spec 'sinks' entries)",
    )
    parser.add_argument(
        "--list-schedulers",
        action="store_true",
        help="print the registered async delay schedulers (spec 'scheduler' entries)",
    )
    subparsers = parser.add_subparsers(dest="command", required=False)

    run = subparsers.add_parser(
        "run", help="execute a serialized scenario spec file end-to-end"
    )
    run.add_argument(
        "--scenario",
        metavar="PATH",
        default=None,
        help="scenario spec file (JSON, see the README's 'Scenarios' section); "
        "required unless --resume-from is given",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=0,
        help="write a resumable checkpoint after every N applied changes "
        "(requires --checkpoint-path; works for sequential and protocol scenarios)",
    )
    run.add_argument(
        "--checkpoint-path",
        metavar="PATH",
        default=None,
        help="where to write the checkpoint JSON (atomically overwritten each time)",
    )
    run.add_argument(
        "--resume-from",
        metavar="PATH",
        default=None,
        help="continue a run from a checkpoint written by --checkpoint-path "
        "(--engine/--network switch the backend; the snapshots are label-keyed)",
    )
    run.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="override the spec's engine backend",
    )
    run.add_argument(
        "--network",
        choices=NETWORK_NAMES,
        default=None,
        help="override the spec's network backend (protocol runner)",
    )
    run.add_argument(
        "--protocol",
        choices=("buffered", "direct", "async-direct"),
        default=None,
        help="override the spec's distributed protocol (protocol runner)",
    )
    run.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the final invariant verification (timing runs)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate repair waves / protocol rounds on N worker processes "
        "(overrides the spec's 'parallel' block; needs the 'fast' engine or "
        "network; 0 or 1 forces serial)",
    )

    churn = subparsers.add_parser("churn", help="sequential maintainer under random churn")
    _add_workload_arguments(churn)
    churn.add_argument(
        "--structure",
        choices=("mis", "matching", "clustering"),
        default="mis",
        help="which structure to maintain",
    )

    protocol = subparsers.add_parser("protocol", help="distributed protocol under random churn")
    _add_workload_arguments(protocol)
    protocol.add_argument(
        "--protocol",
        choices=("buffered", "direct", "async"),
        default="buffered",
        help="buffered = Algorithm 2, direct = Corollary 6, async = event-driven",
    )
    protocol.add_argument(
        "--network",
        choices=NETWORK_NAMES,
        default="dict",
        help="network state core ('dict' = paper-shaped runtimes, 'fast' = id-interned "
        "arrays; identical metrics and outputs for buffered/direct -- async uses the "
        "global-stream random scheduler, whose delay assignment is core-specific; "
        "any registered backend works)",
    )
    protocol.add_argument(
        "--compare-recompute",
        action="store_true",
        help="also run the Luby-recompute baseline on the same workload",
    )

    lowerbound = subparsers.add_parser("lowerbound", help="K_{k,k} deterministic lower bound")
    lowerbound.add_argument("--side-size", type=int, default=16, help="k, the size of each side")
    lowerbound.add_argument("--seeds", type=int, default=5, help="seeds for the randomized run")
    _add_engine_argument(lowerbound, "drives the randomized maintainer on the K_{k,k} instance")

    history = subparsers.add_parser("history", help="history-independence check")
    _add_workload_arguments(history)
    history.add_argument("--histories", type=int, default=4, help="number of different histories")
    history.add_argument("--samples", type=int, default=30, help="seeds per distribution estimate")

    bisect = subparsers.add_parser(
        "bisect",
        help="binary-search a recorded scenario for the first divergent change",
    )
    bisect.add_argument(
        "--scenario",
        metavar="PATH",
        default=None,
        help="scenario spec file to bisect (JSON); exactly one of --scenario/--from-dump",
    )
    bisect.add_argument(
        "--from-dump",
        dest="from_dump",
        metavar="PATH",
        default=None,
        help="a divergence dump written by the conformance harness; its embedded "
        "scenario spec is bisected and its backend pair is the default --networks",
    )
    bisect.add_argument(
        "--networks",
        metavar="A,B",
        default=None,
        help="reference,candidate network backends (protocol scenarios)",
    )
    bisect.add_argument(
        "--engines",
        metavar="A,B",
        default=None,
        help="reference,candidate engine backends (sequential scenarios)",
    )
    bisect.add_argument(
        "--resume-at",
        dest="resume_at",
        type=int,
        metavar="N",
        default=None,
        help="probe through a checkpoint/resume at change N (JSON round-tripped) "
        "instead of -- or in addition to -- a backend pair",
    )
    bisect.add_argument(
        "--no-json",
        action="store_true",
        help="keep probe checkpoints in memory instead of round-tripping the JSON codec",
    )

    subparsers.add_parser("families", help="list available graph families")

    serve = subparsers.add_parser(
        "serve", help="run the sharded multi-session service daemon"
    )
    serve.add_argument(
        "--spool",
        metavar="DIR",
        required=True,
        help="spool directory for evicted/drained session checkpoints "
        "(point a restarted daemon at the same directory to resume them)",
    )
    serve.add_argument(
        "--bind",
        metavar="ADDR",
        default="tcp:127.0.0.1:0",
        help="listen address, tcp:HOST:PORT or unix:PATH (default %(default)s; "
        "port 0 picks a free port, printed in the 'listening on' line)",
    )
    serve.add_argument(
        "--shards", type=int, default=2, help="worker processes (default %(default)s)"
    )
    serve.add_argument(
        "--max-live",
        dest="max_live",
        type=int,
        default=64,
        metavar="N",
        help="live sessions per shard before LRU eviction to the spool "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="rehydrate evicted sequential sessions on this engine "
        "(default: whichever the checkpoint was taken on)",
    )
    serve.add_argument(
        "--network",
        choices=NETWORK_NAMES,
        default=None,
        help="rehydrate evicted protocol sessions on this network core",
    )
    serve.add_argument(
        "--workers-per-shard",
        dest="workers_per_shard",
        type=int,
        default=0,
        metavar="N",
        help="give each shard's sessions an N-process evaluation pool "
        "(best-effort: backends without pool support run serial; "
        "default %(default)s = serial)",
    )

    client = subparsers.add_parser(
        "client", help="talk to a running service daemon"
    )
    client.add_argument(
        "op",
        choices=(
            "ping",
            "create",
            "apply",
            "query",
            "checkpoint",
            "evict",
            "close",
            "list",
            "stats",
            "shutdown",
        ),
        help="the service operation to perform",
    )
    client.add_argument(
        "--connect",
        metavar="ADDR",
        required=True,
        help="daemon address (the 'listening on' line of repro-mis serve)",
    )
    client.add_argument("--session", default=None, help="session id (session-targeted ops)")
    client.add_argument(
        "--scenario",
        metavar="PATH",
        default=None,
        help="scenario spec file for 'create'",
    )
    client.add_argument(
        "--steps", type=int, default=1, metavar="N", help="workload units for 'apply'"
    )
    client.add_argument(
        "--what",
        choices=("status", "mis", "states", "metrics"),
        default="status",
        help="facet for 'query' (default %(default)s)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the AST contract checkers (determinism, checkpoint parity, ...)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint, relative to --root "
        "(default: src/repro benchmarks examples)",
    )
    lint.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="project root the paths and baseline resolve against (default: cwd)",
    )
    lint.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="findings format on stdout; all diagnostics go to stderr "
        "(default %(default)s)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="accepted-findings file (default: ROOT/lint-baseline.json if present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="CHECK",
        default=None,
        help="run only this checker (repeatable)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="CHECK",
        default=None,
        help="skip this checker (repeatable)",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current findings as the new accepted baseline",
    )
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=FAMILY_NAMES, default="erdos_renyi")
    parser.add_argument("--nodes", type=int, default=40, help="number of nodes of the start graph")
    parser.add_argument("--changes", type=int, default=100, help="number of topology changes")
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for graph, workload and algorithm"
    )
    _add_engine_argument(
        parser,
        "drives the maintainer for churn/history, and selects the verification "
        "reference for protocol",
    )
    parser.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the generated workload (graph + changes) to a JSON trace file",
    )
    parser.add_argument(
        "--load-trace",
        metavar="PATH",
        default=None,
        help="replay a workload previously written with --save-trace instead of generating one",
    )
    parser.add_argument(
        "--save-scenario",
        metavar="PATH",
        default=None,
        help="also write the scenario spec this command builds from its flags "
        "(replayable with 'repro-mis run --scenario PATH')",
    )


def _add_engine_argument(parser: argparse.ArgumentParser, role: str) -> None:
    """Add ``--engine`` with choices sourced live from the backend registry."""
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default="template",
        help="sequential MIS backend ('template' = paper-shaped reference, 'fast' = "
        "array-backed, 'fast-csr' = fast + vectorized CSR repair wave, all with "
        f"identical outputs; any registered backend works); {role}",
    )


# ----------------------------------------------------------------------
# Spec building (the CLI's flags -> ScenarioSpec translation)
# ----------------------------------------------------------------------
def _workload_parts_from_arguments(arguments) -> Tuple[Optional[GraphSpec], WorkloadSpec]:
    """The (graph, workload) spec parts a churn/protocol/history command describes."""
    if getattr(arguments, "load_trace", None):
        return None, WorkloadSpec(kind="trace", path=arguments.load_trace)
    graph = GraphSpec(family=arguments.family, nodes=arguments.nodes, seed=arguments.seed)
    workload = WorkloadSpec(
        kind="mixed_churn", num_changes=arguments.changes, seed=arguments.seed + 1
    )
    return graph, workload


def _scenario_from_arguments(arguments, backend: BackendSpec, name: str) -> ScenarioSpec:
    graph, workload = _workload_parts_from_arguments(arguments)
    spec = ScenarioSpec(
        name=name,
        seed=arguments.seed + 2,
        graph=graph,
        workload=workload,
        backend=backend,
    )
    if getattr(arguments, "save_scenario", None):
        spec.save(arguments.save_scenario)
        print(f"scenario spec written to {arguments.save_scenario}")
    return spec


def _session_or_exit(spec: ScenarioSpec) -> Session:
    try:
        return Session(spec)
    except ScenarioSpecError as error:
        raise SystemExit(str(error)) from None


def _materialize_or_exit(spec: ScenarioSpec):
    try:
        return spec.materialize()
    except ScenarioSpecError as error:
        raise SystemExit(str(error)) from None


def _maybe_save_trace(arguments, graph, changes) -> None:
    if not getattr(arguments, "save_trace", None):
        return
    from repro.workloads.trace import save_trace

    metadata = None
    if not getattr(arguments, "load_trace", None):
        metadata = {
            "family": arguments.family,
            "nodes": arguments.nodes,
            "seed": arguments.seed,
        }
    save_trace(arguments.save_trace, changes, graph, metadata=metadata)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    command = arguments.command
    requested = [flag for flag in _REGISTRY_TABLES if getattr(arguments, flag)]
    if requested:
        if command is not None:
            parser.error(
                "--list-engines / --list-networks / --list-sinks / "
                "--list-schedulers cannot be combined with a command"
            )
        _print_registries(requested)
        return 0
    if command is None:
        parser.error(
            "a command is required (or --list-engines / --list-networks / "
            "--list-sinks / --list-schedulers)"
        )
    if command == "families":
        return _run_families()
    if command == "run":
        return _run_scenario_command(arguments)
    if command == "churn":
        return _run_churn(arguments)
    if command == "protocol":
        return _run_protocol(arguments)
    if command == "lowerbound":
        return _run_lowerbound(arguments)
    if command == "history":
        return _run_history(arguments)
    if command == "bisect":
        return _run_bisect(arguments)
    if command == "serve":
        return _run_serve(arguments)
    if command == "client":
        return _run_client(arguments)
    if command == "lint":
        return _run_lint(arguments)
    raise AssertionError(f"unhandled command {command!r}")  # pragma: no cover


def _run_lint(arguments: argparse.Namespace) -> int:
    # Imported lazily: the lint framework parses the whole tree and is only
    # needed by this one command.
    from pathlib import Path

    from repro.analysis.lint import (
        DEFAULT_PATHS,
        BaselineError,
        UnknownCheckerError,
        run_lint_command,
    )

    try:
        return run_lint_command(
            root=Path(arguments.root),
            paths=tuple(arguments.paths) if arguments.paths else DEFAULT_PATHS,
            output_format=arguments.output_format,
            baseline_path=Path(arguments.baseline) if arguments.baseline else None,
            no_baseline=arguments.no_baseline,
            select=arguments.select,
            ignore=arguments.ignore,
            write_baseline_path=(
                Path(arguments.write_baseline) if arguments.write_baseline else None
            ),
        )
    except (UnknownCheckerError, BaselineError) as error:
        print(f"repro-mis lint: {error}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Registry introspection
# ----------------------------------------------------------------------
def _engine_rows() -> List[List[str]]:
    rows = []
    for name in available_engines():
        try:
            engine = create_engine(name)
        except Exception as error:  # a broken third-party factory: still list it
            rows.append([name, f"<factory error: {error}>", "-", "-"])
            continue
        cls = type(engine)
        batch = "native" if "apply_batch" in vars(cls) else "inherited"
        snapshot = "custom" if "snapshot" in vars(cls) else "label-level"
        rows.append([name, f"{cls.__module__}.{cls.__name__}", batch, snapshot])
    return rows


def _network_rows() -> List[List[str]]:
    rows = []
    for name in available_networks():
        for protocol in network_protocols(name):
            factory = resolve_network(name, protocol)
            rows.append([name, protocol, getattr(factory, "__name__", repr(factory))])
    return rows


def _sink_rows() -> List[List[str]]:
    rows = []
    for name in available_sinks():
        factory = get_sink_factory(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        rows.append([name, getattr(factory, "__name__", repr(factory)), doc[0] if doc else ""])
    return rows


def _scheduler_rows() -> List[List[str]]:
    from repro.distributed.scheduler import (
        CHANNEL_DETERMINISTIC_SCHEDULERS,
        SCHEDULER_KINDS,
    )

    rows = []
    for kind in sorted(SCHEDULER_KINDS):
        cls, params = SCHEDULER_KINDS[kind]
        rows.append(
            [
                kind,
                cls.__name__,
                ", ".join(params) if params else "-",
                "yes" if kind in CHANNEL_DETERMINISTIC_SCHEDULERS else "no",
            ]
        )
    return rows


#: argparse flag attribute -> (table title, column headers, row builder).
#: All four registries render through the single loop in
#: :func:`_print_registries`; a new registry only adds an entry here.
_REGISTRY_TABLES = {
    "list_engines": (
        "Registered engine backends (repro.core.engine_api)",
        ["engine", "implementation", "batch", "snapshot"],
        _engine_rows,
    ),
    "list_networks": (
        "Registered network backends (repro.distributed.network_api)",
        ["network", "protocol", "factory"],
        _network_rows,
    ),
    "list_sinks": (
        "Registered metric sinks (repro.scenario.sinks)",
        ["sink", "factory", "description"],
        _sink_rows,
    ),
    "list_schedulers": (
        "Registered async delay schedulers (repro.distributed.scheduler)",
        ["scheduler", "implementation", "parameters", "channel-deterministic"],
        _scheduler_rows,
    ),
}


def _print_registries(requested: Sequence[str]) -> None:
    """Render the requested registry tables (``_REGISTRY_TABLES`` keys)."""
    for flag in requested:
        title, headers, rows = _REGISTRY_TABLES[flag]
        print(format_table(headers, rows(), title=title))


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _run_families() -> int:
    print(format_table(["family"], [[name] for name in FAMILY_NAMES], title="Graph families"))
    return 0


def _run_scenario_command(arguments) -> int:
    from pathlib import Path

    from repro.distributed.state import NetworkStateError

    if arguments.checkpoint_every or arguments.checkpoint_path:
        if not (arguments.checkpoint_every and arguments.checkpoint_path):
            raise SystemExit("--checkpoint-every and --checkpoint-path go together")
        if arguments.checkpoint_every < 1:
            raise SystemExit("--checkpoint-every must be a positive change count")
        # Fail before any change is applied, not at the first write.
        parent = Path(arguments.checkpoint_path).resolve().parent
        if not parent.is_dir():
            raise SystemExit(
                f"--checkpoint-path directory {str(parent)!r} does not exist"
            )
    if bool(arguments.scenario) == bool(arguments.resume_from):
        raise SystemExit("pass exactly one of --scenario or --resume-from")
    try:
        session = _build_run_session(arguments)
    except (CheckpointFormatError, NetworkStateError, ScenarioSpecError, ValueError) as error:
        raise SystemExit(str(error)) from None
    result = _stream_with_checkpoints(session, arguments)
    rows = [
        ["runner", result.runner],
        ["backend", result.backend],
        ["changes applied", result.num_changes],
        ["elapsed seconds", result.elapsed_s],
        ["per-change microseconds", result.per_change_us],
        ["final MIS size", result.final_mis_size],
        ["final node count", result.final_num_nodes],
        ["verified", "yes" if result.verified else "skipped"],
    ]
    for key, value in sorted(result.summary.items()):
        if isinstance(value, dict):
            rows.append([key, value.get("mean", "")])
        else:
            rows.append([key, value])
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"scenario {result.name or arguments.scenario or arguments.resume_from}",
            float_format=".3f",
        )
    )
    return 0


def _build_run_session(arguments) -> Session:
    """Build the ``run`` command's session, fresh or resumed from a file."""
    overrides = {}
    if arguments.engine:
        overrides["engine"] = arguments.engine
    if arguments.network:
        overrides["network"] = arguments.network
    if arguments.protocol:
        overrides["protocol"] = arguments.protocol
    if arguments.workers is not None:
        # --workers N replaces the spec's parallel block outright; 0/1 strips
        # it, so the same flag also forces a parallel spec back to serial.
        overrides["parallel"] = (
            ParallelSpec(workers=arguments.workers) if arguments.workers > 1 else None
        )

    if arguments.resume_from:
        checkpoint = load_checkpoint(arguments.resume_from)
        if checkpoint.runner != "protocol" and (arguments.network or arguments.protocol):
            raise ScenarioSpecError(
                "--network/--protocol only apply to protocol-runner scenarios; "
                f"{arguments.resume_from} declares runner={checkpoint.runner!r}"
            )
        if arguments.protocol:
            raise ScenarioSpecError(
                "--protocol cannot change on resume (snapshots are per-protocol); "
                "only --engine/--network switch the backend"
            )
        if arguments.workers is not None:
            import dataclasses

            checkpoint = dataclasses.replace(
                checkpoint,
                spec=checkpoint.spec.with_backend(parallel=overrides.pop("parallel")),
            )
        session = Session.resume(
            checkpoint, engine=arguments.engine, network=arguments.network
        )
        print(
            f"resuming from {arguments.resume_from} at change {checkpoint.position} "
            f"({checkpoint.remaining_changes} remaining)"
        )
        return session

    spec = ScenarioSpec.load(arguments.scenario)
    if spec.backend.runner != "protocol" and (arguments.network or arguments.protocol):
        raise ScenarioSpecError(
            "--network/--protocol only apply to protocol-runner scenarios; "
            f"{arguments.scenario} declares runner={spec.backend.runner!r}"
        )
    if overrides:
        spec = spec.with_backend(**overrides)
    return Session(spec)


def _stream_with_checkpoints(session: Session, arguments):
    """Stream the session, writing a checkpoint file every N applied changes."""
    every = arguments.checkpoint_every
    if not every:
        return session.run(verify=not arguments.no_verify)
    last_written = session.position
    while not session.done:
        if session.step() is None:
            break
        if session.position - last_written >= every:
            try:
                save_checkpoint(arguments.checkpoint_path, session.checkpoint())
            except OSError as error:
                raise SystemExit(
                    f"cannot write checkpoint to {arguments.checkpoint_path}: {error}"
                ) from None
            last_written = session.position
            print(
                f"checkpoint written to {arguments.checkpoint_path} "
                f"(position {session.position})"
            )
    return session.run(verify=not arguments.no_verify)


def _run_churn(arguments) -> int:
    backend = BackendSpec(runner="sequential", engine=arguments.engine)
    spec = _scenario_from_arguments(arguments, backend, name=f"churn-{arguments.structure}")

    if arguments.structure == "matching":
        # Only the materialized workload is shared; the matcher maintains
        # its own structure (no MIS session is built).
        graph, changes = _materialize_or_exit(spec)
        matcher = DynamicMaximalMatching(
            seed=arguments.seed + 2, initial_graph=graph, engine=arguments.engine
        )
        adjustments: List[int] = []
        for change in changes:
            reports = matcher.apply(change)
            adjustments.append(sum(report.num_adjustments for report in reports))
        matcher.verify()
        _maybe_save_trace(arguments, graph, changes)
        rows = [
            ["structure", "maximal matching (MIS on L(G))"],
            ["changes applied", len(changes)],
            ["mean adjustments per change", mean(adjustments)],
            ["max adjustments for one change", max(adjustments) if adjustments else 0],
            ["final matching size", matcher.matching_size()],
        ]
    else:
        session = _session_or_exit(spec)
        graph, changes = session.initial_graph, session.changes
        session.run(verify=True)
        _maybe_save_trace(arguments, graph, changes)
        stats = session.maintainer.statistics
        rows = [
            ["structure", f"{arguments.structure} (engine={arguments.engine})"],
            ["changes applied", stats.num_changes],
            ["mean influenced set |S| (Theorem 1: <= 1)", stats.mean_influenced_size()],
            ["mean adjustments per change (<= 1)", stats.mean_adjustments()],
            ["max adjustments for one change", stats.max_adjustments()],
            ["final MIS size", len(session.mis())],
        ]
        if arguments.structure == "clustering":
            rows.append(["clusters (= MIS size)", len(session.mis())])
            rows.append(["cluster assignment of every node", "node -> earliest MIS neighbor"])
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"{arguments.structure} under {len(changes)} changes on "
            f"{arguments.family}(n={graph.num_nodes()})",
            float_format=".3f",
        )
    )
    return 0


def _run_protocol(arguments) -> int:
    protocol = {"buffered": "buffered", "direct": "direct", "async": "async-direct"}[
        arguments.protocol
    ]
    backend = BackendSpec(
        runner="protocol",
        engine=arguments.engine,
        network=arguments.network,
        protocol=protocol,
    )
    spec = _scenario_from_arguments(arguments, backend, name=f"protocol-{arguments.protocol}")
    session = _session_or_exit(spec)
    graph, changes = session.initial_graph, session.changes
    session.run(verify=True)
    _maybe_save_trace(arguments, graph, changes)
    metrics = session.network.metrics
    rows = []
    for kind in metrics.change_kinds():
        rows.append(
            [
                kind,
                metrics.mean("adjustments", kind),
                metrics.mean("rounds", kind),
                metrics.mean("broadcasts", kind),
                metrics.mean("bits", kind),
            ]
        )
    rows.append(
        [
            "ALL",
            metrics.mean("adjustments"),
            metrics.mean("rounds"),
            metrics.mean("broadcasts"),
            metrics.mean("bits"),
        ]
    )
    print(
        format_table(
            ["change type", "mean adjustments", "mean rounds", "mean broadcasts", "mean bits"],
            rows,
            title=f"protocol={arguments.protocol} on {arguments.family}(n={graph.num_nodes()}), "
            f"{len(changes)} changes",
            float_format=".3f",
        )
    )
    if getattr(arguments, "compare_recompute", False):
        baseline = StaticRecomputeDynamicMIS("luby", seed=arguments.seed + 2, initial_graph=graph)
        baseline.apply_sequence(changes)
        print()
        print(
            format_table(
                ["algorithm", "mean rounds", "mean broadcasts"],
                [
                    ["this protocol", metrics.mean("rounds"), metrics.mean("broadcasts")],
                    [
                        "Luby recompute per change",
                        baseline.metrics.mean("rounds"),
                        baseline.metrics.mean("broadcasts"),
                    ],
                ],
                title="Comparison with the static recompute baseline",
                float_format=".2f",
            )
        )
    return 0


def _run_lowerbound(arguments) -> int:
    deterministic = run_deterministic_lower_bound(arguments.side_size)
    randomized = [
        run_randomized_on_lower_bound_instance(
            arguments.side_size, seed=seed, engine=arguments.engine
        )
        for seed in range(arguments.seeds)
    ]
    print(
        format_table(
            [
                "algorithm",
                "worst single-change adjustments",
                "total adjustments",
                "mean per change",
            ],
            [
                [
                    "deterministic greedy",
                    deterministic.max_adjustments,
                    deterministic.total_adjustments,
                    deterministic.mean_adjustments,
                ],
                [
                    f"randomized (mean over {arguments.seeds} seeds)",
                    mean([run.max_adjustments for run in randomized]),
                    mean([run.total_adjustments for run in randomized]),
                    mean([run.mean_adjustments for run in randomized]),
                ],
            ],
            title=f"K_{{{arguments.side_size},{arguments.side_size}}} deletion sequence "
            "(paper, Section 1.1 lower bound)",
            float_format=".3f",
        )
    )
    return 0


def _run_history(arguments) -> int:
    graph_spec = GraphSpec(
        family=arguments.family, nodes=arguments.nodes, seed=arguments.seed
    )
    graph = graph_spec.build()
    histories = alternative_histories(
        graph, num_histories=arguments.histories, seed=arguments.seed + 1
    )

    def runner(history, seed):
        return replay_history_mis(history, seed, engine=arguments.engine)

    identical = all(
        outputs_identical_across_histories(histories, seed, runner=runner) for seed in range(10)
    )
    distributions = mis_distribution_over_histories(
        histories, seeds=range(arguments.samples), runner=runner
    )
    distance = max_pairwise_distance(distributions)
    print(
        format_table(
            ["check", "result"],
            [
                ["histories compared", len(histories)],
                ["identical output per seed across histories", "yes" if identical else "NO"],
                ["max total-variation distance between history distributions", distance],
            ],
            title=f"History independence on {arguments.family}(n={arguments.nodes})",
            float_format=".4f",
        )
    )
    return 0 if identical and distance < 1e-9 else 1


def _parse_backend_pair(value: Optional[str], flag: str) -> Optional[Tuple[str, str]]:
    if value is None:
        return None
    parts = tuple(part.strip() for part in value.split(",") if part.strip())
    if len(parts) != 2:
        raise SystemExit(
            f"{flag} needs exactly two comma-separated backend names, got {value!r}"
        )
    return parts


def _run_bisect(arguments) -> int:
    import json
    from pathlib import Path

    from repro.scenario import bisect_first_divergence

    if bool(arguments.scenario) == bool(arguments.from_dump):
        raise SystemExit("pass exactly one of --scenario or --from-dump")
    networks = _parse_backend_pair(arguments.networks, "--networks")
    engines = _parse_backend_pair(arguments.engines, "--engines")
    if arguments.scenario:
        spec = ScenarioSpec.load(arguments.scenario)
        source = arguments.scenario
    else:
        source = arguments.from_dump
        try:
            document = json.loads(Path(source).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"cannot read divergence dump {source}: {error}") from None
        record = document.get("scenario") if isinstance(document, dict) else None
        if record is None:
            raise SystemExit(
                f"{source} embeds no scenario spec; only dumps written by "
                "scenario-driven differentials can seed a bisect"
            )
        spec = ScenarioSpec.from_dict(record)
        if networks is None and engines is None and arguments.resume_at is None:
            # A cross-backend dump names its (reference, candidate) pair --
            # reuse it so `repro-mis bisect --from-dump d.json` just works.
            dumped = tuple(document.get("networks") or ())
            if len(dumped) == 2 and dumped[0] != dumped[1]:
                networks = dumped
    try:
        result = bisect_first_divergence(
            spec,
            networks=networks,
            engines=engines,
            resume_at=arguments.resume_at,
            through_json=not arguments.no_json,
        )
    except (ScenarioSpecError, ValueError) as error:
        raise SystemExit(str(error)) from None
    comparison = []
    if networks is not None:
        comparison.append(f"networks {networks[0]} vs {networks[1]}")
    if engines is not None:
        comparison.append(f"engines {engines[0]} vs {engines[1]}")
    if arguments.resume_at is not None:
        comparison.append(f"resume at change {arguments.resume_at}")
    rows = [
        ["comparison", "; ".join(comparison)],
        ["changes in run", result.num_changes],
        ["probes", ", ".join(str(position) for position in result.probes)],
        ["diverged", "yes" if result.diverged else "no"],
    ]
    if result.diverged:
        rows.append(["first divergent change", result.position])
        rows.append(["change applied there", repr(result.change)])
        rows.append(["detail", result.detail])
    print(format_table(["quantity", "value"], rows, title=f"bisect {source}"))
    return 1 if result.diverged else 0


def _run_serve(arguments) -> int:
    from repro.service import ServiceConfig, run_service
    from repro.service.protocol import WireError

    config = ServiceConfig(
        spool_dir=arguments.spool,
        bind=arguments.bind,
        shards=arguments.shards,
        max_live=arguments.max_live,
        engine=arguments.engine,
        network=arguments.network,
        workers_per_shard=arguments.workers_per_shard,
    )
    try:
        return run_service(config)
    except (WireError, ValueError, OSError) as error:
        raise SystemExit(str(error)) from None


def _run_client(arguments) -> int:
    import json

    from repro.service import ServiceClient, ServiceClientError
    from repro.service.protocol import WireError

    op = arguments.op
    if op in ("create", "apply", "query", "checkpoint", "evict", "close"):
        if not arguments.session:
            raise SystemExit(f"'{op}' needs --session")
    try:
        with ServiceClient(arguments.connect) as client:
            if op == "ping":
                result = client.ping()
            elif op == "create":
                if not arguments.scenario:
                    raise SystemExit("'create' needs --scenario (a spec file)")
                spec = ScenarioSpec.load(arguments.scenario)
                result = client.create(arguments.session, spec.to_dict())
            elif op == "apply":
                result = client.apply(arguments.session, steps=arguments.steps)
            elif op == "query":
                result = client.query(arguments.session, arguments.what)
            elif op == "checkpoint":
                result = client.checkpoint(arguments.session)
            elif op == "evict":
                result = client.evict(arguments.session)
            elif op == "close":
                result = client.close_session(arguments.session)
            elif op == "list":
                result = client.list_sessions()
            elif op == "stats":
                result = client.stats()
            else:  # shutdown
                result = client.shutdown()
    except ScenarioSpecError as error:
        raise SystemExit(str(error)) from None
    except ServiceClientError as error:
        raise SystemExit(f"daemon error ({error.kind}): {error}") from None
    except (WireError, ConnectionError, OSError) as error:
        raise SystemExit(f"cannot reach daemon at {arguments.connect}: {error}") from None
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
