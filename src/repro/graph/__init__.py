"""Dynamic graph substrate.

This subpackage provides everything the simulated distributed system needs to
represent and evolve network topologies:

* :mod:`repro.graph.dynamic_graph` -- the mutable undirected graph store used
  by every engine in the library.
* :mod:`repro.graph.generators` -- static graph families used as workload
  starting points (Erdos-Renyi, preferential attachment, stars, paths,
  complete bipartite, planted clusterings, ...).
* :mod:`repro.graph.line_graph` -- the line-graph reduction used to obtain a
  history-independent maximal matching from a dynamic MIS.
* :mod:`repro.graph.clique_blowup` -- the Luby clique-blowup reduction used to
  obtain a history-independent (Delta+1)-coloring from a dynamic MIS.
* :mod:`repro.graph.validation` -- structural sanity checks shared by tests
  and benchmark harnesses.
"""

from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.graph.line_graph import LineGraphView, line_graph_of
from repro.graph.clique_blowup import CliqueBlowupView, clique_blowup_of
from repro.graph import generators, validation

__all__ = [
    "DynamicGraph",
    "GraphError",
    "LineGraphView",
    "line_graph_of",
    "CliqueBlowupView",
    "clique_blowup_of",
    "generators",
    "validation",
]
