"""Structural sanity checks for graphs and derived structures.

These checks are shared by the test suite, the benchmark harnesses and the
engines' internal assertions.  They raise :class:`ValidationError` with a
descriptive message rather than returning booleans, so failures surface the
exact inconsistency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set

from repro.graph.dynamic_graph import DynamicGraph, Node


class ValidationError(AssertionError):
    """Raised when a structural invariant is violated."""


def check_graph_consistency(graph: DynamicGraph) -> None:
    """Verify symmetry, absence of self loops and the cached edge count."""
    adjacency = graph.adjacency_dict()
    edge_endpoints = 0
    for node, neighbors in adjacency.items():
        if node in neighbors:
            raise ValidationError(f"self loop at node {node!r}")
        for other in neighbors:
            if other not in adjacency:
                raise ValidationError(f"dangling neighbor {other!r} of {node!r}")
            if node not in adjacency[other]:
                raise ValidationError(f"asymmetric edge ({node!r}, {other!r})")
        edge_endpoints += len(neighbors)
    if edge_endpoints != 2 * graph.num_edges():
        raise ValidationError(
            f"edge count mismatch: counter says {graph.num_edges()}, adjacency has "
            f"{edge_endpoints // 2}"
        )


def check_independent_set(graph: DynamicGraph, independent_set: Iterable[Node]) -> None:
    """Verify that no two members of ``independent_set`` are adjacent."""
    members = set(independent_set)
    for node in members:
        if not graph.has_node(node):
            raise ValidationError(f"independent-set member {node!r} is not in the graph")
        conflict = members & set(graph.neighbors(node))
        if conflict:
            raise ValidationError(
                f"nodes {node!r} and {sorted(conflict, key=repr)[0]!r} are adjacent "
                f"but both selected"
            )


def check_maximality(graph: DynamicGraph, independent_set: Iterable[Node]) -> None:
    """Verify that every node outside the set has a neighbor inside it."""
    members = set(independent_set)
    for node in graph.nodes():
        if node in members:
            continue
        if not (members & set(graph.neighbors(node))):
            raise ValidationError(f"node {node!r} could be added: the set is not maximal")


def check_maximal_independent_set(graph: DynamicGraph, independent_set: Iterable[Node]) -> None:
    """Verify both independence and maximality."""
    members = set(independent_set)
    check_independent_set(graph, members)
    check_maximality(graph, members)


def check_matching(graph: DynamicGraph, matching: Iterable[tuple]) -> None:
    """Verify that ``matching`` is a set of disjoint edges of ``graph``."""
    used: Set[Node] = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            raise ValidationError(f"matched pair ({u!r}, {v!r}) is not an edge")
        if u in used or v in used:
            raise ValidationError(f"node reused by matching at edge ({u!r}, {v!r})")
        used.add(u)
        used.add(v)


def check_maximal_matching(graph: DynamicGraph, matching: Iterable[tuple]) -> None:
    """Verify that ``matching`` is a maximal matching of ``graph``."""
    matching = list(matching)
    check_matching(graph, matching)
    used: Set[Node] = set()
    for u, v in matching:
        used.add(u)
        used.add(v)
    for u, v in graph.edges():
        if u not in used and v not in used:
            raise ValidationError(f"edge ({u!r}, {v!r}) could be added: matching is not maximal")


def check_proper_coloring(graph: DynamicGraph, colors: Mapping[Node, int]) -> None:
    """Verify that ``colors`` assigns different colors to adjacent nodes."""
    for node in graph.nodes():
        if node not in colors:
            raise ValidationError(f"node {node!r} has no color")
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise ValidationError(f"adjacent nodes {u!r} and {v!r} share color {colors[u]}")


def check_clustering(graph: DynamicGraph, clusters: Mapping[Node, int]) -> None:
    """Verify that ``clusters`` assigns a cluster id to every node of the graph."""
    graph_nodes = set(graph.nodes())
    clustered = set(clusters)
    missing = graph_nodes - clustered
    if missing:
        raise ValidationError(f"nodes without a cluster: {sorted(missing, key=repr)[:5]}")
    extra = clustered - graph_nodes
    if extra:
        raise ValidationError(f"clustered nodes outside the graph: {sorted(extra, key=repr)[:5]}")


def partition_from_labels(labels: Mapping[Node, int]) -> Dict[int, Set[Node]]:
    """Group nodes by cluster label (utility shared by clustering code and tests)."""
    partition: Dict[int, Set[Node]] = {}
    for node, label in labels.items():
        partition.setdefault(label, set()).add(node)
    return partition
