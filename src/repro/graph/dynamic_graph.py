"""A mutable undirected graph tailored for dynamic topology-change workloads.

The paper's model (Section 2) is an undirected network graph ``G = (V, E)``
that evolves through single topology changes: edge insertions and deletions,
node insertions and deletions, and node unmuting.  Every engine in this
library -- the sequential template engine, the synchronous and asynchronous
distributed simulators, and the reduction-based matching/coloring maintainers
-- manipulates an instance of :class:`DynamicGraph`.

Design notes
------------
* Nodes are arbitrary hashable identifiers.  The library mostly uses ints,
  while the reductions use tuples (edge endpoints for the line graph, node /
  copy-index pairs for the clique blowup).
* Adjacency is stored as ``dict[node, set[node]]`` which gives O(1) expected
  insertion, deletion and membership checks, and O(deg) neighbor iteration.
* The class never mutates caller-provided collections and never exposes its
  internal sets directly (``neighbors`` returns a frozen copy by default, or
  a live iterator via :meth:`iter_neighbors` for hot paths).
* A monotonically increasing ``version`` counter is bumped on every mutation;
  derived views (line graph, blowup) and caches use it to detect staleness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class GraphError(Exception):
    """Raised when an operation would violate graph consistency.

    Examples include inserting an edge whose endpoints are absent, deleting a
    non-existent node, or adding a self loop (the paper's model has no self
    loops: a node never communicates with itself).
    """


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical ordered representation of the undirected edge.

    Undirected edges are stored and reported as a sorted 2-tuple so that
    ``(u, v)`` and ``(v, u)`` always compare equal.  Sorting is done on
    ``repr`` if the nodes are not mutually orderable, which keeps the function
    total for heterogeneous node types (used by the reductions).
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class DynamicGraph:
    """Mutable undirected simple graph with O(1) expected updates.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of initial edges, given as 2-tuples.  Endpoints not
        already present are added implicitly.

    Examples
    --------
    >>> g = DynamicGraph(nodes=[1, 2, 3], edges=[(1, 2)])
    >>> g.has_edge(2, 1)
    True
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.remove_node(1)
    >>> g.num_edges()
    1
    """

    __slots__ = ("_adjacency", "_num_edges", "_version")

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adjacency: Dict[Node, Set[Node]] = {}
        self._num_edges: int = 0
        self._version: int = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                if u not in self._adjacency:
                    self.add_node(u)
                if v not in self._adjacency:
                    self.add_node(v)
                if not self.has_edge(u, v):
                    self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped on every successful mutation)."""
        return self._version

    def num_nodes(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    def nodes(self) -> List[Node]:
        """Return a list of all nodes (copy; safe to mutate)."""
        return list(self._adjacency)

    def edges(self) -> List[Edge]:
        """Return all edges in canonical form (copy; safe to mutate)."""
        seen: Set[Edge] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                seen.add(canonical_edge(u, v))
        return sorted(seen, key=repr)

    def has_node(self, node: Node) -> bool:
        """Return True iff ``node`` is present."""
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return True iff the undirected edge ``{u, v}`` is present."""
        nbrs = self._adjacency.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, node: Node) -> int:
        """Degree of ``node``.

        Raises
        ------
        GraphError
            If the node is not present.
        """
        try:
            return len(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} is not in the graph") from None

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """Return the neighbor set of ``node`` as an immutable snapshot."""
        try:
            return frozenset(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} is not in the graph") from None

    def iter_neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over neighbors without copying (do not mutate meanwhile)."""
        try:
            return iter(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} is not in the graph") from None

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node.

        Raises
        ------
        GraphError
            If the node already exists.
        """
        if node in self._adjacency:
            raise GraphError(f"node {node!r} already exists")
        self._adjacency[node] = set()
        self._version += 1

    def add_node_with_edges(self, node: Node, neighbors: Iterable[Node]) -> None:
        """Insert ``node`` together with edges to existing ``neighbors``.

        This mirrors the paper's node-insertion topology change, in which a
        new node arrives "possibly with multiple edges".

        Raises
        ------
        GraphError
            If the node exists, a neighbor is missing, or a neighbor equals
            the node itself.
        """
        neighbor_list = list(neighbors)
        for v in neighbor_list:
            if v == node:
                raise GraphError("self loops are not allowed")
            if v not in self._adjacency:
                raise GraphError(f"neighbor {v!r} is not in the graph")
        if len(set(neighbor_list)) != len(neighbor_list):
            raise GraphError("duplicate neighbors in node insertion")
        self.add_node(node)
        for v in neighbor_list:
            self.add_edge(node, v)

    def remove_node(self, node: Node) -> FrozenSet[Node]:
        """Delete ``node`` and all incident edges; return its old neighbors.

        Raises
        ------
        GraphError
            If the node is not present.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} is not in the graph")
        old_neighbors = frozenset(self._adjacency[node])
        for v in old_neighbors:
            self._adjacency[v].discard(node)
            self._num_edges -= 1
        del self._adjacency[node]
        self._version += 1
        return old_neighbors

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert the undirected edge ``{u, v}``.

        Raises
        ------
        GraphError
            If an endpoint is missing, the edge exists, or ``u == v``.
        """
        if u == v:
            raise GraphError("self loops are not allowed")
        if u not in self._adjacency:
            raise GraphError(f"node {u!r} is not in the graph")
        if v not in self._adjacency:
            raise GraphError(f"node {v!r} is not in the graph")
        if v in self._adjacency[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the undirected edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge is not present.
        """
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        self._version += 1

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def copy(self) -> "DynamicGraph":
        """Return an independent deep copy of the graph."""
        clone = DynamicGraph()
        clone._adjacency = {node: set(nbrs) for node, nbrs in self._adjacency.items()}
        clone._num_edges = self._num_edges
        clone._version = 0
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DynamicGraph":
        """Return the induced subgraph on ``nodes`` (missing nodes ignored)."""
        keep = {node for node in nodes if node in self._adjacency}
        sub = DynamicGraph(nodes=keep)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v)
        return sub

    def connected_components(self) -> List[Set[Node]]:
        """Return connected components as a list of node sets."""
        remaining = set(self._adjacency)
        components: List[Set[Node]] = []
        while remaining:
            root = next(iter(remaining))
            component = {root}
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for v in self._adjacency[node]:
                    if v not in component:
                        component.add(v)
                        frontier.append(v)
            remaining -= component
            components.append(component)
        return components

    def adjacency_dict(self) -> Dict[Node, FrozenSet[Node]]:
        """Return a read-only snapshot of the full adjacency structure."""
        return {node: frozenset(nbrs) for node, nbrs in self._adjacency.items()}

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adjacency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self.adjacency_dict() == other.adjacency_dict()

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(num_nodes={self.num_nodes()}, "
            f"num_edges={self.num_edges()})"
        )
