"""Line-graph reduction used for history-independent maximal matching.

The paper (Section 5, "Composability") observes that running a history
independent MIS algorithm on the line graph ``L(G)`` yields a history
independent *maximal matching* of ``G``: the nodes of ``L(G)`` are the edges
of ``G`` and two of them are adjacent when the corresponding edges share an
endpoint, so an independent set of ``L(G)`` is exactly a matching of ``G`` and
maximality carries over.

Two entry points are provided:

* :func:`line_graph_of` -- a one-shot construction of ``L(G)`` as a
  :class:`~repro.graph.dynamic_graph.DynamicGraph` whose node identifiers are
  the canonical edge tuples of ``G``.
* :class:`LineGraphView` -- an *incremental* view that keeps ``L(G)`` in sync
  as ``G`` changes and reports each topology change of ``G`` as the list of
  primitive changes it induces on ``L(G)``.  The dynamic matching maintainer
  (:mod:`repro.matching.dynamic_matching`) feeds those primitive changes, one
  at a time, into a dynamic MIS engine.

Primitive derived changes are returned as plain tuples so that this module
stays independent of the workload/change dataclasses:

``("add_node", edge_node, neighbor_edge_nodes)``
    A new node of ``L(G)`` appears, attached to the given existing nodes.
``("remove_node", edge_node)``
    A node of ``L(G)`` disappears (all incident edges with it).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.graph.dynamic_graph import DynamicGraph, GraphError, Node, canonical_edge

EdgeNode = Tuple[Node, Node]
DerivedChange = Tuple


def line_graph_of(graph: DynamicGraph) -> DynamicGraph:
    """Return the line graph ``L(G)`` of ``graph``.

    Node identifiers of the result are the canonical edge tuples of ``graph``.
    """
    line = DynamicGraph()
    edges = graph.edges()
    for edge in edges:
        line.add_node(edge)
    for node in graph.nodes():
        incident = [canonical_edge(node, other) for other in graph.neighbors(node)]
        for i in range(len(incident)):
            for j in range(i + 1, len(incident)):
                if not line.has_edge(incident[i], incident[j]):
                    line.add_edge(incident[i], incident[j])
    return line


class LineGraphView:
    """Incrementally maintained line graph of a dynamic base graph.

    The view owns a private copy of the base graph, so the caller applies
    changes exclusively through the view's mutators; each mutator updates both
    the base copy and the derived line graph and returns the induced primitive
    changes on ``L(G)`` in the order they must be applied.
    """

    def __init__(self, base: DynamicGraph | None = None) -> None:
        self._base = base.copy() if base is not None else DynamicGraph()
        self._line = line_graph_of(self._base)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def base_graph(self) -> DynamicGraph:
        """The tracked copy of the base graph ``G`` (do not mutate directly)."""
        return self._base

    @property
    def line_graph(self) -> DynamicGraph:
        """The derived line graph ``L(G)`` (do not mutate directly)."""
        return self._line

    def edge_node(self, u: Node, v: Node) -> EdgeNode:
        """The ``L(G)`` node identifier corresponding to base edge ``{u, v}``."""
        return canonical_edge(u, v)

    # ------------------------------------------------------------------
    # Mutators (mirror the base graph API, return derived changes)
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> List[DerivedChange]:
        """Insert an isolated node in ``G``; ``L(G)`` is unaffected."""
        self._base.add_node(node)
        return []

    def add_edge(self, u: Node, v: Node) -> List[DerivedChange]:
        """Insert edge ``{u, v}`` in ``G``; one node appears in ``L(G)``."""
        new_edge = canonical_edge(u, v)
        neighbors = self._incident_edge_nodes(u, exclude=v) + self._incident_edge_nodes(
            v, exclude=u
        )
        self._base.add_edge(u, v)
        self._line.add_node_with_edges(new_edge, neighbors)
        return [("add_node", new_edge, tuple(neighbors))]

    def remove_edge(self, u: Node, v: Node) -> List[DerivedChange]:
        """Delete edge ``{u, v}`` from ``G``; one node disappears from ``L(G)``."""
        gone_edge = canonical_edge(u, v)
        if not self._base.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the base graph")
        self._base.remove_edge(u, v)
        self._line.remove_node(gone_edge)
        return [("remove_node", gone_edge)]

    def add_node_with_edges(self, node: Node, neighbors: Iterable[Node]) -> List[DerivedChange]:
        """Insert a node of ``G`` with edges; each edge is a new ``L(G)`` node."""
        neighbor_list = list(neighbors)
        changes: List[DerivedChange] = self.add_node(node)
        for other in neighbor_list:
            changes.extend(self.add_edge(node, other))
        return changes

    def remove_node(self, node: Node) -> List[DerivedChange]:
        """Delete a node of ``G``; each incident edge is a removed ``L(G)`` node."""
        changes: List[DerivedChange] = []
        for other in sorted(self._base.neighbors(node), key=repr):
            changes.extend(self.remove_edge(node, other))
        self._base.remove_node(node)
        return changes

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _incident_edge_nodes(self, node: Node, exclude: Node) -> List[EdgeNode]:
        if not self._base.has_node(node):
            return []
        return [
            canonical_edge(node, other)
            for other in self._base.neighbors(node)
            if other != exclude
        ]
