"""Clique-blowup reduction used for history-independent (Delta+1)-coloring.

The paper (Section 5, "Composability") recalls the standard reduction of Luby:
given ``G`` and a palette of ``k >= Delta + 1`` colors, build ``G'`` where

* every node ``v`` of ``G`` becomes a clique ``{(v, 0), ..., (v, k-1)}``, and
* every edge ``{u, v}`` of ``G`` becomes the perfect matching
  ``{(u, i), (v, i)} for every i``.

Because ``(v, i)`` has exactly ``k - 1 + deg(v) <= k - 1 + Delta`` neighbors
and the clique guarantees at most one copy per node is selected, any maximal
independent set of ``G'`` selects *exactly one* copy ``(v, i)`` per node ``v``
whenever ``k >= Delta + 1``; interpreting ``i`` as the color of ``v`` yields a
proper coloring.  Running a history independent MIS algorithm on ``G'``
therefore yields a history independent coloring of ``G``.

As with the line graph, we expose a one-shot constructor and an incremental
view that translates base-graph changes into primitive derived changes
(``("add_node", node, neighbors)`` / ``("remove_node", node)`` /
``("add_edge", u, v)`` / ``("remove_edge", u, v)``).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.graph.dynamic_graph import DynamicGraph, GraphError, Node

CopyNode = Tuple[Node, int]
DerivedChange = Tuple


def clique_blowup_of(graph: DynamicGraph, num_colors: int) -> DynamicGraph:
    """Return the clique-blowup graph ``G'`` of ``graph`` with ``num_colors`` copies.

    Raises
    ------
    ValueError
        If ``num_colors`` is not larger than the maximum degree of ``graph``
        (the reduction then no longer guarantees one selected copy per node).
    """
    _check_palette(graph.max_degree(), num_colors)
    blowup = DynamicGraph()
    for node in graph.nodes():
        _add_clique(blowup, node, num_colors)
    for u, v in graph.edges():
        for i in range(num_colors):
            blowup.add_edge((u, i), (v, i))
    return blowup


class CliqueBlowupView:
    """Incrementally maintained clique-blowup of a dynamic base graph.

    Parameters
    ----------
    base:
        Initial base graph (copied).
    num_colors:
        Palette size ``k``.  Must stay strictly larger than the maximum degree
        of the base graph at all times; mutators enforce this.
    """

    def __init__(self, base: DynamicGraph | None = None, num_colors: int = 1) -> None:
        self._base = base.copy() if base is not None else DynamicGraph()
        if num_colors < 1:
            raise ValueError("num_colors must be at least 1")
        _check_palette(self._base.max_degree(), num_colors)
        self._num_colors = num_colors
        self._blowup = clique_blowup_of(self._base, num_colors)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def base_graph(self) -> DynamicGraph:
        """The tracked copy of the base graph (do not mutate directly)."""
        return self._base

    @property
    def blowup_graph(self) -> DynamicGraph:
        """The derived blowup graph (do not mutate directly)."""
        return self._blowup

    @property
    def num_colors(self) -> int:
        """Palette size ``k`` of the reduction."""
        return self._num_colors

    def copies_of(self, node: Node) -> List[CopyNode]:
        """All copy nodes of ``node`` in the blowup graph."""
        return [(node, i) for i in range(self._num_colors)]

    # ------------------------------------------------------------------
    # Mutators
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> List[DerivedChange]:
        """Insert an isolated base node; its clique appears in the blowup."""
        self._base.add_node(node)
        changes: List[DerivedChange] = []
        for i in range(self._num_colors):
            copy = (node, i)
            earlier = tuple((node, j) for j in range(i))
            self._blowup.add_node_with_edges(copy, earlier)
            changes.append(("add_node", copy, earlier))
        return changes

    def add_edge(self, u: Node, v: Node) -> List[DerivedChange]:
        """Insert base edge ``{u, v}``; a perfect matching appears in the blowup."""
        new_max_degree = max(self._base.degree(u), self._base.degree(v)) + 1
        _check_palette(new_max_degree, self._num_colors)
        self._base.add_edge(u, v)
        changes: List[DerivedChange] = []
        for i in range(self._num_colors):
            self._blowup.add_edge((u, i), (v, i))
            changes.append(("add_edge", (u, i), (v, i)))
        return changes

    def remove_edge(self, u: Node, v: Node) -> List[DerivedChange]:
        """Delete base edge ``{u, v}``; its matching disappears from the blowup."""
        if not self._base.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the base graph")
        self._base.remove_edge(u, v)
        changes: List[DerivedChange] = []
        for i in range(self._num_colors):
            self._blowup.remove_edge((u, i), (v, i))
            changes.append(("remove_edge", (u, i), (v, i)))
        return changes

    def add_node_with_edges(self, node: Node, neighbors: Iterable[Node]) -> List[DerivedChange]:
        """Insert a base node together with edges to existing base nodes."""
        neighbor_list = list(neighbors)
        changes = self.add_node(node)
        for other in neighbor_list:
            changes.extend(self.add_edge(node, other))
        return changes

    def remove_node(self, node: Node) -> List[DerivedChange]:
        """Delete a base node; its incident matchings and its clique disappear."""
        changes: List[DerivedChange] = []
        for other in sorted(self._base.neighbors(node), key=repr):
            changes.extend(self.remove_edge(node, other))
        self._base.remove_node(node)
        for i in range(self._num_colors):
            copy = (node, i)
            self._blowup.remove_node(copy)
            changes.append(("remove_node", copy))
        return changes


def color_assignment_from_mis(view_or_graph, mis_nodes: Iterable[CopyNode]) -> dict:
    """Extract the coloring ``{base node: color}`` from an MIS of the blowup.

    Accepts either a :class:`CliqueBlowupView` or a blowup
    :class:`DynamicGraph`; only the MIS membership matters.  Raises
    :class:`ValueError` if some base node has zero or more than one selected
    copy, which would indicate the MIS was computed on an inconsistent graph.
    """
    colors: dict = {}
    for copy in mis_nodes:
        base_node, color = copy
        if base_node in colors:
            raise ValueError(
                f"two copies of {base_node!r} selected: {colors[base_node]} and {color}"
            )
        colors[base_node] = color
    return colors


def _add_clique(blowup: DynamicGraph, node: Node, num_colors: int) -> None:
    for i in range(num_colors):
        blowup.add_node((node, i))
    for i in range(num_colors):
        for j in range(i + 1, num_colors):
            blowup.add_edge((node, i), (node, j))


def _check_palette(max_degree: int, num_colors: int) -> None:
    if num_colors <= max_degree:
        raise ValueError(
            f"palette of {num_colors} colors is too small for maximum degree {max_degree}; "
            f"need at least Delta + 1 = {max_degree + 1}"
        )
