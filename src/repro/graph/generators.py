"""Static graph families used as workload starting points.

Every generator returns a fresh :class:`~repro.graph.dynamic_graph.DynamicGraph`
with integer node identifiers ``0 .. n-1`` (except where documented).  All
randomized generators take an explicit ``seed`` and use a private
:class:`random.Random` instance, so workloads are reproducible and independent
of the global random state.

The families cover everything the paper's examples and our experiments need:

* general-purpose random graphs (Erdos-Renyi, preferential attachment,
  random geometric, near-regular),
* the structured graphs used in the paper's worked examples (stars, disjoint
  3-edge paths, complete bipartite graphs, complete bipartite minus a perfect
  matching),
* planted-clustering graphs for the correlation-clustering experiments.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Sequence, Tuple

from repro.graph.dynamic_graph import DynamicGraph, GraphError


def empty_graph(num_nodes: int = 0) -> DynamicGraph:
    """Graph with ``num_nodes`` isolated nodes and no edges."""
    _check_nonnegative(num_nodes, "num_nodes")
    return DynamicGraph(nodes=range(num_nodes))


def complete_graph(num_nodes: int) -> DynamicGraph:
    """The clique K_n."""
    _check_nonnegative(num_nodes, "num_nodes")
    graph = DynamicGraph(nodes=range(num_nodes))
    for u, v in itertools.combinations(range(num_nodes), 2):
        graph.add_edge(u, v)
    return graph


def path_graph(num_nodes: int) -> DynamicGraph:
    """The simple path P_n on ``num_nodes`` nodes (n - 1 edges)."""
    _check_nonnegative(num_nodes, "num_nodes")
    graph = DynamicGraph(nodes=range(num_nodes))
    for i in range(num_nodes - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(num_nodes: int) -> DynamicGraph:
    """The cycle C_n (requires at least 3 nodes)."""
    if num_nodes < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    graph = path_graph(num_nodes)
    graph.add_edge(num_nodes - 1, 0)
    return graph


def star_graph(num_leaves: int) -> DynamicGraph:
    """A star: node 0 is the center, nodes ``1 .. num_leaves`` are leaves.

    This is the graph from the paper's history-independence Example 1
    (Section 5): the worst-case MIS is the center alone (size 1), while random
    greedy picks all the leaves with probability ``1 - 1/n``.
    """
    _check_nonnegative(num_leaves, "num_leaves")
    graph = DynamicGraph(nodes=range(num_leaves + 1))
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_bipartite_graph(left_size: int, right_size: int) -> DynamicGraph:
    """The complete bipartite graph K_{left,right}.

    Nodes ``0 .. left_size-1`` form the left side ``L``; nodes
    ``left_size .. left_size+right_size-1`` form the right side ``R``.  This
    is the topology used by the paper's deterministic lower bound
    (Section 1.1, "Matching Lower Bounds").
    """
    _check_nonnegative(left_size, "left_size")
    _check_nonnegative(right_size, "right_size")
    total = left_size + right_size
    graph = DynamicGraph(nodes=range(total))
    for u in range(left_size):
        for v in range(left_size, total):
            graph.add_edge(u, v)
    return graph


def bipartite_sides(left_size: int, right_size: int) -> Tuple[List[int], List[int]]:
    """Return the (left, right) node lists matching :func:`complete_bipartite_graph`."""
    left = list(range(left_size))
    right = list(range(left_size, left_size + right_size))
    return left, right


def complete_bipartite_minus_matching(side_size: int) -> DynamicGraph:
    """Complete bipartite graph on two sides of ``side_size`` minus a perfect matching.

    Left node ``i`` is adjacent to every right node ``side_size + j`` with
    ``j != i``.  This is the graph from the paper's coloring example
    (Section 5, Example 3): random greedy 2-colors it with probability
    ``1 - 1/n``.
    """
    _check_nonnegative(side_size, "side_size")
    graph = DynamicGraph(nodes=range(2 * side_size))
    for i in range(side_size):
        for j in range(side_size):
            if i != j:
                graph.add_edge(i, side_size + j)
    return graph


def disjoint_paths_graph(num_paths: int, edges_per_path: int = 3) -> DynamicGraph:
    """``num_paths`` vertex-disjoint paths, each with ``edges_per_path`` edges.

    With the default of 3 edges per path this is the graph G_{3paths} from the
    paper's matching example (Section 5, Example 2): the worst-case maximal
    matching has one edge per path while random greedy on the line graph gets
    5/3 edges per path in expectation.
    """
    _check_nonnegative(num_paths, "num_paths")
    if edges_per_path < 1:
        raise ValueError("each path needs at least one edge")
    nodes_per_path = edges_per_path + 1
    graph = DynamicGraph(nodes=range(num_paths * nodes_per_path))
    for p in range(num_paths):
        base = p * nodes_per_path
        for i in range(edges_per_path):
            graph.add_edge(base + i, base + i + 1)
    return graph


def erdos_renyi_graph(num_nodes: int, edge_probability: float, seed: int = 0) -> DynamicGraph:
    """G(n, p) random graph."""
    _check_nonnegative(num_nodes, "num_nodes")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph(nodes=range(num_nodes))
    for u, v in itertools.combinations(range(num_nodes), 2):
        if rng.random() < edge_probability:
            graph.add_edge(u, v)
    return graph


def gnm_random_graph(num_nodes: int, num_edges: int, seed: int = 0) -> DynamicGraph:
    """G(n, m) random graph: exactly ``num_edges`` distinct edges, uniform."""
    _check_nonnegative(num_nodes, "num_nodes")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges in a graph on {num_nodes} nodes")
    rng = random.Random(seed)
    graph = DynamicGraph(nodes=range(num_nodes))
    placed = 0
    while placed < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        placed += 1
    return graph


def preferential_attachment_graph(
    num_nodes: int, edges_per_node: int, seed: int = 0
) -> DynamicGraph:
    """Barabasi-Albert style preferential attachment graph.

    Starts from a clique on ``edges_per_node + 1`` nodes; every subsequent
    node attaches to ``edges_per_node`` distinct existing nodes chosen with
    probability proportional to their degree.  Produces skewed degree
    distributions, which stress the abrupt-node-deletion broadcast bound
    O(min(log n, d(v*))).
    """
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be at least 1")
    if num_nodes < edges_per_node + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    graph = complete_graph(edges_per_node + 1)
    # Repeated-endpoint list implements degree-proportional sampling.
    endpoint_pool: List[int] = []
    for u, v in graph.edges():
        endpoint_pool.extend((u, v))
    for new_node in range(edges_per_node + 1, num_nodes):
        graph.add_node(new_node)
        targets: set = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(endpoint_pool))
        for target in targets:
            graph.add_edge(new_node, target)
            endpoint_pool.extend((new_node, target))
    return graph


def random_geometric_graph(num_nodes: int, radius: float, seed: int = 0) -> DynamicGraph:
    """Random geometric graph on the unit square with connection ``radius``."""
    _check_nonnegative(num_nodes, "num_nodes")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = DynamicGraph(nodes=range(num_nodes))
    radius_squared = radius * radius
    for u, v in itertools.combinations(range(num_nodes), 2):
        dx = points[u][0] - points[v][0]
        dy = points[u][1] - points[v][1]
        if dx * dx + dy * dy <= radius_squared:
            graph.add_edge(u, v)
    return graph


def near_regular_graph(num_nodes: int, degree: int, seed: int = 0) -> DynamicGraph:
    """A random graph in which every node has degree close to ``degree``.

    Built by superposing ``degree`` random perfect matchings (a standard
    approximation of a random regular graph that avoids the configuration
    model's rejection loops).  Degrees are at most ``degree`` and usually
    equal to it for even ``num_nodes``.
    """
    _check_nonnegative(num_nodes, "num_nodes")
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than num_nodes")
    rng = random.Random(seed)
    graph = DynamicGraph(nodes=range(num_nodes))
    for _ in range(degree):
        order = list(range(num_nodes))
        rng.shuffle(order)
        for i in range(0, num_nodes - 1, 2):
            u, v = order[i], order[i + 1]
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def planted_clusters_graph(
    cluster_sizes: Sequence[int],
    intra_probability: float = 0.9,
    inter_probability: float = 0.05,
    seed: int = 0,
) -> Tuple[DynamicGraph, List[List[int]]]:
    """Planted-partition graph for the correlation-clustering experiments.

    Returns the graph together with the planted clusters (lists of node ids).
    Nodes inside the same planted cluster are adjacent with probability
    ``intra_probability``; nodes in different clusters with probability
    ``inter_probability``.  With the defaults, the planted partition is a
    near-optimal correlation clustering, giving a meaningful reference cost.
    """
    if not 0.0 <= inter_probability <= 1.0 or not 0.0 <= intra_probability <= 1.0:
        raise ValueError("probabilities must lie in [0, 1]")
    rng = random.Random(seed)
    clusters: List[List[int]] = []
    next_id = 0
    for size in cluster_sizes:
        _check_nonnegative(size, "cluster size")
        clusters.append(list(range(next_id, next_id + size)))
        next_id += size
    graph = DynamicGraph(nodes=range(next_id))
    membership = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            membership[node] = index
    for u, v in itertools.combinations(range(next_id), 2):
        probability = intra_probability if membership[u] == membership[v] else inter_probability
        if rng.random() < probability:
            graph.add_edge(u, v)
    return graph, clusters


def from_edge_list(num_nodes: int, edges: Sequence[Tuple[int, int]]) -> DynamicGraph:
    """Build a graph on nodes ``0 .. num_nodes-1`` from an explicit edge list."""
    graph = DynamicGraph(nodes=range(num_nodes))
    for u, v in edges:
        if not graph.has_node(u) or not graph.has_node(v):
            raise GraphError(f"edge ({u}, {v}) references a node outside 0..{num_nodes - 1}")
        graph.add_edge(u, v)
    return graph


def random_graph_family(name: str, num_nodes: int, seed: int = 0) -> DynamicGraph:
    """Dispatch helper used by benchmark sweeps.

    Supported names: ``erdos_renyi`` (p = 2 ln n / n, connected-ish),
    ``sparse`` (p = 2 / n), ``preferential`` (m = 3), ``geometric``
    (radius = sqrt(2 ln n / (pi n))), ``near_regular`` (degree 6), ``star``,
    ``path``, ``cycle``.
    """
    if num_nodes < 4:
        raise ValueError("family sweeps need at least 4 nodes")
    if name == "erdos_renyi":
        probability = min(1.0, 2.0 * math.log(num_nodes) / num_nodes)
        return erdos_renyi_graph(num_nodes, probability, seed=seed)
    if name == "sparse":
        return erdos_renyi_graph(num_nodes, min(1.0, 2.0 / num_nodes), seed=seed)
    if name == "preferential":
        return preferential_attachment_graph(num_nodes, 3, seed=seed)
    if name == "geometric":
        radius = math.sqrt(2.0 * math.log(num_nodes) / (math.pi * num_nodes))
        return random_geometric_graph(num_nodes, radius, seed=seed)
    if name == "near_regular":
        return near_regular_graph(num_nodes, min(6, num_nodes - 1), seed=seed)
    if name == "star":
        return star_graph(num_nodes - 1)
    if name == "path":
        return path_graph(num_nodes)
    if name == "cycle":
        return cycle_graph(num_nodes)
    raise ValueError(f"unknown graph family {name!r}")


FAMILY_NAMES = (
    "erdos_renyi",
    "sparse",
    "preferential",
    "geometric",
    "near_regular",
    "star",
    "path",
    "cycle",
)


def _check_nonnegative(value: int, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
