"""The deterministic Omega(n) adjustment lower bound (paper, Section 1.1).

The construction: let ``G_0 = K_{k,k}`` and let ``L`` be the side a given
*deterministic* dynamic MIS algorithm outputs as its MIS on ``G_0`` (in a
complete bipartite graph any MIS is one full side).  The adversary deletes the
nodes of ``L`` one by one.  Since the final graph consists of the isolated
nodes of ``R``, the MIS must at some point switch from (a subset of) ``L`` to
all of ``R``; at that single change all ~``2k - i`` surviving nodes change
their output.  Because the targeted side is a deterministic function of the
algorithm, the sequence can be fixed in advance -- the adversary remains
oblivious.

Consequences verified by experiment E5:

* the *maximum per-change adjustment count* of any deterministic algorithm on
  this sequence is at least ``k`` (linear in the number of nodes), and
* the total number of adjustments over the ``k`` deletions is at least ``k``
  for *any* algorithm (so an expected adjustment complexity below 1 per change
  is impossible, and high-probability o(k) bounds are impossible too), while
* the paper's randomized algorithm keeps the *expected* per-change adjustment
  count at ~1 on the very same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines.deterministic_dynamic import DeterministicDynamicMIS
from repro.core.dynamic_mis import DynamicMIS
from repro.workloads.adversary import (
    bipartite_lower_bound_instance,
    lower_bound_sequence_for,
)


@dataclass
class DeterministicLowerBoundResult:
    """Outcome of one lower-bound run."""

    side_size: int
    per_change_adjustments: List[int] = field(default_factory=list)
    total_adjustments: int = 0
    max_adjustments: int = 0

    @property
    def num_changes(self) -> int:
        """Number of deletions applied (equals the side size)."""
        return len(self.per_change_adjustments)

    @property
    def mean_adjustments(self) -> float:
        """Average adjustments per change over the sequence."""
        if not self.per_change_adjustments:
            return 0.0
        return self.total_adjustments / len(self.per_change_adjustments)


def run_deterministic_lower_bound(side_size: int) -> DeterministicLowerBoundResult:
    """Run the adversarial deletion sequence against the deterministic algorithm.

    Returns the per-change adjustment counts; the paper's claim is that the
    maximum is at least ``side_size`` (one change flips a whole side).
    """
    graph, left, right = bipartite_lower_bound_instance(side_size)
    algorithm = DeterministicDynamicMIS(initial_graph=graph)
    sequence = lower_bound_sequence_for(algorithm.mis(), left, right)
    return _run_sequence(algorithm, sequence, side_size)


def run_randomized_on_lower_bound_instance(
    side_size: int, seed: int = 0, engine: str = "template"
) -> DeterministicLowerBoundResult:
    """Run the same style of adversarial sequence against the randomized algorithm.

    The adversary is oblivious, so it must fix the targeted side in advance;
    following the paper we let it target the side the algorithm happens to
    start with (the worst oblivious choice), which still cannot push the
    *expected* per-change adjustment count above ~1 -- only the single
    unavoidable flip change is expensive.

    ``engine`` selects the :class:`~repro.core.dynamic_mis.DynamicMIS`
    backend (any registered name); the adjustment counts are
    backend-independent.
    """
    graph, left, right = bipartite_lower_bound_instance(side_size)
    algorithm = DynamicMIS(seed=seed, initial_graph=graph, engine=engine)
    sequence = lower_bound_sequence_for(algorithm.mis(), left, right)
    return _run_sequence(algorithm, sequence, side_size)


def _run_sequence(algorithm, sequence, side_size: int) -> DeterministicLowerBoundResult:
    result = DeterministicLowerBoundResult(side_size=side_size)
    for change in sequence:
        report = algorithm.apply(change)
        result.per_change_adjustments.append(report.num_adjustments)
    result.total_adjustments = sum(result.per_change_adjustments)
    result.max_adjustments = (
        max(result.per_change_adjustments) if result.per_change_adjustments else 0
    )
    return result


def adjustments_lower_bound_claim(side_size: int) -> int:
    """The paper's lower bound on the worst single change: the whole other side flips."""
    return side_size


def total_adjustments_lower_bound_claim(side_size: int) -> int:
    """Any algorithm must make at least ``side_size`` adjustments over the sequence."""
    return side_size
