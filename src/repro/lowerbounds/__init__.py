"""Lower-bound constructions from the paper (Section 1.1, "Matching Lower Bounds")."""

from repro.lowerbounds.deterministic import (
    DeterministicLowerBoundResult,
    run_deterministic_lower_bound,
    run_randomized_on_lower_bound_instance,
)

__all__ = [
    "DeterministicLowerBoundResult",
    "run_deterministic_lower_bound",
    "run_randomized_on_lower_bound_instance",
]
