"""Dynamic maximal matching via dynamic MIS on the line graph.

The reduction (paper, Section 5 "Composability"): nodes of ``L(G)`` are the
edges of ``G``, adjacent when they share an endpoint, so independent sets of
``L(G)`` are matchings of ``G`` and maximality carries over.  A topology
change of ``G`` translates into a short sequence of changes of ``L(G)``:

* inserting the edge ``{u, v}`` inserts one node (with its incident edges)
  into ``L(G)``,
* deleting the edge ``{u, v}`` deletes one node of ``L(G)``,
* inserting a node of ``G`` with ``d`` edges inserts ``d`` nodes of ``L(G)``,
* deleting a node of ``G`` of degree ``d`` deletes ``d`` nodes of ``L(G)``.

Each induced change is fed, one at a time, into a
:class:`~repro.core.dynamic_mis.DynamicMIS` running on the line graph; by the
paper's per-change guarantee every one of them costs a single adjustment in
expectation, so an edge change of ``G`` still costs O(1) expected adjustments
and a node change of ``G`` costs O(d) of them.  History independence composes:
the matching's distribution depends only on the current graph.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import EngineSpec
from repro.core.template import UpdateReport
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.line_graph import LineGraphView
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable
Edge = Tuple[Node, Node]


class DynamicMaximalMatching:
    """Maintain a random-greedy maximal matching under fully dynamic changes.

    Parameters
    ----------
    seed:
        Seed of the random order over *edges* (the line-graph nodes).
    initial_graph:
        Optional starting graph; its matching is computed by building the
        line graph and taking the greedy MIS.
    engine:
        MIS backend for the underlying maintainer: any
        :class:`~repro.core.engine_api.EngineSpec` accepted by
        :class:`~repro.core.dynamic_mis.DynamicMIS` (registered name,
        engine class, or instance).

    Examples
    --------
    >>> from repro.graph.generators import path_graph
    >>> matcher = DynamicMaximalMatching(seed=3, initial_graph=path_graph(4))
    >>> matcher.verify()
    >>> reports = matcher.insert_edge(0, 3)
    >>> matcher.verify()
    """

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        engine: EngineSpec = "template",
    ) -> None:
        self._view = LineGraphView(initial_graph)
        self._maintainer = DynamicMIS(
            seed=seed, initial_graph=self._view.line_graph, engine=engine
        )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current base graph ``G`` (do not mutate directly)."""
        return self._view.base_graph

    @property
    def line_graph(self) -> DynamicGraph:
        """The derived line graph ``L(G)``."""
        return self._view.line_graph

    @property
    def mis_maintainer(self) -> DynamicMIS:
        """The dynamic MIS maintainer running on ``L(G)``."""
        return self._maintainer

    def matching(self) -> Set[Edge]:
        """The current maximal matching as a set of canonical edge tuples."""
        return set(self._maintainer.mis())

    def matching_size(self) -> int:
        """Number of matched edges."""
        return len(self._maintainer.mis())

    def matched_partner(self, node: Node) -> Optional[Node]:
        """The node matched to ``node`` (None if unmatched)."""
        for u, v in self._maintainer.mis():
            if u == node:
                return v
            if v == node:
                return u
        return None

    def is_matched(self, node: Node) -> bool:
        """Whether ``node`` is covered by the matching."""
        return self.matched_partner(node) is not None

    def verify(self) -> None:
        """Assert that the output is a maximal matching of the base graph."""
        from repro.graph.validation import check_maximal_matching

        self._maintainer.verify()
        check_maximal_matching(self.graph, self.matching())

    # ------------------------------------------------------------------
    # Topology changes on the base graph
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> List[UpdateReport]:
        """Apply one base-graph topology change; return the induced MIS reports."""
        if isinstance(change, EdgeInsertion):
            return self.insert_edge(change.u, change.v)
        if isinstance(change, EdgeDeletion):
            return self.delete_edge(change.u, change.v)
        if isinstance(change, (NodeInsertion, NodeUnmuting)):
            return self.insert_node(change.node, change.neighbors)
        if isinstance(change, NodeDeletion):
            return self.delete_node(change.node)
        raise TypeError(f"unknown change type: {change!r}")

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[UpdateReport]:
        """Apply a whole base-graph change sequence."""
        reports: List[UpdateReport] = []
        for change in changes:
            reports.extend(self.apply(change))
        return reports

    def insert_edge(self, u: Node, v: Node) -> List[UpdateReport]:
        """Insert base edge ``{u, v}``."""
        return self._process(self._view.add_edge(u, v))

    def delete_edge(self, u: Node, v: Node) -> List[UpdateReport]:
        """Delete base edge ``{u, v}``."""
        return self._process(self._view.remove_edge(u, v))

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> List[UpdateReport]:
        """Insert a base node with edges to existing nodes."""
        return self._process(self._view.add_node_with_edges(node, neighbors))

    def delete_node(self, node: Node) -> List[UpdateReport]:
        """Delete a base node and its incident edges."""
        return self._process(self._view.remove_node(node))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _process(self, derived_changes: List[Tuple]) -> List[UpdateReport]:
        reports: List[UpdateReport] = []
        for derived in derived_changes:
            operation = derived[0]
            if operation == "add_node":
                _, line_node, line_neighbors = derived
                reports.append(self._maintainer.insert_node(line_node, line_neighbors))
            elif operation == "remove_node":
                _, line_node = derived
                reports.append(self._maintainer.delete_node(line_node))
            else:  # pragma: no cover - the line graph only produces node changes
                raise AssertionError(f"unexpected derived change {derived!r}")
        return reports
