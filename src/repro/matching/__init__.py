"""History-independent dynamic maximal matching (paper, Section 5).

A maximal matching of ``G`` is exactly a maximal independent set of the line
graph ``L(G)``; running the paper's history independent dynamic MIS algorithm
on ``L(G)`` therefore yields a history independent dynamic maximal matching.
The line graph is maintained incrementally by
:class:`~repro.graph.line_graph.LineGraphView`, and each topology change of
``G`` is translated into the (constant number of, for edge changes) induced
changes of ``L(G)``.

* :mod:`repro.matching.dynamic_matching` -- the maintainer.
* :mod:`repro.matching.greedy_matching` -- sequential baselines (random
  greedy matching and the worst-case "natural" matching used by Example 2).
"""

from repro.matching.dynamic_matching import DynamicMaximalMatching
from repro.matching.greedy_matching import (
    greedy_matching_in_order,
    random_greedy_matching,
    worst_case_maximal_matching_3paths,
)

__all__ = [
    "DynamicMaximalMatching",
    "random_greedy_matching",
    "greedy_matching_in_order",
    "worst_case_maximal_matching_3paths",
]
