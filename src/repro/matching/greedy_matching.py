"""Sequential matching baselines for the Example 2 experiment.

The paper's Example 2 (Section 5) compares the random-greedy maximal matching
of the graph made of ``n/4`` disjoint 3-edge paths (expected size ``5n/12``)
against the worst-case maximal matching of the same graph (size ``n/4``).
This module provides both reference constructions plus a generic greedy
matching that processes edges in a given order (which is what the MIS of the
line graph simulates).
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge

Node = Hashable
Edge = Tuple[Node, Node]


def greedy_matching_in_order(graph: DynamicGraph, edge_order: Sequence[Edge]) -> Set[Edge]:
    """Greedy maximal matching processing edges in the given order.

    Every edge of ``graph`` must appear in ``edge_order`` exactly once (in
    canonical form); an edge is matched iff neither endpoint is already
    matched.  This is exactly the greedy MIS of the line graph under the
    corresponding order.
    """
    canonical_order = [canonical_edge(u, v) for u, v in edge_order]
    graph_edges = set(graph.edges())
    if set(canonical_order) != graph_edges or len(canonical_order) != len(graph_edges):
        raise ValueError("edge_order must enumerate every edge of the graph exactly once")
    matched_nodes: Set[Node] = set()
    matching: Set[Edge] = set()
    for u, v in canonical_order:
        if u not in matched_nodes and v not in matched_nodes:
            matching.add(canonical_edge(u, v))
            matched_nodes.update((u, v))
    return matching


def random_greedy_matching(graph: DynamicGraph, seed: int = 0) -> Set[Edge]:
    """Greedy maximal matching over a uniformly random edge order."""
    edges = sorted(graph.edges(), key=repr)
    random.Random(seed).shuffle(edges)
    return greedy_matching_in_order(graph, edges)


def worst_case_maximal_matching_3paths(graph: DynamicGraph) -> Set[Edge]:
    """The smallest maximal matching of a disjoint union of 3-edge paths.

    For every path ``a - b - c - d`` the single middle edge ``{b, c}`` is a
    maximal matching of that path; taking the middle edge of every path gives
    the worst-case maximal matching of size ``n/4`` from the paper's example.
    The function detects the 3-edge paths structurally, so it also works when
    node identifiers are arbitrary.
    """
    matching: Set[Edge] = set()
    for component in graph.connected_components():
        if len(component) != 4:
            raise ValueError("worst-case construction expects disjoint 3-edge paths")
        internal = [node for node in component if graph.degree(node) == 2]
        if len(internal) != 2 or not graph.has_edge(internal[0], internal[1]):
            raise ValueError("component is not a 3-edge path")
        matching.add(canonical_edge(internal[0], internal[1]))
    return matching


def maximum_matching_size_3paths(num_paths: int) -> int:
    """Size of the maximum matching of ``num_paths`` disjoint 3-edge paths (2 per path)."""
    return 2 * num_paths


def expected_random_greedy_matching_size_3paths(num_paths: int) -> float:
    """Expected random-greedy matching size for the 3-paths graph.

    Per path (3 edges, processed in random order): with probability 2/3 the
    first processed edge is an end edge, which leaves the opposite end edge
    matchable (total 2); with probability 1/3 the middle edge comes first and
    blocks both ends (total 1).  Expectation per path is ``5/3``; the paper
    states the total as ``5n/12`` with ``n = 4 * num_paths`` nodes.
    """
    return num_paths * 5.0 / 3.0
