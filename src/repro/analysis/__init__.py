"""Statistics, history-independence tests and report rendering.

* :mod:`repro.analysis.estimators` -- sample means, confidence intervals and
  simple sweep helpers used by every experiment.
* :mod:`repro.analysis.history_independence` -- empirical verification of
  Definition 14: the output distribution of a history independent algorithm
  depends only on the current graph, so outputs collected over different
  change histories of the same graph must be statistically indistinguishable.
* :mod:`repro.analysis.reporting` -- plain-text tables (the benchmark
  harnesses print these; EXPERIMENTS.md embeds them).
"""

from repro.analysis.estimators import (
    confidence_interval,
    mean,
    sample_standard_deviation,
    summarize,
)
from repro.analysis.history_independence import (
    mis_distribution_over_histories,
    mis_distribution_over_seeds,
    total_variation_distance,
)
from repro.analysis.reporting import format_table, format_claim_table

__all__ = [
    "mean",
    "sample_standard_deviation",
    "confidence_interval",
    "summarize",
    "total_variation_distance",
    "mis_distribution_over_seeds",
    "mis_distribution_over_histories",
    "format_table",
    "format_claim_table",
]
