"""``repro-mis lint``: AST-based contract checkers for the reproduction.

The dynamic correctness story (seeded differential replay, checkpoint/resume
differentials, wire-level service tests) only catches a contract violation
when a seed happens to hit it.  This package is the static rung underneath:
five stdlib-:mod:`ast` checkers that flag the violation *at lint time*, in
milliseconds, on every PR:

============================  ====================================================
``determinism``               unseeded RNGs, wall-clock reads, unsorted set
                              iteration, float priority equality
``checkpoint-parity``         ``snapshot()`` / ``restore()`` cover every
                              ``__init__``-assigned attribute (or it is waived
                              ``transient``)
``registry-discipline``       backends are built via ``create_engine`` /
                              ``create_network`` / ``create_sink`` /
                              ``create_scheduler``
``wire-protocol``             service client verbs, daemon dispatch tables and
                              typed error kinds stay consistent
``shared-planes``             only flat scalars are written into
                              ``repro.parallel`` shared-memory planes
============================  ====================================================

Extend with :func:`register_checker` -- the registry is the same mechanism
(:class:`repro.registry.Registry`) behind the engine / network / sink /
scheduler registries, so ``repro-mis lint --select my-check`` works the
moment a third-party module registers ``my-check``.

Suppress one line with ``# repro-lint: <check> -- reason``; accept existing
findings wholesale via the committed ``lint-baseline.json`` (see
:mod:`repro.analysis.lint.runner`).
"""

from repro.analysis.lint.base import (
    CHECKER_NAMES,
    CheckerSpec,
    Finding,
    ProjectIndex,
    SourceFile,
    Suppression,
    UnknownCheckerError,
    available_checkers,
    get_checker,
    parse_suppressions,
    register_checker,
    unregister_checker,
)
from repro.analysis.lint.runner import (
    BASELINE_FILENAME,
    DEFAULT_PATHS,
    BaselineError,
    LintReport,
    build_index,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    run_lint_command,
    split_by_baseline,
    write_baseline,
)

__all__ = [
    "BASELINE_FILENAME",
    "BaselineError",
    "CHECKER_NAMES",
    "CheckerSpec",
    "DEFAULT_PATHS",
    "Finding",
    "LintReport",
    "ProjectIndex",
    "SourceFile",
    "Suppression",
    "UnknownCheckerError",
    "available_checkers",
    "build_index",
    "get_checker",
    "load_baseline",
    "parse_suppressions",
    "register_checker",
    "render_json",
    "render_text",
    "run_lint",
    "run_lint_command",
    "split_by_baseline",
    "unregister_checker",
    "write_baseline",
]
