"""``shared-planes``: only flat scalars go into shared-memory planes.

:mod:`repro.parallel` publishes *byte planes* -- named
``multiprocessing.shared_memory`` segments that worker processes attach by
name and read through :class:`memoryview` casts.  Nothing is pickled; the
whole design rests on every plane holding flat scalar data (state codes,
float priorities, int64 indices).  An object reference written into a plane
is silently a *different object* in the worker (or garbage bytes after the
parent mutates), the class of bug that only surfaces as a once-in-a-run
parity divergence.

The checker tracks plane-typed names per function scope:

* a parameter named ``planes`` (the kernel calling convention) and anything
  subscripted from it (``state = planes["e_state"]``);
* results of ``.ensure(...)`` on a pool-ish receiver (``pool.ensure(...)``,
  the publisher side);
* ``.cast(...)`` views and slices of already-tracked names.

and flags subscript stores into tracked names whose right-hand side is
provably not flat scalar data: container displays and comprehensions,
``str`` literals, lambdas, or constructor calls like ``dict()`` / ``list()``
/ ``object()``.  Values of unknown type (names, attribute reads, arithmetic)
pass -- the checker is deliberately sound-on-report rather than complete.

Scope: ``src/repro/parallel/`` plus any scanned file importing
``repro.parallel``.  Suppress with ``# repro-lint: shared-planes -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.base import (
    Finding,
    ProjectIndex,
    SourceFile,
    call_name,
    register_checker,
)

CHECK = "shared-planes"

#: Parameter/receiver spellings that mark a mapping of planes.
_PLANES_NAMES = frozenset({"planes", "plane_table"})

#: Receiver-name fragments that mark a pool publisher.
_POOL_FRAGMENTS = ("pool", "planes")

#: Constructor calls whose results are never flat scalars.
_OBJECT_FACTORIES = frozenset({"dict", "list", "set", "tuple", "object", "bytearray"})


def _imports_parallel(file: SourceFile) -> bool:
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            if any(alias.name.startswith("repro.parallel") for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.parallel"):
                return True
    return False


def _non_flat_reason(value: ast.AST) -> Optional[str]:
    """Why ``value`` is provably not flat scalar data (None when it may be)."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(value, ast.Lambda):
        return "a function object"
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return "a str"
    if isinstance(value, ast.Call):
        name = call_name(value)
        terminal = name.rsplit(".", 1)[-1] if name else None
        if terminal in _OBJECT_FACTORIES and terminal != "bytearray":
            return f"a {terminal}()"
    if isinstance(value, (ast.List, ast.Tuple)):
        # A display of pure numbers could still be a legal slice-assign
        # source for array planes; only flag it when an element is provably
        # an object reference.
        for element in value.elts:
            reason = _non_flat_reason(element)
            if reason is not None:
                return f"a container holding {reason}"
            if isinstance(element, ast.Constant) and not isinstance(
                element.value, (int, float, bool)
            ):
                return f"a container holding {type(element.value).__name__!s} constants"
        return None
    if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
        return None  # elements unknown; assume scalars
    return None


class _FunctionPlaneChecker(ast.NodeVisitor):
    """Track plane-typed bindings inside one function and flag bad stores."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self.tracked: Set[str] = set()
        self.findings: list = []

    # -- binding discovery --------------------------------------------
    def _is_plane_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tracked or node.id in _PLANES_NAMES
        if isinstance(node, ast.Subscript):
            base = node.value
            return isinstance(base, ast.Name) and (
                base.id in _PLANES_NAMES or base.id in self.tracked
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if node.func.attr == "ensure":
                return isinstance(receiver, ast.Name) and any(
                    fragment in receiver.id.lower() for fragment in _POOL_FRAGMENTS
                )
            if node.func.attr == "cast":
                return self._is_plane_expr(receiver)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_plane_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.tracked.add(target.id)
        self._check_store(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs get their own scope via the outer walk

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # nested defs get their own scope via the outer walk

    def _check_store(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            if not self._is_plane_expr(target.value) and not (
                isinstance(target.value, ast.Name) and target.value.id in self.tracked
            ):
                continue
            reason = _non_flat_reason(node.value)
            if reason is not None:
                plane = ast.unparse(target.value)
                self.findings.append(
                    Finding(
                        check=CHECK,
                        path=self.file.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"storing {reason} into shared-memory plane "
                            f"{plane!r}; planes hold flat scalars only -- an "
                            "object reference does not survive the process "
                            "boundary"
                        ),
                        symbol=self.file.symbol_at(node),
                    )
                )


def check_shared_planes(index: ProjectIndex) -> Iterator[Finding]:
    """Flag object/non-flat stores into ``repro.parallel`` planes."""
    for file in index.iter_files():
        if not (
            file.rel.startswith("src/repro/parallel/") or _imports_parallel(file)
        ):
            continue
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _FunctionPlaneChecker(file)
                # Seed with parameters following the kernel convention.
                for argument in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ):
                    if argument.arg in _PLANES_NAMES:
                        checker.tracked.add(argument.arg)
                for statement in node.body:
                    checker.visit(statement)
                yield from checker.findings


register_checker(
    CHECK,
    check_shared_planes,
    "no object references or non-flat values are written into "
    "repro.parallel shared-memory planes",
)
