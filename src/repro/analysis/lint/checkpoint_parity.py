"""``checkpoint-parity``: ``snapshot()`` / ``restore()`` must cover ``__init__``.

The :class:`~repro.core.state_api.Checkpointable` contract says a restored
object is observably identical to the snapshotted one.  The PR 6 resume bug
(a scheduler field added to ``__init__`` but never captured) is the exact
failure mode this checker makes structural: for every class that defines
**both** ``snapshot`` and ``restore`` in its own body, every ``self.*``
attribute assigned in ``__init__`` / ``_init_storage`` must be

* *read* somewhere in the ``snapshot()`` call closure, and
* *mentioned* (written, or read for in-place restoration) in the
  ``restore()`` call closure,

unless its assignment line carries ``# repro-lint: transient -- reason``
(caches, per-change scratch, observability toggles -- state the snapshot
contract deliberately excludes).

The closure follows ``self.method()`` calls and ``self.prop`` accesses into
other methods of the same class, and -- because the simulators delegate to
the shared builders in :mod:`repro.distributed.state` -- also module-level
helper calls that receive ``self`` as an argument, resolved through
``from ... import`` across the project index (bounded depth, cycle-safe).
Purely dynamic delegation (``getattr``, dict-driven dispatch) is invisible
to the AST; such attributes take the ``transient`` waiver with a reason.

Classes whose ``snapshot`` *and* ``restore`` are both stubs (protocol
definitions, ABCs raising ``NotImplementedError``) are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.base import (
    Finding,
    ProjectIndex,
    SourceFile,
    register_checker,
)

CHECK = "checkpoint-parity"

#: Methods whose assignments define the class's persistent-state surface.
_INIT_METHODS = ("__init__", "_init_storage")

#: How deep helper-call resolution recurses (self methods + module helpers).
_MAX_DEPTH = 6


def _is_stub(fn: ast.FunctionDef) -> bool:
    """Whether a method body is a protocol/ABC stub (docstring, ``...``, raise)."""
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # docstring
    if not body:
        return True
    if len(body) == 1:
        only = body[0]
        if isinstance(only, ast.Expr) and isinstance(only.value, ast.Constant):
            return True  # bare ``...``
        if isinstance(only, (ast.Raise, ast.Pass)):
            return True
    return False


def _class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item for item in cls.body if isinstance(item, ast.FunctionDef)
    }


class _SelfAccessCollector(ast.NodeVisitor):
    """Collect ``<self>.attr`` loads/stores and outgoing call edges of one body.

    ``self_name`` is the parameter playing the role of ``self`` -- the real
    ``self`` in methods, or whichever parameter a module-level helper bound
    the instance to when it was called with ``self`` as an argument.
    """

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        self.loads: Dict[str, int] = {}
        self.stores: Dict[str, int] = {}
        #: self-method / self-property names touched (call-closure edges).
        self.self_calls: Set[str] = set()
        #: (helper name, argument position the self object was passed at).
        self.helper_calls: Set[Tuple[str, int]] = set()

    def _is_self(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == self.self_name

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_self(node.value):
            bucket = self.stores if isinstance(node.ctx, ast.Store) else self.loads
            bucket.setdefault(node.attr, node.lineno)
            # Any attribute access may be a property/method of the class; the
            # closure filter keeps only names that resolve to real methods.
            if isinstance(node.ctx, ast.Load):
                self.self_calls.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            for position, argument in enumerate(node.args):
                if self._is_self(argument):
                    self.helper_calls.add((node.func.id, position))
        self.generic_visit(node)


def _module_functions(file: SourceFile) -> Dict[str, ast.FunctionDef]:
    assert file.tree is not None
    return {
        node.name: node
        for node in file.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _imported_from(file: SourceFile, name: str) -> Optional[str]:
    """The source module of ``from M import name`` anywhere in ``file``."""
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if (alias.asname or alias.name) == name:
                    return node.module
    return None


def _resolve_helper(
    index: ProjectIndex, file: SourceFile, name: str
) -> Optional[Tuple[SourceFile, ast.FunctionDef]]:
    """Find the module-level helper ``name`` called from ``file``."""
    local = _module_functions(file).get(name)
    if local is not None:
        return file, local
    source_module = _imported_from(file, name)
    if source_module is None:
        return None
    source_file = index.by_module.get(source_module)
    if source_file is None or source_file.tree is None:
        return None
    helper = _module_functions(source_file).get(name)
    if helper is None:
        return None
    return source_file, helper


def _closure_accesses(
    index: ProjectIndex,
    file: SourceFile,
    methods: Dict[str, ast.FunctionDef],
    entry: str,
) -> Tuple[Set[str], Set[str]]:
    """(loads, stores) of ``self.*`` over the call closure rooted at ``entry``."""
    loads: Set[str] = set()
    stores: Set[str] = set()
    visited: Set[Tuple[str, str, str]] = set()

    def walk_body(
        body_file: SourceFile, fn: ast.FunctionDef, self_name: str, depth: int
    ) -> None:
        key = (body_file.rel, fn.name, self_name)
        if key in visited or depth > _MAX_DEPTH:
            return
        visited.add(key)
        collector = _SelfAccessCollector(self_name)
        collector.visit(fn)
        loads.update(collector.loads)
        stores.update(collector.stores)
        for attr in collector.self_calls:
            method = methods.get(attr)
            if method is not None and method.args.args:
                walk_body(file, method, method.args.args[0].arg, depth + 1)
        for helper_name, position in collector.helper_calls:
            resolved = _resolve_helper(index, body_file, helper_name)
            if resolved is None:
                continue
            helper_file, helper = resolved
            if position < len(helper.args.args):
                walk_body(helper_file, helper, helper.args.args[position].arg, depth + 1)

    root = methods.get(entry)
    if root is not None and root.args.args:
        walk_body(file, root, root.args.args[0].arg, 0)
    return loads, stores


def _init_assignments(
    file: SourceFile, methods: Dict[str, ast.FunctionDef]
) -> Dict[str, int]:
    """``self.attr -> first assignment line`` over the init methods' closure."""
    assignments: Dict[str, int] = {}
    for init_name in _INIT_METHODS:
        fn = methods.get(init_name)
        if fn is None or not fn.args.args:
            continue
        collector = _SelfAccessCollector(fn.args.args[0].arg)
        collector.visit(fn)
        for attr, line in collector.stores.items():
            assignments.setdefault(attr, line)
    return assignments


def check_checkpoint_parity(index: ProjectIndex) -> Iterator[Finding]:
    """Compare ``__init__`` state against the snapshot/restore closures."""
    for file in index.iter_files("src/repro/"):
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _class_methods(node)
            snapshot = methods.get("snapshot")
            restore = methods.get("restore")
            if snapshot is None or restore is None:
                continue
            if _is_stub(snapshot) and _is_stub(restore):
                continue  # protocol / ABC definition, not an implementation
            attributes = _init_assignments(file, methods)
            if not attributes:
                continue
            snapshot_loads, snapshot_stores = _closure_accesses(
                index, file, methods, "snapshot"
            )
            snapshot_mentions = snapshot_loads | snapshot_stores
            restore_loads, restore_stores = _closure_accesses(
                index, file, methods, "restore"
            )
            restore_mentions = restore_loads | restore_stores
            for attr, line in sorted(attributes.items(), key=lambda kv: kv[1]):
                missing: List[str] = []
                if attr not in snapshot_mentions:
                    missing.append("never read by snapshot()")
                if attr not in restore_mentions:
                    missing.append("never written by restore()")
                if not missing:
                    continue
                yield Finding(
                    check=CHECK,
                    path=file.rel,
                    line=line,
                    col=0,
                    message=(
                        f"self.{attr} is assigned in __init__ but "
                        f"{' and '.join(missing)}; capture it, restore it, or "
                        "mark the assignment '# repro-lint: transient -- reason'"
                    ),
                    symbol=f"{node.name}.{attr}",
                )


register_checker(
    CHECK,
    check_checkpoint_parity,
    "every __init__-assigned attribute of a Checkpointable class is captured "
    "by snapshot() and re-established by restore() (or waived as transient)",
)
