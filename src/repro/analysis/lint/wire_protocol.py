"""``wire-protocol``: the service client and daemon cannot drift apart.

The ``repro-mis serve`` wire surface is three string vocabularies that live
in different files and are only ever joined at runtime, over a socket:

* the **verbs** :class:`~repro.service.client.ServiceClient` emits
  (``self.request("<op>", ...)`` literals in ``client.py``);
* the verbs the daemon side answers: ``SessionHost.OPS`` in ``host.py``
  (the shard dispatch table) plus the ops :meth:`MISService.dispatch`
  special-cases in ``daemon.py`` (``ping`` / ``shutdown`` and the fan-out
  tuple);
* the **typed error kinds** of ``protocol.py`` (``ERROR_KINDS``), which
  every ``protocol.error(message, kind)`` call and every
  ``ServiceClientError`` must stay within (the client adds its local
  transport kind ``"connection"``, which never crosses the wire).

A dynamic test only catches a drift for the verbs it happens to exercise;
this checker cross-references the vocabularies statically:

* a client verb no daemon path handles (typo'd op, removed handler);
* a ``SessionHost.OPS`` entry whose handler method does not exist;
* a daemon-handled verb neither the client nor any other service module
  references (dead surface -- the shard drain protocol uses ``drain``
  internally, which is why the reference scan covers all of
  ``src/repro/service/``);
* an error ``kind`` literal outside ``ERROR_KINDS`` (plus ``"connection"``
  client-side).

On trees without the service package (fixture projects, partial checkouts)
the checker reports nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.lint.base import (
    Finding,
    ProjectIndex,
    SourceFile,
    call_name,
    register_checker,
    str_constant,
)

CHECK = "wire-protocol"

_CLIENT = "repro.service.client"
_HOST = "repro.service.host"
_DAEMON = "repro.service.daemon"
_PROTOCOL = "repro.service.protocol"

#: The client's local transport-failure kind; never serialized on the wire.
_CLIENT_ONLY_KINDS = frozenset({"connection"})


def _finding(file: SourceFile, node: ast.AST, message: str) -> Finding:
    return Finding(
        check=CHECK,
        path=file.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        symbol=file.symbol_at(node),
    )


def _client_verbs(client: SourceFile) -> Dict[str, Tuple[ast.Call, str]]:
    """verb -> (emitting call, enclosing symbol) from ``self.request(...)``."""
    assert client.tree is not None
    verbs: Dict[str, Tuple[ast.Call, str]] = {}
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        callee = call_name(node)
        if callee is None or callee.rsplit(".", 1)[-1] != "request":
            continue
        verb = str_constant(node.args[0])
        if verb is not None:
            verbs.setdefault(verb, (node, client.symbol_at(node)))
    return verbs


def _host_ops(host: SourceFile) -> Tuple[Dict[str, str], Optional[ast.ClassDef]]:
    """The ``OPS`` table (op -> handler name) and its owning class."""
    assert host.tree is not None
    for node in ast.walk(host.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.Assign):
                continue
            targets = [t.id for t in item.targets if isinstance(t, ast.Name)]
            if "OPS" not in targets or not isinstance(item.value, ast.Dict):
                continue
            table: Dict[str, str] = {}
            for key, value in zip(item.value.keys, item.value.values):
                op = str_constant(key) if key is not None else None
                handler = str_constant(value)
                if op is not None and handler is not None:
                    table[op] = handler
            return table, node
    return {}, None


def _daemon_ops(daemon: SourceFile) -> Set[str]:
    """Ops ``dispatch`` answers itself: ``op == "..."`` plus the fan-out tuple."""
    assert daemon.tree is not None
    ops: Set[str] = set()
    for node in ast.walk(daemon.tree):
        if isinstance(node, ast.Compare) and isinstance(node.left, ast.Name):
            if node.left.id == "op" and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.Eq, ast.In)):
                    for comparator in node.comparators:
                        literal = str_constant(comparator)
                        if literal is not None:
                            ops.add(literal)
        if isinstance(node, ast.Assign) and isinstance(node.value, (ast.Tuple, ast.List)):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_FANOUT_OPS" in names:
                for element in node.value.elts:
                    literal = str_constant(element)
                    if literal is not None:
                        ops.add(literal)
    return ops


def _error_kinds(protocol: SourceFile) -> Set[str]:
    assert protocol.tree is not None
    for node in protocol.tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, (ast.Tuple, ast.List)):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "ERROR_KINDS" in names:
                return {
                    literal
                    for element in node.value.elts
                    if (literal := str_constant(element)) is not None
                }
    return set()


def _check_error_kinds(
    index: ProjectIndex, kinds: Set[str]
) -> Iterator[Finding]:
    for file in index.iter_files("src/repro/service/"):
        assert file.tree is not None
        allowed = set(kinds)
        if file.module == _CLIENT:
            allowed |= _CLIENT_ONLY_KINDS
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            terminal = callee.rsplit(".", 1)[-1] if callee else None
            kind_node: Optional[ast.AST] = None
            if terminal == "error" and callee and "protocol" in callee.split("."):
                if len(node.args) >= 2:
                    kind_node = node.args[1]
            if terminal in ("error", "ServiceClientError", "ServiceError") or (
                terminal and terminal.endswith("Error")
            ):
                for keyword in node.keywords:
                    if keyword.arg == "kind":
                        kind_node = keyword.value
            if kind_node is None:
                continue
            kind = str_constant(kind_node)
            if kind is not None and kind not in allowed:
                yield _finding(
                    file,
                    kind_node,
                    f"error kind {kind!r} is not in protocol.ERROR_KINDS "
                    f"{tuple(sorted(kinds))}; client and daemon would disagree "
                    "on the failure taxonomy",
                )


def check_wire_protocol(index: ProjectIndex) -> Iterator[Finding]:
    """Cross-check client verbs, daemon dispatch and typed error kinds."""
    client = index.by_module.get(_CLIENT)
    host = index.by_module.get(_HOST)
    daemon = index.by_module.get(_DAEMON)
    protocol = index.by_module.get(_PROTOCOL)
    if client is None or host is None or daemon is None:
        return  # not a tree with the service layer; nothing to check

    verbs = _client_verbs(client)
    host_ops, host_class = _host_ops(host)
    daemon_ops = _daemon_ops(daemon)
    handled = set(host_ops) | daemon_ops

    for verb, (node, _symbol) in sorted(verbs.items()):
        if verb not in handled:
            yield _finding(
                client,
                node,
                f"client emits op {verb!r} but neither SessionHost.OPS nor the "
                f"daemon dispatch handles it (handled: {tuple(sorted(handled))})",
            )

    if host_class is not None:
        method_names = {
            item.name for item in host_class.body if isinstance(item, ast.FunctionDef)
        }
        for op, handler in sorted(host_ops.items()):
            if handler not in method_names:
                yield _finding(
                    host,
                    host_class,
                    f"SessionHost.OPS maps {op!r} to missing handler "
                    f"method {handler!r}",
                )

    for op in sorted(handled):
        if op in verbs:
            continue
        # Referenced elsewhere in the service package (e.g. the shard drain
        # protocol emits "drain" itself) is fine; the op literal appearing
        # *only* in its own dispatch table means dead wire surface.
        emitted_elsewhere = any(
            op in _module_literals(file)
            for file in index.iter_files("src/repro/service/")
            if file not in (host, daemon)
        )
        if not emitted_elsewhere:
            owner = host if op in host_ops else daemon
            anchor: ast.AST = (
                host_class
                if op in host_ops and host_class is not None
                else owner.tree  # type: ignore[assignment]
            )
            yield _finding(
                owner,
                anchor,
                f"daemon handles op {op!r} but no client method or service "
                "module emits it (dead wire surface)",
            )

    if protocol is not None:
        kinds = _error_kinds(protocol)
        if kinds:
            yield from _check_error_kinds(index, kinds)


def _module_literals(file: SourceFile) -> Set[str]:
    assert file.tree is not None
    return {
        literal
        for node in ast.walk(file.tree)
        if (literal := str_constant(node)) is not None
    }


register_checker(
    CHECK,
    check_wire_protocol,
    "ServiceClient verbs, the SessionHost/daemon dispatch tables and the "
    "typed error kinds stay mutually consistent",
)
