"""Core types of the ``repro-mis lint`` static-analysis framework.

The framework is stdlib-only: every checker works on :mod:`ast` trees of the
project sources, so the whole suite runs in milliseconds with no third-party
dependency.  This module holds the pieces the checkers share:

* :class:`Finding` -- one diagnostic, with a line-number-free ``fingerprint``
  so a committed baseline survives unrelated edits;
* :class:`SourceFile` -- a parsed source file with its dotted module name,
  per-line ``# repro-lint:`` suppressions and an enclosing-symbol table;
* :class:`ProjectIndex` -- the parsed project (file list, module lookup,
  project-wide class index) handed to every checker;
* the checker registry (:func:`register_checker` /
  :func:`available_checkers`), built on :class:`repro.registry.Registry`
  exactly like the engine / network / sink / scheduler registries;
* small AST helpers (:func:`dotted_name`, :func:`call_name`) used by most
  checkers.

Suppression grammar (one physical line, same line as the flagged node)::

    x = hazard()  # repro-lint: determinism -- reason the hazard is accepted
    self._cache = {}  # repro-lint: transient -- derived, rebuilt on restore

``transient`` is an alias accepted by the ``checkpoint-parity`` checker for
attributes that are deliberately not part of the snapshot contract.  A bare
``# repro-lint: all`` silences every checker on that line (use sparingly; a
named check plus a reason is the reviewable form).
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.registry import LiveNames, Registry, UnknownNameError

#: Suppression alias consumed by the checkpoint-parity checker.
TRANSIENT = "transient"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<names>[A-Za-z0-9_,\- ]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker.

    ``symbol`` is the enclosing dotted context (``Class.method`` or an
    attribute like ``Class._field``); together with ``check``, ``path`` and
    the message it forms the *fingerprint* -- deliberately excluding the line
    number, so baselined findings survive edits elsewhere in the file.
    """

    check: str
    path: str  # posix path relative to the lint root
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        payload = f"{self.check}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.check)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        context = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.check}: {self.message}{context}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint:`` comment (check names + optional reason)."""

    names: Tuple[str, ...]
    reason: Optional[str]

    def covers(self, check: str) -> bool:
        if "all" in self.names:
            return True
        if check in self.names:
            return True
        # ``transient`` is the documented alias for checkpoint-parity waivers.
        return TRANSIENT in self.names and check == "checkpoint-parity"


def parse_suppressions(text: str) -> Dict[int, Suppression]:
    """Per-line ``# repro-lint:`` comments of ``text`` (1-based line numbers).

    The scan is purely lexical (a regex per physical line), which keeps it
    robust on files the AST parser rejects; a suppression inside a string
    literal would be honored, the documented price of staying tokenizer-free.
    """
    suppressions: Dict[int, Suppression] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        names = tuple(
            name.strip() for name in match.group("names").split(",") if name.strip()
        )
        if names:
            suppressions[lineno] = Suppression(names=names, reason=match.group("reason"))
    return suppressions


class SourceFile:
    """One parsed project source file.

    Parameters
    ----------
    path:
        Absolute filesystem path.
    rel:
        Posix path relative to the lint root (the identity used in findings,
        baselines and suppression lookups).
    text:
        The file contents (kept so checkers can quote source lines).
    """

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as error:
            self.parse_error = error
        self.suppressions = parse_suppressions(text)
        self.module = module_name_for(rel)
        self._symbols: Optional[Dict[int, str]] = None

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "SourceFile":
        rel = path.relative_to(root).as_posix()
        return cls(path, rel, path.read_text(encoding="utf-8"))

    # -- symbol context ------------------------------------------------
    def symbol_at(self, node: ast.AST) -> str:
        """Dotted enclosing class/function context of ``node`` ("" at module level)."""
        if self._symbols is None:
            self._symbols = self._build_symbol_table()
        return self._symbols.get(id(node), "")

    def _build_symbol_table(self) -> Dict[int, str]:
        table: Dict[int, str] = {}
        if self.tree is None:
            return table

        def visit(node: ast.AST, context: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    inner = f"{context}.{child.name}" if context else child.name
                else:
                    inner = context
                table[id(child)] = inner
                visit(child, inner)

        table[id(self.tree)] = ""
        visit(self.tree, "")
        return table

    def suppressed(self, check: str, line: int) -> bool:
        suppression = self.suppressions.get(line)
        return suppression is not None and suppression.covers(check)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceFile({self.rel!r})"


def module_name_for(rel: str) -> Optional[str]:
    """Dotted module name of a ``src/``-rooted file (None outside ``src/``)."""
    if not rel.startswith("src/") or not rel.endswith(".py"):
        return None
    dotted = rel[len("src/") : -len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


class ProjectIndex:
    """The parsed project handed to every checker.

    Checkers are project-wide functions (``checker(index) -> findings``), not
    per-file visitors, because three of the five shipped checks are
    cross-file by nature: registry discipline matches constructions against
    registrations elsewhere, the wire check matches the client against the
    daemon, and checkpoint parity follows snapshot helpers across modules.
    """

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: Tuple[SourceFile, ...] = tuple(files)
        self.by_rel: Dict[str, SourceFile] = {f.rel: f for f in self.files}
        self.by_module: Dict[str, SourceFile] = {
            f.module: f for f in self.files if f.module is not None
        }
        self._classes: Optional[Dict[str, List[Tuple[SourceFile, ast.ClassDef]]]] = None

    def iter_files(self, *prefixes: str) -> Iterator[SourceFile]:
        """Parsed files whose relative path starts with any prefix (all if none)."""
        for file in self.files:
            if file.tree is None:
                continue
            if not prefixes or any(file.rel.startswith(p) for p in prefixes):
                yield file

    @property
    def classes(self) -> Dict[str, List[Tuple[SourceFile, ast.ClassDef]]]:
        """Project-wide class index: class name -> [(file, ClassDef), ...]."""
        if self._classes is None:
            index: Dict[str, List[Tuple[SourceFile, ast.ClassDef]]] = {}
            for file in self.iter_files():
                assert file.tree is not None
                for node in ast.walk(file.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append((file, node))
            self._classes = index
        return self._classes

    def defining_file(self, class_name: str) -> Optional[SourceFile]:
        """The file defining ``class_name`` (None if absent or ambiguous)."""
        entries = self.classes.get(class_name, [])
        files = {file.rel for file, _ in entries}
        if len(files) == 1:
            return entries[0][0]
        return None


# ----------------------------------------------------------------------
# Checker registry (same mechanism as the backend registries)
# ----------------------------------------------------------------------
class UnknownCheckerError(UnknownNameError):
    """``--select`` / ``--ignore`` named a check that is not registered."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__("checker", name, known)


@dataclass(frozen=True)
class CheckerSpec:
    """A registered checker: the callable plus its one-line description."""

    name: str
    checker: Callable[[ProjectIndex], Iterable[Finding]]
    description: str


def _check_checker_entry(name: str, value: Any) -> None:
    if not isinstance(value, CheckerSpec) or not callable(value.checker):
        raise TypeError(
            f"checker {name!r} must register a callable taking a ProjectIndex, "
            f"got {value!r}"
        )


_REGISTRY = Registry("checker", error=UnknownCheckerError, check_value=_check_checker_entry)


def register_checker(
    name: str,
    checker: Callable[[ProjectIndex], Iterable[Finding]],
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register ``checker`` under ``name`` (``checker(index) -> findings``).

    Third-party extensions use exactly this entry point; ``repro-mis lint``
    picks every registered checker up without further wiring, and
    ``--select`` / ``--ignore`` accept the new name immediately.
    """
    _REGISTRY.register(name, CheckerSpec(name, checker, description), overwrite=overwrite)


def unregister_checker(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent; mainly for tests)."""
    _REGISTRY.unregister(name)


def available_checkers() -> Tuple[str, ...]:
    """The registered checker names, in registration order."""
    return _REGISTRY.names()


def get_checker(name: str) -> CheckerSpec:
    """The :class:`CheckerSpec` for ``name`` (raises with a did-you-mean hint)."""
    return _REGISTRY.get(name)


#: Live view of the registered checker names.
CHECKER_NAMES = LiveNames(_REGISTRY)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted callee name of a Call (None for computed callees)."""
    return dotted_name(node.func)


def str_constant(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def build_parents(tree: ast.AST) -> Dict[int, ast.AST]:
    """Map ``id(child) -> parent`` for every node (consumer-context lookups)."""
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents
