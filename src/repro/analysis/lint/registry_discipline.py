"""``registry-discipline``: backends are built through the registries.

PR 2-8 funnel every backend family through one front door --
``create_engine`` / ``create_network`` / ``create_sink`` /
``create_scheduler`` -- so selectors, scenario specs, the service layer and
the differential harnesses all see the same construction path.  A direct
``FastEngine(...)`` in a benchmark silently skips that path: it keeps
working when the registration breaks, pins the concrete class where a spec
string belongs, and drifts from what ``repro-mis run`` would build.

The checker discovers the protected classes *from the registrations
themselves* (no hand-maintained list to drift):

* ``register_scheduler("fixed", FixedDelayScheduler, ...)`` -- the class is
  the argument;
* ``register_engine("fast", _fast_factory)`` -- the factory's body is
  scanned for ``return ClassName(...)`` (and the ``from ... import`` inside
  it names the defining module);
* ``register_network("dict", {"buffered": _dict_buffered, ...})`` -- dict
  values resolve like factories.

A construction is then flagged unless it happens in the class's defining
module, the registering module (where the factories live), or a class that
*is itself a registry front door* -- one whose ``__new__`` (or a base's)
dispatches through ``resolve_network`` / ``create_network`` -- since calling
the front door **is** using the registry.  ``tests/`` are outside the lint
scope by default: tests construct concrete backends on purpose.

Suppress an intentional site (e.g. a simulator's internal default scheduler)
with ``# repro-lint: registry-discipline -- reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.base import (
    Finding,
    ProjectIndex,
    SourceFile,
    call_name,
    register_checker,
)

CHECK = "registry-discipline"

#: register_* entry point -> the front-door builder to recommend.
_REGISTRARS = {
    "register_engine": "create_engine",
    "register_network": "create_network",
    "register_sink": "create_sink",
    "register_scheduler": "create_scheduler",
}

#: Calls that mark a class's ``__new__`` as a registry front door.
_DISPATCH_CALLS = frozenset(
    {"resolve_network", "create_network", "resolve_engine", "create_engine"}
)


@dataclass(frozen=True)
class _Backend:
    """One registered backend class and where constructing it is sanctioned."""

    class_name: str
    front_door: str  # the create_* builder to recommend
    sanctioned_rels: Tuple[str, ...]  # defining + registering module paths


def _factory_classes(
    index: ProjectIndex, file: SourceFile, factory: ast.FunctionDef
) -> Iterator[Tuple[str, Optional[str]]]:
    """``(class name, defining module)`` for classes a factory constructs.

    The built-in factories follow one idiom: a local ``from M import C``
    (lazy import, no circularity) followed by ``return C(...)``.  The local
    import names the defining module directly; otherwise the project-wide
    class index resolves it.
    """
    local_imports: Dict[str, str] = {}
    for node in ast.walk(factory):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local_imports[alias.asname or alias.name] = node.module
    for node in ast.walk(factory):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name) and callee.id[:1].isupper():
                yield callee.id, local_imports.get(callee.id)


def _resolve_registration_arg(
    index: ProjectIndex, file: SourceFile, node: ast.AST
) -> Iterator[Tuple[str, Optional[str]]]:
    """Backend ``(class name, defining module)`` pairs named by one argument."""
    assert file.tree is not None
    if isinstance(node, ast.Dict):
        for value in node.values:
            yield from _resolve_registration_arg(index, file, value)
        return
    if not isinstance(node, ast.Name):
        return
    for top in file.tree.body:
        if isinstance(top, ast.ClassDef) and top.name == node.id:
            yield node.id, file.module
            return
        if isinstance(top, ast.FunctionDef) and top.name == node.id:
            yield from _factory_classes(index, file, top)
            return
    # An imported class registered directly: the class index finds its home.
    if node.id[:1].isupper():
        yield node.id, None


def _collect_backends(index: ProjectIndex) -> List[_Backend]:
    backends: Dict[str, _Backend] = {}
    for file in index.iter_files("src/repro/"):
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            registrar = name.rsplit(".", 1)[-1] if name else None
            if registrar not in _REGISTRARS or len(node.args) < 2:
                continue
            for class_name, defining_module in _resolve_registration_arg(
                index, file, node.args[1]
            ):
                sanctioned: Set[str] = {file.rel}
                if defining_module is not None:
                    defining = index.by_module.get(defining_module)
                    if defining is not None:
                        sanctioned.add(defining.rel)
                else:
                    defining = index.defining_file(class_name)
                    if defining is not None:
                        sanctioned.add(defining.rel)
                backends[class_name] = _Backend(
                    class_name=class_name,
                    front_door=_REGISTRARS[registrar],
                    sanctioned_rels=tuple(sorted(sanctioned)),
                )
    return list(backends.values())


def _front_door_classes(index: ProjectIndex) -> Set[str]:
    """Classes whose ``__new__`` (own or inherited) dispatches via the registry."""
    dispatching: Set[str] = set()
    bases: Dict[str, List[str]] = {}
    for class_name, entries in index.classes.items():
        for _, node in entries:
            bases.setdefault(class_name, []).extend(
                base.id for base in node.bases if isinstance(base, ast.Name)
            )
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "__new__":
                    for call in ast.walk(item):
                        if isinstance(call, ast.Call):
                            callee = call_name(call)
                            terminal = callee.rsplit(".", 1)[-1] if callee else None
                            if terminal in _DISPATCH_CALLS:
                                dispatching.add(class_name)
    # Subclasses inherit the dispatching __new__ unless they override it --
    # an override that drops the dispatch is rare enough to accept the
    # approximation (it would resurface as a registration-path test failure).
    grown = True
    while grown:
        grown = False
        for class_name, base_names in bases.items():
            if class_name not in dispatching and any(
                base in dispatching for base in base_names
            ):
                dispatching.add(class_name)
                grown = True
    return dispatching


def check_registry_discipline(index: ProjectIndex) -> Iterator[Finding]:
    """Flag direct constructions of registered backend classes."""
    backends = {b.class_name: b for b in _collect_backends(index)}
    if not backends:
        return
    exempt_classes = _front_door_classes(index)
    for file in index.iter_files():
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None:
                continue
            terminal = callee.rsplit(".", 1)[-1]
            backend = backends.get(terminal)
            if backend is None or terminal in exempt_classes:
                continue
            if file.rel in backend.sanctioned_rels:
                continue
            yield Finding(
                check=CHECK,
                path=file.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct construction of registered backend "
                    f"{backend.class_name}; build it through "
                    f"{backend.front_door}(...) so selectors, specs and the "
                    "service layer stay interchangeable"
                ),
                symbol=file.symbol_at(node),
            )


register_checker(
    CHECK,
    check_registry_discipline,
    "registered backend classes are constructed via create_engine / "
    "create_network / create_sink / create_scheduler, not directly",
)
