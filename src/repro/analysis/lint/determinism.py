"""``determinism``: hazards that break seeded bit-identical replay.

The reproduction's whole conformance story (differential replay, checkpoint
resume, protocol round parity) assumes a run is a pure function of its seed.
This checker flags the four hazard shapes that historically break that
assumption, each tagged inside the message so one check name covers the
family while the report stays precise:

* ``[unseeded-random]`` -- ``random.Random()`` with no seed argument, or any
  module-level ``random.*`` call (the process-global RNG: shared stream,
  unseeded unless someone else seeded it) anywhere in the scanned tree;
* ``[wall-clock]`` -- ``time.time()`` / ``perf_counter()`` / ``monotonic()``
  inside ``repro/core/`` or ``repro/distributed/``, where a timestamp can
  only flow into algorithm state (benchmarks and the scenario layer measure
  wall time legitimately and are out of scope);
* ``[set-iteration]`` -- a ``for`` loop or ordered comprehension iterating a
  bare set expression or a ``.values()`` / ``.keys()`` view in the
  ``repro/core/``, ``repro/distributed/`` or ``repro/parallel/`` hot paths
  without ``sorted()``, unless the iteration feeds an order-insensitive
  reducer (``sum``/``len``/``min``/``max``/``all``/``any``/``set``/...);
* ``[float-eq]`` -- ``==`` / ``!=`` on priority-like operands (``pi``,
  ``prio*``, ``priority*``, the kernels' ``pm``/``pf`` naming) outside a
  sanctioned *tie-escape site*.  Escapes are recognized structurally: an
  equality whose enclosing boolean expression also compares the full key
  tuple (``prio[m] == p and keys[m] < key``), a tie *mask* assigned to a
  ``tie``-named variable and resolved against keys downstream, an
  ``assert`` invariant, or anything in ``repro/parallel/kernels.py`` (whose
  compares escape exact ties back to serial full-key evaluation).  A bare
  ``if prio[a] == prio[b]:`` that branches without consulting the key is
  the hazard.

Suppress an accepted site with ``# repro-lint: determinism -- reason``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.analysis.lint.base import (
    Finding,
    ProjectIndex,
    SourceFile,
    build_parents,
    call_name,
    dotted_name,
    register_checker,
)

CHECK = "determinism"

#: Module-level ``random.*`` functions that draw from the process-global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "vonmisesvariate",
    }
)

#: Wall-clock sources that must not feed algorithm state.
_WALL_CLOCK_FUNCS = frozenset(
    {"time.time", "time.perf_counter", "time.monotonic", "time.time_ns",
     "time.perf_counter_ns", "time.monotonic_ns"}
)

#: Scope of the wall-clock rule: directories holding algorithm state.
_STATE_SCOPES = ("src/repro/core/", "src/repro/distributed/")

#: Scope of the set-iteration and float-eq rules: the replayed hot paths.
_HOT_SCOPES = ("src/repro/core/", "src/repro/distributed/", "src/repro/parallel/")

#: Consumers for which iteration order cannot be observed.
_ORDER_INSENSITIVE = frozenset(
    {"sum", "len", "min", "max", "all", "any", "set", "frozenset", "sorted",
     "dict", "Counter", "collections.Counter"}
)

#: Set-returning methods (iterating their result is order-hazardous).
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)

#: The sanctioned float-compare sites: kernels escape exact ties to serial
#: full-key evaluation, so their float ``==`` is part of the contract.
_FLOAT_EQ_SANCTIONED = ("src/repro/parallel/kernels.py",)

_PRIORITY_NAME_RE = re.compile(r"(^|_)(pi|prio|priorities|priority|pm|pf|pkey)($|_)")

#: Names that mark the full-key side of a sanctioned tie escape.
_KEY_NAME_RE = re.compile(r"key", re.IGNORECASE)

#: Assignment targets that mark a tie *mask* (resolved against keys later).
_TIE_NAME_RE = re.compile(r"tie", re.IGNORECASE)


def _is_set_like(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


def _is_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    )


def _priority_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        return _priority_like(node.value)
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name is not None and _PRIORITY_NAME_RE.search(name) is not None


def _finding(file: SourceFile, node: ast.AST, message: str) -> Finding:
    return Finding(
        check=CHECK,
        path=file.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        symbol=file.symbol_at(node),
    )


def _check_random_and_clock(file: SourceFile) -> Iterator[Finding]:
    assert file.tree is not None
    in_state_scope = file.rel.startswith(_STATE_SCOPES)
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        if name == "random.Random" and not node.args and not node.keywords:
            yield _finding(
                file,
                node,
                "[unseeded-random] random.Random() without a seed breaks seeded "
                "replay; thread an explicit seed (see repro.core.rng)",
            )
        elif name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_RNG_FUNCS:
            yield _finding(
                file,
                node,
                f"[unseeded-random] {name}() uses the process-global RNG stream; "
                "use a seeded random.Random instance instead",
            )
        elif in_state_scope and name in _WALL_CLOCK_FUNCS:
            yield _finding(
                file,
                node,
                f"[wall-clock] {name}() in algorithm code can leak wall-clock "
                "time into replayed state; measure time outside repro.core / "
                "repro.distributed",
            )


def _iter_hazard_iterables(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, ast.AST, str]]:
    """Yield ``(report_node, iterable, kind)`` for order-hazardous iterations.

    ``for`` statements always count; among comprehensions only the *ordered*
    ones (list / generator) do -- a ``SetComp`` forgets order again, and a
    comprehension consumed by an order-insensitive reducer is skipped by the
    caller via the parent map.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node, node.iter, "for"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield node, generator.iter, "comprehension"


def _check_set_iteration(file: SourceFile) -> Iterator[Finding]:
    assert file.tree is not None
    parents = build_parents(file.tree)
    for report_node, iterable, kind in _iter_hazard_iterables(file.tree):
        hazard: Optional[str] = None
        if _is_set_like(iterable):
            hazard = "a bare set expression"
        elif _is_view_call(iterable):
            assert isinstance(iterable, ast.Call)
            assert isinstance(iterable.func, ast.Attribute)
            hazard = f"a .{iterable.func.attr}() view"
        if hazard is None:
            continue
        if kind == "comprehension":
            parent = parents.get(id(report_node))
            if (
                isinstance(parent, ast.Call)
                and call_name(parent) in _ORDER_INSENSITIVE
                and report_node in parent.args
            ):
                continue
        yield _finding(
            file,
            iterable,
            f"[set-iteration] iterating {hazard} without sorted() makes the "
            "visit order hash/insertion dependent; wrap the iterable in "
            "sorted() or reduce order-insensitively",
        )


def _mentions_key(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _KEY_NAME_RE.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _KEY_NAME_RE.search(sub.attr):
            return True
    return False


def _sanctioned_tie_escape(node: ast.Compare, parents) -> bool:
    """Whether this equality is part of a recognized tie-escape idiom.

    Climbing from the compare to its statement: a sibling operand of an
    enclosing ``BoolOp`` that consults the key tuple sanctions the compare
    (``prio[m] == p and keys[m] < key`` -- the tie escapes to the full
    key); so does assignment to a ``tie``-named mask (the vectorized form:
    ``ties = prio[a] == prio[b]`` then keyed tie-breaking on the masked
    lanes), and an ``assert`` (an invariant check cannot steer replayed
    control flow -- it can only abort).
    """
    child: ast.AST = node
    current = parents.get(id(node))
    while current is not None:
        if isinstance(current, ast.BoolOp) and any(
            operand is not child and _mentions_key(operand)
            for operand in current.values
        ):
            return True
        if isinstance(current, ast.Assert):
            return True
        if isinstance(current, ast.Assign) and any(
            isinstance(target, ast.Name) and _TIE_NAME_RE.search(target.id)
            for target in current.targets
        ):
            return True
        if isinstance(current, ast.stmt):
            break
        child = current
        current = parents.get(id(current))
    return False


def _check_float_eq(file: SourceFile) -> Iterator[Finding]:
    assert file.tree is not None
    if file.rel.endswith(_FLOAT_EQ_SANCTIONED):
        return
    parents = build_parents(file.tree)
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands: List[ast.AST] = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _priority_like(left) or _priority_like(right):
                if _sanctioned_tie_escape(node, parents):
                    continue
                left_text = dotted_name(left) or ast.unparse(left)
                yield _finding(
                    file,
                    node,
                    f"[float-eq] equality on priority-like value {left_text!r} "
                    "without escaping to the full key tuple: exact float ties "
                    "must resolve via keys (compare `prio[m] == p and "
                    "keys[m] < key`), not branch on the float alone",
                )


def check_determinism(index: ProjectIndex) -> Iterator[Finding]:
    """Run the four determinism hazard rules over their respective scopes."""
    for file in index.iter_files("src/repro/", "benchmarks/", "examples/"):
        yield from _check_random_and_clock(file)
    for file in index.iter_files(*_HOT_SCOPES):
        yield from _check_set_iteration(file)
        yield from _check_float_eq(file)


register_checker(
    CHECK,
    check_determinism,
    "unseeded RNGs, wall-clock reads, unsorted set iteration and float "
    "priority equality in the replayed hot paths",
)
