"""Discovery, execution, baseline and output of ``repro-mis lint``.

The runner parses the project once into a :class:`ProjectIndex`, hands it to
every selected checker, filters ``# repro-lint:`` suppressions, and diffs
the surviving findings against the committed baseline file.  All diagnostic
chatter goes to *stderr*; ``--format json`` keeps stdout machine-pure so
``repro-mis lint --format json | jq ...`` works (regression-tested).

Baseline semantics mirror the usual lint-gate recipe: a finding whose
fingerprint (line-number free, see :class:`~repro.analysis.lint.base.Finding`)
is listed in the baseline is *accepted* -- reported to stderr as baselined,
not failing the run.  New findings fail with exit code 1.  Baseline entries
that no longer match anything are reported as stale (fix committed or code
gone) without failing, so the file can be pruned opportunistically with
``--write-baseline``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, TextIO, Tuple

from repro.analysis.lint.base import (
    CheckerSpec,
    Finding,
    ProjectIndex,
    SourceFile,
    available_checkers,
    get_checker,
)

# Importing the checker modules registers the built-in suite.
from repro.analysis.lint import (  # noqa: F401  (registration side effects)
    checkpoint_parity as _checkpoint_parity,
    determinism as _determinism,
    registry_discipline as _registry_discipline,
    shared_planes as _shared_planes,
    wire_protocol as _wire_protocol,
)

#: Default lint scope (tests construct hazards on purpose and are excluded).
DEFAULT_PATHS: Tuple[str, ...] = ("src/repro", "benchmarks", "examples")

#: Default committed-baseline filename, resolved against the lint root.
BASELINE_FILENAME = "lint-baseline.json"

_BASELINE_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced, before baseline application."""

    root: Path
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0
    checkers: Tuple[str, ...] = ()


def build_index(root: Path, paths: Sequence[str] = DEFAULT_PATHS) -> ProjectIndex:
    """Parse every ``*.py`` under ``root``/``paths`` into a project index."""
    root = root.resolve()
    seen: Set[Path] = set()
    files: List[SourceFile] = []
    for entry in paths:
        base = (root / entry).resolve()
        if base.is_file() and base.suffix == ".py":
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            if "__pycache__" in path.parts or path in seen:
                continue
            seen.add(path)
            files.append(SourceFile.from_path(path, root))
    files.sort(key=lambda f: f.rel)
    return ProjectIndex(root, files)


def select_checkers(
    select: Optional[Sequence[str]] = None, ignore: Optional[Sequence[str]] = None
) -> List[CheckerSpec]:
    """The checkers to run; unknown names raise with a did-you-mean hint."""
    names = list(select) if select else list(available_checkers())
    for name in list(names) + list(ignore or ()):
        get_checker(name)  # raises UnknownCheckerError with a hint
    ignored = set(ignore or ())
    return [get_checker(name) for name in names if name not in ignored]


def run_lint(
    root: Path,
    paths: Sequence[str] = DEFAULT_PATHS,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    index: Optional[ProjectIndex] = None,
) -> LintReport:
    """Run the selected checkers over ``root`` and apply suppressions."""
    if index is None:
        index = build_index(root, paths)
    checkers = select_checkers(select, ignore)
    report = LintReport(
        root=index.root,
        checked_files=len(index.files),
        checkers=tuple(spec.name for spec in checkers),
    )
    # Unparseable files are findings, not crashes: the linter runs in CI
    # where a syntax error should point at the file, like any other finding.
    for file in index.files:
        if file.parse_error is not None:
            report.findings.append(
                Finding(
                    check="syntax",
                    path=file.rel,
                    line=file.parse_error.lineno or 1,
                    col=(file.parse_error.offset or 1) - 1,
                    message=f"file does not parse: {file.parse_error.msg}",
                )
            )
    for spec in checkers:
        for finding in spec.checker(index):
            source = index.by_rel.get(finding.path)
            if source is not None and source.suppressed(finding.check, finding.line):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: f.sort_key)
    return report


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class BaselineError(ValueError):
    """The baseline file exists but is not a valid baseline document."""


def load_baseline(path: Path) -> Set[str]:
    """The accepted fingerprints of a committed baseline file."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from None
    if (
        not isinstance(document, dict)
        or document.get("version") != _BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path} must be "
            f'{{"version": {_BASELINE_VERSION}, "findings": [...]}}'
        )
    fingerprints: Set[str] = set()
    for entry in document["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(f"baseline {path}: every finding needs a fingerprint")
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new accepted baseline (sorted, stable)."""
    document = {
        "version": _BASELINE_VERSION,
        "findings": [f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: Sequence[Finding], accepted: Set[str]
) -> Tuple[List[Finding], List[Finding], Set[str]]:
    """``(new, baselined, stale fingerprints)`` of one run vs the baseline."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        if finding.fingerprint in accepted:
            baselined.append(finding)
            seen.add(finding.fingerprint)
        else:
            new.append(finding)
    return new, baselined, accepted - seen


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------
def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Set[str],
    report: LintReport,
) -> str:
    """Human-readable result block (stdout in text mode)."""
    lines: List[str] = [finding.render() for finding in new]
    summary = (
        f"{len(new)} finding(s) ({len(baselined)} baselined, "
        f"{report.suppressed} suppressed) across {report.checked_files} files; "
        f"checkers: {', '.join(report.checkers)}"
    )
    if stale:
        summary += f"; {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Set[str],
    report: LintReport,
) -> Dict:
    """Machine document (stdout in ``--format json``; stable key order)."""
    return {
        "version": _BASELINE_VERSION,
        "root": str(report.root),
        "checkers": list(report.checkers),
        "checked_files": report.checked_files,
        "suppressed": report.suppressed,
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline": sorted(stale),
    }


def run_lint_command(
    root: Path,
    paths: Sequence[str] = DEFAULT_PATHS,
    output_format: str = "text",
    baseline_path: Optional[Path] = None,
    no_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    write_baseline_path: Optional[Path] = None,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """The full ``repro-mis lint`` command; returns the process exit code.

    Exit codes: 0 clean (modulo baseline), 1 new findings, 2 usage/baseline
    problems.  Machine output (text findings or the JSON document) goes to
    ``stdout``; every diagnostic goes to ``stderr``.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    root = root.resolve()
    report = run_lint(root, paths=paths, select=select, ignore=ignore)

    accepted: Set[str] = set()
    resolved_baseline = baseline_path
    if not no_baseline:
        if resolved_baseline is None:
            default = root / BASELINE_FILENAME
            if default.is_file():
                resolved_baseline = default
        if resolved_baseline is not None:
            accepted = load_baseline(resolved_baseline)
            print(
                f"baseline: {resolved_baseline} ({len(accepted)} accepted)",
                file=err,
            )
    new, baselined, stale = split_by_baseline(report.findings, accepted)

    if write_baseline_path is not None:
        write_baseline(write_baseline_path, report.findings)
        print(
            f"wrote baseline {write_baseline_path} "
            f"({len(report.findings)} finding(s))",
            file=err,
        )

    if output_format == "json":
        json.dump(render_json(new, baselined, stale, report), out, indent=2)
        out.write("\n")
    else:
        out.write(render_text(new, baselined, stale, report) + "\n")
    for fingerprint in sorted(stale):
        print(f"stale baseline entry (no longer matches): {fingerprint}", file=err)
    return 1 if new else 0
