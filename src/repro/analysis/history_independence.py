"""Empirical verification of history independence (paper, Definition 14).

An algorithm maintaining a structure ``P`` is *history independent* when, for
every graph ``G``, the distribution of its output depends only on ``G`` and
not on the sequence of topology changes that produced ``G``.

Two empirical checks are provided:

* **exact-output check** (:func:`outputs_identical_across_histories`): because
  the paper's algorithm simulates random greedy under a *fixed* assignment of
  random IDs, its output after replaying any history that ends at ``G`` must
  be exactly the greedy MIS of ``G`` under those IDs.  This is a per-seed,
  deterministic property and the strongest possible check.

* **distribution check** (:func:`mis_distribution_over_histories` plus
  :func:`total_variation_distance`): collect the output distribution (over
  fresh random IDs) separately for several histories of the same graph and
  verify the empirical distributions are close in total variation.  This is
  the check that also applies to algorithms whose randomness is drawn during
  the run, and the one that *fails* for the history-dependent natural greedy
  baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence

from repro.core.dynamic_mis import DynamicMIS
from repro.workloads.changes import TopologyChange

Node = Hashable
OutputDistribution = Dict[FrozenSet[Node], float]


def total_variation_distance(
    first: Mapping[FrozenSet[Node], float], second: Mapping[FrozenSet[Node], float]
) -> float:
    """Total variation distance between two distributions over output sets."""
    support = set(first) | set(second)
    return 0.5 * sum(abs(first.get(key, 0.0) - second.get(key, 0.0)) for key in support)


def mis_distribution_over_seeds(
    run_history: Callable[[int], FrozenSet[Node]], seeds: Sequence[int]
) -> OutputDistribution:
    """Empirical output distribution of ``run_history`` over the given seeds.

    ``run_history(seed)`` must run the algorithm with fresh randomness derived
    from ``seed`` and return its output as a frozenset.
    """
    counts: Dict[FrozenSet[Node], int] = {}
    for seed in seeds:
        output = frozenset(run_history(seed))
        counts[output] = counts.get(output, 0) + 1
    total = float(len(seeds))
    return {output: count / total for output, count in counts.items()}


def replay_history_mis(
    history: Iterable[TopologyChange], seed: int, engine: str = "template"
) -> FrozenSet[Node]:
    """Replay a change history from the empty graph with the paper's algorithm."""
    maintainer = DynamicMIS(seed=seed, engine=engine)
    for change in history:
        maintainer.apply(change)
    return frozenset(maintainer.mis())


def mis_distribution_over_histories(
    histories: Sequence[Sequence[TopologyChange]],
    seeds: Sequence[int],
    runner: Callable[[Iterable[TopologyChange], int], FrozenSet[Node]] = replay_history_mis,
) -> List[OutputDistribution]:
    """One empirical output distribution per history (same seeds for each).

    For a history independent algorithm all returned distributions estimate
    the *same* distribution, so their pairwise total variation distance is
    only sampling noise; for a history-dependent algorithm they genuinely
    differ.
    """
    return [
        mis_distribution_over_seeds(lambda seed, h=history: runner(h, seed), seeds)
        for history in histories
    ]


def outputs_identical_across_histories(
    histories: Sequence[Sequence[TopologyChange]],
    seed: int,
    runner: Callable[[Iterable[TopologyChange], int], FrozenSet[Node]] = replay_history_mis,
) -> bool:
    """Strong per-seed check: the same IDs give the same output for every history."""
    outputs = {runner(history, seed) for history in histories}
    return len(outputs) == 1


def max_pairwise_distance(distributions: Sequence[OutputDistribution]) -> float:
    """Largest total variation distance between any two of the distributions."""
    worst = 0.0
    for i in range(len(distributions)):
        for j in range(i + 1, len(distributions)):
            worst = max(worst, total_variation_distance(distributions[i], distributions[j]))
    return worst
