"""Plain-text report tables printed by the benchmark harnesses.

Every experiment prints a table with the paper's claimed value next to the
measured value, in the same row/series structure the claim appears in the
paper.  The formatting here is deliberately plain (monospace-aligned text) so
that the benchmark output can be pasted straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_format: str = ".4f",
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells; shorter rows are padded with blanks.
    title:
        Optional title line printed above the table.
    float_format:
        ``format()`` spec applied to floats.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_render_cell(cell, float_format) for cell in row]
        while len(rendered) < len(headers):
            rendered.append("")
        rendered_rows.append(rendered)

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row[: len(widths)]):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_claim_table(
    title: str,
    claims: Iterable[Mapping[str, Cell]],
    float_format: str = ".4f",
) -> str:
    """Render the standard paper-vs-measured table used by every experiment.

    Each claim mapping should contain the keys ``row`` (what is being
    measured), ``paper`` (the paper's claim, free text or a number),
    ``measured`` (the measured value) and optionally ``verdict`` and
    ``detail``.
    """
    headers = ["quantity", "paper claim", "measured", "verdict", "detail"]
    rows = []
    for claim in claims:
        rows.append(
            [
                claim.get("row"),
                claim.get("paper"),
                claim.get("measured"),
                claim.get("verdict"),
                claim.get("detail"),
            ]
        )
    return format_table(headers, rows, title=title, float_format=float_format)
