"""Basic estimators used by the experiment harnesses.

The paper's guarantees are exact expectations (e.g. ``E[|S|] <= 1``); the
experiments estimate those expectations by Monte Carlo over seeds and report
the sample mean together with a normal-approximation confidence interval, so
EXPERIMENTS.md can state "paper: <= 1, measured: 0.43 +/- 0.02".

Only the standard library is required; the implementations are deliberately
simple and well tested rather than clever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def sample_standard_deviation(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    variance = sum((value - center) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance)


def confidence_interval(values: Sequence[float], z_score: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Returns ``(low, high)``; degenerate (point) interval for fewer than two
    samples.
    """
    values = list(values)
    center = mean(values)
    if len(values) < 2:
        return (center, center)
    half_width = z_score * sample_standard_deviation(values) / math.sqrt(len(values))
    return (center - half_width, center + half_width)


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one measured quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mean={self.mean:.4f} (95% CI [{self.ci_low:.4f}, {self.ci_high:.4f}]), "
            f"min={self.minimum:.4f}, max={self.maximum:.4f}, n={self.count}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Full summary of a sample (count, mean, std, min, max, 95% CI)."""
    values = [float(value) for value in values]
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    low, high = confidence_interval(values)
    return Summary(
        count=len(values),
        mean=mean(values),
        std=sample_standard_deviation(values),
        minimum=min(values),
        maximum=max(values),
        ci_low=low,
        ci_high=high,
    )


def group_means(pairs: Iterable[Tuple[str, float]]) -> Dict[str, float]:
    """Mean of the second components grouped by the first (used for per-kind tables)."""
    groups: Dict[str, List[float]] = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(float(value))
    return {key: mean(values) for key, values in groups.items()}


def growth_exponent(x_values: Sequence[float], y_values: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    Used by the scaling experiments to check *shapes*: an O(1) quantity has
    exponent ~0, a Theta(log n) quantity has a small positive slope in log-log
    space that shrinks with n, and a linear quantity has exponent ~1.  Points
    with non-positive coordinates are skipped.
    """
    points = [
        (math.log(x), math.log(y))
        for x, y in zip(x_values, y_values)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        return 0.0
    mean_x = mean([p[0] for p in points])
    mean_y = mean([p[1] for p in points])
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        return 0.0
    return numerator / denominator
