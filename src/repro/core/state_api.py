"""The shared checkpoint contract: :class:`Checkpointable` and its helpers.

Two families of maintainers in this library can rewind: the sequential
engine backends (:class:`~repro.core.engine_api.MISEngine`, whose
label-level :class:`~repro.core.engine_api.EngineSnapshot` the differential
harness and :class:`~repro.scenario.session.Session` already use) and -- as
of this module -- the six distributed network simulators, whose
knowledge-level :class:`~repro.distributed.state.NetworkSnapshot` captures
topology, per-edge knowledge, node states, metrics, the asynchronous
scheduler cursor and the scheduler's own resumable state (the RNG stream
position of the ``"random"`` delay scheduler), so resume is exact for every
scheduler kind.

:class:`Checkpointable` is the structural protocol both families satisfy:
``snapshot()`` returns a frozen, *label-keyed* value object and
``restore(snapshot)`` resets the object to it.  Label-keyed means the
snapshot never mentions backend internals (dense ids, array layouts), so a
snapshot taken on one backend restores on any other backend of the same
family -- the property that makes cross-backend resume
(``dict`` -> ``fast`` and back) exact.

The contract, shared by both snapshot flavors:

* ``restore(snap)`` leaves the object observably equal to its state at
  ``snapshot()`` time: same graph, same outputs, same priority keys, same
  local knowledge (networks) -- so applying the identical remaining workload
  reproduces an uninterrupted run change for change.
* Snapshots are values: mutating the object after ``snapshot()`` never
  mutates an already-captured snapshot.
* Snapshots are only captured *between* changes (engines and simulators only
  return control to callers at quiescence, so this is automatic).

:class:`EventSequence` is the restorable tie-break counter used by the
asynchronous event loops in place of :func:`itertools.count` -- an
``itertools.count`` cannot report how far it advanced, which is exactly what
a checkpoint needs to record.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Checkpointable(Protocol):
    """Structural protocol of everything that can checkpoint and rewind.

    Satisfied by every registered engine backend (via
    :meth:`~repro.core.engine_api.MISEngine.snapshot` /
    :meth:`~repro.core.engine_api.MISEngine.restore`) and by every registered
    network simulator (via the :class:`~repro.distributed.state.NetworkSnapshot`
    pair).  :meth:`repro.scenario.session.Session.checkpoint` accepts any
    runner whose backend satisfies this protocol, so a third-party backend
    gains session checkpointing by implementing the two methods -- no session
    edits required.
    """

    def snapshot(self) -> Any:
        """Capture the observable state as a frozen, label-keyed value object."""
        ...  # pragma: no cover - protocol signature

    def restore(self, snapshot: Any) -> None:
        """Reset to a previously captured snapshot (same family, any backend)."""
        ...  # pragma: no cover - protocol signature


class EventSequence:
    """A restorable monotone counter (drop-in for ``next(itertools.count())``).

    The asynchronous simulators consume one value per scheduled delivery to
    keep their event heaps totally ordered; the number of values consumed is
    the *scheduler cursor* recorded in a
    :class:`~repro.distributed.state.NetworkSnapshot`, so a resumed simulator
    continues the sequence exactly where the interrupted one stopped.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"event sequence cannot start below 0, got {start}")
        self.value = int(start)

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> "EventSequence":
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventSequence(value={self.value})"
