"""Seed normalization shared by every randomized component.

The paper's algorithm is randomized only through the node order ``pi``; the
library additionally uses seeds in workload generators and benchmarks.  To
keep runs reproducible end-to-end, every public entry point accepts a
``seed`` argument and this module defines what a "seed" may be:

* a plain ``int`` (the common case),
* ``None`` (meaning "use the default seed 0" -- never nondeterminism),
* a ``numpy.random.Generator`` or ``numpy.random.SeedSequence`` (when numpy
  is installed), from which a single 63-bit integer seed is drawn.

Nothing in the library calls the *module-level* :mod:`random` functions; all
randomness flows from explicit ``random.Random(seed)`` instances created from
normalized seeds, so two runs with the same seed are bit-identical.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["normalize_seed", "spawn_seeds"]

_SEED_BOUND = 2 ** 63


def normalize_seed(seed: Any) -> int:
    """Coerce ``seed`` into a plain non-negative integer seed.

    Accepts ``None`` (-> 0), ``int``, and -- when numpy is available --
    ``numpy.random.Generator`` / ``numpy.random.SeedSequence`` instances.
    Drawing from a Generator advances it, so two distinct components seeded
    from the same Generator get independent seeds.
    """
    if seed is None:
        return 0
    if isinstance(seed, bool):
        return int(seed)
    if isinstance(seed, int):
        return seed
    # numpy integers quack like ints but are not int instances.
    if hasattr(seed, "__index__") and not hasattr(seed, "integers"):
        return int(seed)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is an optional dependency
        np = None
    if np is not None:
        if isinstance(seed, np.random.Generator):
            return int(seed.integers(0, _SEED_BOUND))
        if isinstance(seed, np.random.SeedSequence):
            return int(seed.generate_state(1, dtype="uint64")[0] % _SEED_BOUND)
    raise TypeError(
        f"seed must be an int, None, or a numpy Generator/SeedSequence, got {seed!r}"
    )


def spawn_seeds(seed: Any, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from one master seed.

    Deterministic function of ``(normalize_seed(seed), count)``; used by the
    benchmark harness to hand every repetition its own seed without the
    repetitions being correlated (``seed``, ``seed + 1``, ... are *not*
    independent for hash-based generators).
    """
    import random as _random

    master = normalize_seed(seed)
    rng = _random.Random(f"spawn::{master}")
    return [rng.randrange(_SEED_BOUND) for _ in range(count)]
