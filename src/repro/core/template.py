"""Algorithm 1: the model-agnostic template for maintaining an MIS.

The template (paper, Section 3) is not tied to a computation model: it simply
describes which nodes must change state after a single topology change so
that the MIS invariant holds again.  :class:`TemplateEngine` implements it as
an in-memory engine that

* keeps the current graph, the order ``pi`` and the state of every node,
* exposes one method per template-level topology change (edge insertion,
  edge deletion, node insertion, node deletion -- the graceful/abrupt and
  unmuting distinctions only exist in the distributed implementation), and
* returns, for every change, an :class:`UpdateReport` containing the node
  ``v*``, the influenced set ``S`` with its levels, and the adjustment count.

The engine is the reference oracle of the library: the distributed protocols
are validated against it, and the Theorem 1 experiment (E1) measures
``E[|S|]`` directly from its reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.engine_api import BatchUpdateReport, EngineSnapshot, MISEngine
from repro.core.greedy import greedy_mis_states
from repro.core.influenced import InfluencePropagation, propagate_influence
from repro.core.invariant import desired_state, verify_mis_invariant
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph, GraphError

Node = Hashable


@dataclass
class UpdateReport:
    """Outcome of applying one topology change through the template.

    Attributes
    ----------
    change_type:
        One of ``"edge_insertion"``, ``"edge_deletion"``, ``"node_insertion"``,
        ``"node_deletion"``.
    v_star:
        The unique node whose invariant could break (``None`` only for
        degenerate changes such as inserting an isolated node).
    v_star_star:
        The other endpoint for edge changes, or ``v_star`` for node changes
        (the paper's convention).
    propagation:
        The full :class:`InfluencePropagation` trace.
    """

    change_type: str
    v_star: Optional[Node]
    v_star_star: Optional[Node]
    propagation: InfluencePropagation

    @property
    def influenced_set(self) -> Set[Node]:
        """The influenced set ``S`` of Theorem 1."""
        return self.propagation.influenced

    @property
    def influenced_size(self) -> int:
        """``|S|``."""
        return self.propagation.size

    @property
    def num_adjustments(self) -> int:
        """Number of nodes whose output changed."""
        return self.propagation.num_adjustments

    @property
    def num_levels(self) -> int:
        """Depth of the propagation (rounds of a direct implementation)."""
        return self.propagation.num_levels

    @property
    def state_flips(self) -> int:
        """Total individual state flips (a naive implementation's broadcasts)."""
        return self.propagation.state_flips

    @property
    def update_work(self) -> int:
        """Neighbor inspections performed (a sequential implementation's update time)."""
        return self.propagation.work


class TemplateEngine(MISEngine):
    """Sequential-semantics dynamic MIS maintainer (the paper's template).

    The reference implementation of the :class:`~repro.core.engine_api.MISEngine`
    contract, registered as ``"template"``.

    Parameters
    ----------
    priorities:
        Order ``pi``.  Defaults to a fresh :class:`RandomPriorityAssigner`
        with ``seed``.
    seed:
        Seed for the default priority assigner (ignored when ``priorities``
        is given).
    initial_graph:
        Optional starting graph.  Its MIS is computed with a single greedy
        pass, after which every later change goes through the template.
    """

    def __init__(
        self,
        priorities: Optional[PriorityAssigner] = None,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
    ) -> None:
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)
        self._graph = DynamicGraph()
        self._states: Dict[Node, bool] = {}
        if initial_graph is not None:
            self._graph = initial_graph.copy()
            for node in self._graph.nodes():
                self._priorities.assign(node)
            self._states = greedy_mis_states(self._graph, self._priorities)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current graph (do not mutate directly)."""
        return self._graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    def states(self) -> Dict[Node, bool]:
        """A copy of the current state map ``node -> in MIS?``."""
        return dict(self._states)

    def mis(self) -> Set[Node]:
        """The current maximal independent set."""
        return {node for node, in_mis in self._states.items() if in_mis}

    def in_mis(self, node: Node) -> bool:
        """Whether ``node`` is currently in the MIS."""
        return self._states[node]

    def verify(self) -> None:
        """Assert that the MIS invariant holds at every node (for tests)."""
        verify_mis_invariant(self._graph, self._priorities, self._states)

    def clustering(self) -> Dict[Node, Node]:
        """Correlation clustering view: every node -> its cluster center.

        MIS nodes are their own centers; every other node joins its earliest
        (smallest random ID) MIS neighbor.  Part of the common engine-backend
        interface (:class:`~repro.core.fast_engine.FastEngine` implements the
        same method over arrays).
        """
        centers: Dict[Node, Node] = {}
        mis_nodes = self.mis()
        for node in self._graph.nodes():
            if node in mis_nodes:
                centers[node] = node
            else:
                mis_neighbors = [
                    other for other in self._graph.iter_neighbors(node) if other in mis_nodes
                ]
                centers[node] = self._priorities.earliest(mis_neighbors)
        return centers

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node) -> UpdateReport:
        """Insert edge ``{u, v}`` and restore the invariant."""
        if not self._graph.has_node(u) or not self._graph.has_node(v):
            raise GraphError("both endpoints must exist before inserting an edge")
        self._graph.add_edge(u, v)
        v_star, v_star_star = self._order_endpoints(u, v)
        needs_change = self._states[v_star] != desired_state(
            self._graph, self._priorities, self._states, v_star
        )
        propagation = propagate_influence(
            self._graph,
            self._priorities,
            self._states,
            source=v_star,
            source_changes=needs_change,
        )
        self._commit(propagation)
        return UpdateReport("edge_insertion", v_star, v_star_star, propagation)

    def delete_edge(self, u: Node, v: Node) -> UpdateReport:
        """Delete edge ``{u, v}`` and restore the invariant."""
        if not self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        v_star, v_star_star = self._order_endpoints(u, v)
        self._graph.remove_edge(u, v)
        needs_change = self._states[v_star] != desired_state(
            self._graph, self._priorities, self._states, v_star
        )
        propagation = propagate_influence(
            self._graph,
            self._priorities,
            self._states,
            source=v_star,
            source_changes=needs_change,
        )
        self._commit(propagation)
        return UpdateReport("edge_deletion", v_star, v_star_star, propagation)

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> UpdateReport:
        """Insert ``node`` with edges to existing ``neighbors`` and restore the invariant."""
        neighbor_list = list(neighbors)
        self._graph.add_node_with_edges(node, neighbor_list)
        self._priorities.assign(node)
        # The new node enters with a provisional non-MIS output; it must join
        # the MIS exactly when it has no earlier MIS neighbor.
        self._states[node] = False
        needs_change = desired_state(self._graph, self._priorities, self._states, node)
        propagation = propagate_influence(
            self._graph,
            self._priorities,
            self._states,
            source=node,
            source_changes=needs_change,
        )
        self._commit(propagation)
        return UpdateReport("node_insertion", node, node, propagation)

    def delete_node(self, node: Node) -> UpdateReport:
        """Delete ``node`` (with its edges) and restore the invariant."""
        if not self._graph.has_node(node):
            raise GraphError(f"node {node!r} is not in the graph")
        was_in_mis = self._states[node]
        later_neighbors = self._priorities.later_neighbors(self._graph, node)
        self._graph.remove_node(node)
        old_state = self._states.pop(node)
        propagation = propagate_influence(
            self._graph,
            self._priorities,
            self._states,
            source=node,
            source_changes=was_in_mis,
            extra_dirty=later_neighbors if was_in_mis else (),
        )
        self._commit(propagation)
        self._priorities.forget(node)
        del old_state
        return UpdateReport("node_deletion", node, node, propagation)

    def apply_batch(self, changes: Sequence) -> BatchUpdateReport:
        """Apply ``changes`` atomically and restore the invariant in one wave.

        The changes are validated against the *evolving* graph in the given
        order (e.g. an edge insertion may reference a node inserted earlier in
        the same batch), but no invariant repair happens until the whole batch
        has been applied; the repair then runs as a single propagation seeded
        with every node whose invariant may have broken (the batch analogue of
        ``v*``).  See :mod:`repro.core.batch` for the extension's rationale.

        Raises
        ------
        GraphError
            If some change in the batch is invalid at its position -- raised
            by the up-front :func:`~repro.workloads.changes.validate_batch`
            pass, *before* any graph delta is applied, so a failed batch
            leaves the engine untouched.
        """
        from repro.workloads.changes import (
            EdgeDeletion,
            EdgeInsertion,
            NodeDeletion,
            NodeInsertion,
            NodeUnmuting,
            validate_batch,
        )

        graph = self._graph
        validate_batch(graph, changes)
        states: Dict[Node, bool] = dict(self._states)
        priorities = self._priorities

        dirty: Set[Node] = set()
        deleted: Set[Node] = set()
        applied: List = []

        for change in changes:
            if isinstance(change, EdgeInsertion):
                graph.add_edge(change.u, change.v)
                dirty.add(self._order_endpoints(change.u, change.v)[0])
            elif isinstance(change, EdgeDeletion):
                graph.remove_edge(change.u, change.v)
                dirty.add(self._order_endpoints(change.u, change.v)[0])
            elif isinstance(change, (NodeInsertion, NodeUnmuting)):
                graph.add_node_with_edges(change.node, change.neighbors)
                priorities.assign(change.node)
                states[change.node] = False
                dirty.add(change.node)
                deleted.discard(change.node)
            elif isinstance(change, NodeDeletion):
                was_in_mis = states.get(change.node, False)
                later_neighbors = priorities.later_neighbors(graph, change.node)
                graph.remove_node(change.node)
                states.pop(change.node, None)
                dirty.discard(change.node)
                deleted.add(change.node)
                if was_in_mis:
                    dirty.update(later_neighbors)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown change type: {change!r}")
            applied.append(change)

        dirty = {node for node in dirty if graph.has_node(node)}
        propagation = propagate_influence(
            graph,
            priorities,
            states,
            source=None,
            source_changes=False,
            extra_dirty=sorted(dirty, key=priorities.key),
        )
        self._commit(propagation)
        for node in deleted:
            priorities.forget(node)
        return BatchUpdateReport(
            changes=applied,
            seed_nodes=dirty,
            influenced_labels=frozenset(propagation.influenced),
            influenced_size=propagation.size,
            num_adjustments=propagation.num_adjustments,
            num_levels=propagation.num_levels,
            state_flips=propagation.state_flips,
            update_work=propagation.work,
            evaluations=propagation.evaluations,
            propagation=propagation,
        )

    def commit_propagation(self, propagation: InfluencePropagation) -> None:
        """Replace the engine's states with a propagation's final states.

        Used by the batched-update extension (:mod:`repro.core.batch`), which
        mutates the engine's graph directly and then installs the repaired
        states in one step.
        """
        self._commit(propagation)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def restore(self, snapshot: EngineSnapshot) -> None:
        """Reset graph, states and priority keys to a previous snapshot."""
        self._graph = DynamicGraph(nodes=snapshot.nodes, edges=snapshot.edges)
        self._states = dict(snapshot.states)
        self._priorities.restore_keys(dict(snapshot.priority_keys))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _order_endpoints(self, u: Node, v: Node) -> tuple:
        """Return (v*, v**): the later and earlier endpoint under ``pi``."""
        if self._priorities.earlier(u, v):
            return v, u
        return u, v

    def _commit(self, propagation: InfluencePropagation) -> None:
        self._states = dict(propagation.final_states)
