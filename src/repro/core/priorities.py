"""Random node orders (the permutation ``pi``) and their implementations.

The template of Section 3 assumes a uniformly random permutation ``pi`` over
the nodes.  The distributed implementation of Section 4 realizes ``pi`` by
giving every node an independent uniformly random ID ``l_v`` in ``[0, 1]``;
sorting by ID yields a uniformly random order (ties have probability zero and
are broken deterministically here to keep the order total).

Two implementations of the :class:`PriorityAssigner` interface are provided:

* :class:`RandomPriorityAssigner` -- the paper's randomized order.  New nodes
  draw a fresh ID on arrival; IDs of departed nodes are forgotten.  The
  assignment of IDs is independent of the topology-change sequence, matching
  the oblivious-adversary assumption.
* :class:`DeterministicPriorityAssigner` -- a fixed order derived from node
  identifiers.  This is *not* part of the paper's algorithm; it is the
  "deterministic algorithm" strawman used by the lower-bound experiment (E5)
  and by the natural history-dependent baseline.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

Node = Hashable
PriorityKey = Tuple[float, int, str]


class PriorityAssigner:
    """Interface for total orders over dynamically arriving nodes.

    A priority assigner owns the mapping ``node -> priority key``; smaller
    keys mean *earlier* in the order ``pi`` (i.e. higher priority for joining
    the MIS under the greedy rule).
    """

    def assign(self, node: Node) -> PriorityKey:
        """Assign (or re-use) and return the priority key of ``node``."""
        raise NotImplementedError

    def forget(self, node: Node) -> None:
        """Drop the priority of a departed node (no-op if absent)."""
        raise NotImplementedError

    def key(self, node: Node) -> PriorityKey:
        """Return the priority key of ``node`` (must have been assigned)."""
        raise NotImplementedError

    def knows(self, node: Node) -> bool:
        """Return True iff ``node`` currently has an assigned priority."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Snapshot support (engine snapshot/restore -- see repro.core.engine_api)
    # ------------------------------------------------------------------
    def export_keys(self) -> Dict[Node, PriorityKey]:
        """Copy of the full ``node -> key`` assignment (for engine snapshots).

        Implementations backed by an explicit key map override this; orders
        computed on the fly (read-only adapters) may leave it unimplemented.
        """
        raise NotImplementedError

    def restore_keys(self, keys: Dict[Node, PriorityKey]) -> None:
        """Replace the full assignment with ``keys`` (engine restore path)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Conveniences shared by all implementations
    # ------------------------------------------------------------------
    def earlier(self, u: Node, v: Node) -> bool:
        """True iff ``u`` comes before ``v`` in the order ``pi``."""
        return self.key(u) < self.key(v)

    def earliest(self, nodes: Iterable[Node]) -> Optional[Node]:
        """Return the earliest node of ``nodes`` under ``pi`` (None if empty)."""
        best: Optional[Node] = None
        best_key: Optional[PriorityKey] = None
        for node in nodes:
            node_key = self.key(node)
            if best_key is None or node_key < best_key:
                best, best_key = node, node_key
        return best

    def sorted_nodes(self, nodes: Iterable[Node]) -> List[Node]:
        """Return ``nodes`` sorted by increasing order in ``pi``."""
        return sorted(nodes, key=self.key)

    def earlier_neighbors(self, graph: Any, node: Node) -> List[Node]:
        """The set ``I_pi(node)``: neighbors ordered before ``node``."""
        node_key = self.key(node)
        return [other for other in graph.iter_neighbors(node) if self.key(other) < node_key]

    def later_neighbors(self, graph: Any, node: Node) -> List[Node]:
        """Neighbors ordered after ``node`` (the complement of ``I_pi``)."""
        node_key = self.key(node)
        return [other for other in graph.iter_neighbors(node) if self.key(other) > node_key]


class RandomPriorityAssigner(PriorityAssigner):
    """The paper's uniformly random order, realized with random IDs.

    Parameters
    ----------
    seed:
        Seed of the ID generation.  Two assigners with the same seed hand out
        the same IDs, which makes experiments reproducible.  Accepts anything
        :func:`repro.core.rng.normalize_seed` does (plain ints, numpy
        Generators / SeedSequences).

    Notes
    -----
    The ID of a node is a deterministic pseudo-random function of
    ``(seed, node identity)`` -- not of the node's *arrival order*.  This
    realizes the paper's "every node has an independent uniformly random ID
    l_v" while making the history-independence property (Definition 14) hold
    *exactly* per seed: replaying any change history that ends at the same
    graph, with the same seed, reproduces the same IDs and therefore the same
    output.  The adversary's choice of history cannot influence the IDs, so
    the oblivious-adversary assumption is automatically respected.

    The key is a triple ``(random float, random int, repr(node))``.  The
    second component makes collisions of the 53-bit float astronomically
    unlikely to matter, and the third keeps the order total and deterministic
    even in that case, without introducing any topology-dependent bias.
    """

    def __init__(self, seed: int = 0) -> None:
        from repro.core.rng import normalize_seed

        self._seed = normalize_seed(seed)
        self._keys: Dict[Node, PriorityKey] = {}

    @property
    def seed(self) -> int:
        """The normalized integer seed in use (for diagnostics and cloning)."""
        return self._seed

    def assign(self, node: Node) -> PriorityKey:
        if node not in self._keys:
            node_rng = random.Random(f"{self._seed}::{node!r}")
            self._keys[node] = (node_rng.random(), node_rng.getrandbits(62), repr(node))
        return self._keys[node]

    def forget(self, node: Node) -> None:
        self._keys.pop(node, None)

    def key(self, node: Node) -> PriorityKey:
        try:
            return self._keys[node]
        except KeyError:
            raise KeyError(f"node {node!r} has no assigned priority") from None

    def knows(self, node: Node) -> bool:
        return node in self._keys

    def export_keys(self) -> Dict[Node, PriorityKey]:
        return dict(self._keys)

    def restore_keys(self, keys: Dict[Node, PriorityKey]) -> None:
        self._keys = dict(keys)

    def known_nodes(self) -> List[Node]:
        """All nodes that currently hold a priority (mainly for tests)."""
        return list(self._keys)

    def random_id(self, node: Node) -> float:
        """The random ID ``l_v`` alone (the float part of the key)."""
        return self.key(node)[0]


class DeterministicPriorityAssigner(PriorityAssigner):
    """Fixed order by node identifier (the deterministic strawman).

    Nodes are ordered by ``(repr-sortable identifier)``, i.e. the order is a
    deterministic function of the node names.  Used by the deterministic
    dynamic baseline and the lower-bound experiment; the paper proves any such
    deterministic rule can be forced into ``n`` adjustments by an adversarial
    change sequence.
    """

    def __init__(self) -> None:
        self._known: Dict[Node, PriorityKey] = {}

    def assign(self, node: Node) -> PriorityKey:
        if node not in self._known:
            self._known[node] = self._key_for(node)
        return self._known[node]

    def forget(self, node: Node) -> None:
        self._known.pop(node, None)

    def key(self, node: Node) -> PriorityKey:
        if node not in self._known:
            raise KeyError(f"node {node!r} has no assigned priority")
        return self._known[node]

    def knows(self, node: Node) -> bool:
        return node in self._known

    def export_keys(self) -> Dict[Node, PriorityKey]:
        return dict(self._known)

    def restore_keys(self, keys: Dict[Node, PriorityKey]) -> None:
        self._known = dict(keys)

    @staticmethod
    def _key_for(node: Node) -> PriorityKey:
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            return (float(node), 0, repr(node))
        return (0.0, 0, repr(node))


def permutation_positions(assigner: PriorityAssigner, nodes: Iterable[Node]) -> Dict[Node, int]:
    """Return the rank (0-based position in ``pi``) of every node in ``nodes``."""
    ordering = assigner.sorted_nodes(nodes)
    return {node: position for position, node in enumerate(ordering)}
