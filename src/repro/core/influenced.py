"""Influenced sets ``S`` and ``S'`` (Section 3, Theorem 1).

After a single topology change there is at most one node ``v*`` at which the
MIS invariant breaks.  Restoring the invariant may force further nodes to
change state; the paper collects every node that changes state at some point
of this propagation in the *influenced set* ``S`` and proves
``E_pi[|S|] <= 1``.

The propagation is computed here exactly as the paper's level sets
``S_1, S_2, ...`` arise in a direct (synchronous) execution of the template:

* level 0 is ``{v*}`` (if its state must change at all),
* in every subsequent level, each node whose *earlier* neighborhood changed
  state in the previous level re-evaluates the MIS invariant against the
  current states and flips if needed.

Because the invariant of a node only depends on nodes that come before it in
``pi``, the dependency structure is a DAG and the propagation reaches the
unique greedy fixed point after at most ``n`` levels; a node may flip more
than once along the way (the paper's ``u_2`` example), which is exactly why
the constant-broadcast implementation of Section 4 buffers changes.

The module also computes the auxiliary set ``S'`` from the proof of
Theorem 1: the influenced set obtained when ``v*`` is artificially forced to
be the *first* node of the order.  Lemma 2 states that ``S`` equals ``S'``
when ``v*`` happens to be the earliest node of ``S'`` and is empty otherwise;
the property-based tests check this relationship on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.invariant import desired_state
from repro.core.priorities import PriorityAssigner, PriorityKey
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


@dataclass
class InfluencePropagation:
    """Result of propagating a single topology change through the template.

    Attributes
    ----------
    source:
        The node ``v*`` at which the change happened (may be absent from the
        final graph for node deletions).
    levels:
        ``levels[i]`` is the paper's ``S_{i+1}``-style level: the set of nodes
        that changed state at propagation step ``i`` (level 0 is ``{v*}`` when
        ``v*`` itself changes).  A node may appear in several levels.
    influenced:
        The influenced set ``S``: the union of all levels.
    state_flips:
        Total number of individual state changes (counting repeats), i.e. the
        cost a naive implementation would pay in broadcasts.
    final_states:
        State map after the propagation (restricted to surviving nodes).
    adjustments:
        Nodes whose *final* output differs from their output before the
        change (excluding a deleted ``v*``, including an inserted one).  This
        is the paper's adjustment measure; it is at most ``len(influenced)``.
    evaluations:
        Number of per-node invariant re-evaluations performed (every node that
        was woken up, whether or not it flipped).
    work:
        Total number of neighbor inspections performed, i.e. the sum of the
        degrees of the evaluated nodes.  This is the "update time" a
        *sequential* dynamic implementation of the template would pay (the
        O(Delta)-per-influenced-node cost the paper's Section 6 discusses).
    """

    source: Optional[Node]
    levels: List[Set[Node]] = field(default_factory=list)
    influenced: Set[Node] = field(default_factory=set)
    state_flips: int = 0
    final_states: Dict[Node, bool] = field(default_factory=dict)
    adjustments: Set[Node] = field(default_factory=set)
    evaluations: int = 0
    work: int = 0

    @property
    def num_levels(self) -> int:
        """Number of propagation levels (a lower bound on rounds of Algorithm 1)."""
        return len(self.levels)

    @property
    def size(self) -> int:
        """``|S|`` -- the quantity bounded by Theorem 1."""
        return len(self.influenced)

    @property
    def num_adjustments(self) -> int:
        """Number of nodes whose output changed (the adjustment complexity)."""
        return len(self.adjustments)


def propagate_influence(
    graph: DynamicGraph,
    priorities: PriorityAssigner,
    states: Dict[Node, bool],
    source: Optional[Node],
    source_changes: bool,
    extra_dirty: Iterable[Node] = (),
    max_levels: Optional[int] = None,
) -> InfluencePropagation:
    """Run the template's propagation on ``graph`` starting from ``source``.

    Parameters
    ----------
    graph:
        The graph on which the invariant must hold *after* the change (for a
        node deletion this graph no longer contains the deleted node).
    priorities:
        Order ``pi``; every node of ``graph`` must have a key.
    states:
        Pre-change states of the nodes of ``graph`` (the deleted node, if any,
        is not included).  The mapping is **not** mutated.
    source:
        The node ``v*`` (or None when the change cannot create a violation,
        e.g. deleting a non-MIS node).
    source_changes:
        Whether ``v*`` itself flips state (level 0).  For a node deletion of
        an MIS node this is True even though ``v*`` is not in ``graph``.
    extra_dirty:
        Additional nodes that must re-evaluate the invariant in the first
        propagation level even though ``source`` is gone (used for node
        deletions, where the deleted node cannot "notify" anyone itself in the
        template; its former later neighbors are passed here).
    max_levels:
        Safety cap; defaults to ``2 * |V| + 5``.

    Returns
    -------
    InfluencePropagation
        The per-level trace, the influenced set and the final states.
    """
    old_states = dict(states)
    current: Dict[Node, bool] = dict(states)
    levels: List[Set[Node]] = []
    influenced: Set[Node] = set()
    state_flips = 0
    evaluations = 0
    work = 0

    dirty: Set[Node] = set()
    if source is not None and source_changes:
        levels.append({source})
        influenced.add(source)
        state_flips += 1
        if graph.has_node(source):
            current[source] = not current.get(source, False)
            dirty.update(priorities.later_neighbors(graph, source))
            evaluations += 1
            work += graph.degree(source)
    dirty.update(node for node in extra_dirty if graph.has_node(node))

    cap = max_levels if max_levels is not None else 2 * graph.num_nodes() + 5
    level_index = 0
    while dirty:
        level_index += 1
        if level_index > cap:
            raise RuntimeError(
                "influence propagation did not converge; the starting states "
                "probably violated the MIS invariant before the change"
            )
        flipped: List[Node] = []
        for node in sorted(dirty, key=priorities.key):
            evaluations += 1
            work += graph.degree(node)
            if desired_state(graph, priorities, current, node) != current.get(node, False):
                flipped.append(node)
        if not flipped:
            break
        for node in flipped:
            current[node] = not current.get(node, False)
        state_flips += len(flipped)
        levels.append(set(flipped))
        influenced.update(flipped)
        dirty = set()
        for node in flipped:
            dirty.update(priorities.later_neighbors(graph, node))

    adjustments = {
        node
        for node in graph.nodes()
        if current.get(node, False) != old_states.get(node, False)
    }
    if source is not None and graph.has_node(source) and source not in old_states:
        # A freshly inserted node always "acquires" an output; count it only
        # if it ended up in the MIS (its implicit prior output is non-MIS).
        if current.get(source, False):
            adjustments.add(source)
        else:
            adjustments.discard(source)

    final_states = {node: current.get(node, False) for node in graph.nodes()}
    return InfluencePropagation(
        source=source,
        levels=levels,
        influenced=influenced,
        state_flips=state_flips,
        final_states=final_states,
        adjustments=adjustments,
        evaluations=evaluations,
        work=work,
    )


def forced_minimal_influence(
    graph: DynamicGraph,
    priorities: PriorityAssigner,
    source: Node,
    present_source: bool = True,
) -> Set[Node]:
    """Compute the proof's auxiliary set ``S'`` (source forced to be first).

    ``S'`` is defined like ``S`` but with respect to the order ``pi'`` that
    coincides with ``pi`` except that ``source`` is moved to the very first
    position, and with ``source`` unconditionally in level 0.  The states used
    are the greedy states of ``graph`` *without* the influence of ``source``
    (equivalently, the invariant-satisfying states for ``pi'`` before source
    flips), which is what the proof of Lemma 2 manipulates.

    Parameters
    ----------
    graph:
        The graph on which ``S'`` is evaluated (the paper uses ``G_old`` for
        node deletions / edge insertions and ``G_new`` otherwise; the caller
        picks).
    priorities:
        The order ``pi`` (used for every node except ``source``).
    source:
        The node ``v*``.
    present_source:
        Whether ``source`` is a node of ``graph``.  If it is, it is treated as
        the first node of the order (hence in M before its forced flip).
    """
    forced = _ForcedMinimalOrder(priorities, source)
    # Greedy states under pi' on graph *without* flipping the source yet.
    baseline: Dict[Node, bool] = {}
    for node in sorted(graph.nodes(), key=forced.key):
        earlier_in_mis = any(
            baseline.get(other, False)
            for other in graph.iter_neighbors(node)
            if forced.key(other) < forced.key(node)
        )
        baseline[node] = not earlier_in_mis

    # No extra dirty seeds in either case: the forced flip of the source
    # itself seeds the propagation, whether or not the source is a node of
    # ``graph`` (kept as a parameter for API stability and documentation).
    del present_source
    result = propagate_influence(
        graph,
        forced,
        baseline,
        source=source,
        source_changes=True,
        extra_dirty=(),
    )
    return result.influenced


class _ForcedMinimalOrder(PriorityAssigner):
    """Wrapper order ``pi'``: identical to ``pi`` but with one node forced first."""

    def __init__(self, base: PriorityAssigner, forced_first: Node) -> None:
        self._base = base
        self._forced = forced_first

    def assign(self, node: Node) -> PriorityKey:
        return self.key(node)

    def forget(self, node: Node) -> None:  # pragma: no cover - not used
        raise NotImplementedError("the forced order is read-only")

    def key(self, node: Node) -> Tuple:
        if node == self._forced:
            return (0, ())
        return (1, self._base.key(node))

    def knows(self, node: Node) -> bool:
        return node == self._forced or self._base.knows(node)
